PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench sim-bench tiled-check fusion-check service service-smoke run-service-check queue-check boundary-check csl-check lint

# Tier-1 verification: the whole suite, fail fast.
test:
	$(PYTHON) -m pytest -x -q

# Benchmarks only (compile-time trajectory + paper figures).
bench:
	$(PYTHON) -m pytest benchmarks -q

# Simulator throughput smoke: the reference/vectorized sweep (>=3x on 8x8),
# the paper-scale head-to-heads (tiled >= 1.2x compiled on 2+ CPU hosts,
# compiled >= 1.2x vectorized), the auto-dispatcher row and the 256x256
# weak/strong scaling sweep; refreshes BENCH_simulator.json and
# BENCH_scaling.json at the repo root.
sim-bench:
	$(PYTHON) -m pytest benchmarks/test_simulator_throughput.py -q

# Gate the overlapped tiled protocol: the golden byte-identical digest
# matrices (7 benchmarks x 3 boundary modes x all executors, including the
# compiled-shard tiled backend and the auto dispatcher) plus the tiled
# backend's own geometry/pool/failure-path suite.
tiled-check:
	$(PYTHON) -m pytest tests/wse/test_tiled_executor.py \
	  tests/wse/test_auto_executor.py \
	  tests/wse/test_executor_equivalence.py \
	  tests/wse/test_boundary_conditions.py \
	  tests/wse/test_comms_edge_cases.py -q

# Gate temporal fusion (multi-round superkernels): the R-matrix goldens
# (R in {1,2,4} byte-identical on compiled AND tiled across boundary
# modes), fingerprint keying, the dispatcher's round estimate and online
# learning, plus the paper-scale assertion that the best blocked depth
# runs compiled >= 1.15x its unblocked self (warm cache, rows recorded
# with an explicit `r` to BENCH_simulator.json).
fusion-check:
	$(PYTHON) -m pytest tests/wse/test_temporal_fusion.py \
	  benchmarks/test_simulator_throughput.py::test_temporal_blocking_speeds_up_compiled -q

# Compilation service: unit + throughput tests, then the CLI smoke path.
service:
	$(PYTHON) -m pytest tests/service benchmarks/test_service_throughput.py -q
	$(MAKE) service-smoke

# CLI smoke path only: compile a batch twice to show warm-cache reuse,
# inspect the store, purge it.  CI runs this after `make test`, which
# already executes the service test suite.
service-smoke:
	REPRO_CACHE_DIR=$$(mktemp -d) sh -c '\
	  $(PYTHON) -m repro.service compile Jacobian UVKBE --grid 4x4 --repeat 2 && \
	  $(PYTHON) -m repro.service stats && \
	  $(PYTHON) -m repro.service purge'

# End-to-end run service check: the run-job unit suite, the warm>=10x-cold
# run-throughput assertion, then a CLI smoke path whose --repeat 2 exercises
# a cold run followed by a warm run-cache hit.
run-service-check:
	$(PYTHON) -m pytest tests/service/test_run_service.py \
	  benchmarks/test_service_throughput.py::test_warm_run_job_is_at_least_10x_faster_than_cold -q
	REPRO_CACHE_DIR=$$(mktemp -d) sh -c '\
	  $(PYTHON) -m repro.service run Jacobian UVKBE --grid 4x4 --nz 8 --time-steps 1 --repeat 2 && \
	  $(PYTHON) -m repro.service run Jacobian --grid 4x4 --nz 8 --time-steps 1 --executor tiled && \
	  $(PYTHON) -m repro.service stats && \
	  $(PYTHON) -m repro.service purge'

# Async run queue: the queue test suite (lifecycle, store, daemon,
# experiments, crash recovery, the 16-job acceptance batch) plus the
# warm>=5x-cold queue-throughput assertion, then a CLI smoke path: submit
# a batch through the queue, resubmit it (served from the run cache),
# inspect both the queue store and the combined stats table, purge.
queue-check:
	$(PYTHON) -m pytest tests/service/queue \
	  benchmarks/test_queue_throughput.py -q
	REPRO_CACHE_DIR=$$(mktemp -d) sh -c '\
	  $(PYTHON) -m repro.service queue submit Jacobian UVKBE --grid 4x4 --nz 8 --time-steps 1 --inline && \
	  $(PYTHON) -m repro.service queue submit Jacobian UVKBE --grid 4x4 --nz 8 --time-steps 1 --inline && \
	  $(PYTHON) -m repro.service queue list && \
	  $(PYTHON) -m repro.service queue stats && \
	  $(PYTHON) -m repro.service stats && \
	  $(PYTHON) -m repro.service purge'

# Boundary-condition equivalence: the golden per-mode tests (byte-identical
# reference/vectorized fields, NumPy-oracle agreement, analytic periodic
# advection).  The test file parametrises both execution backends
# explicitly, so a single run covers them regardless of REPRO_EXECUTOR.
boundary-check:
	$(PYTHON) -m pytest tests/wse/test_boundary_conditions.py -q

# CSL front-door gate: the parser/lowering/diagnostic/round-trip suite,
# then the handwritten 25-point seismic kernel diffed field-by-field
# against the pipeline-generated code on two executors via the CLI.
csl-check:
	$(PYTHON) -m pytest tests/csl -q
	$(PYTHON) -m repro.csl parse --dir examples/handwritten
	$(PYTHON) -m repro.csl diff --csl examples/handwritten --benchmark Seismic \
	  --grid 9x9 --nz 16 --time-steps 2 --num-chunks 1 \
	  --executors reference,vectorized --fields u,v

# No third-party linter is vendored; byte-compiling everything still catches
# syntax errors and obvious breakage in one second.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
