PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench lint

# Tier-1 verification: the whole suite, fail fast.
test:
	$(PYTHON) -m pytest -x -q

# Benchmarks only (compile-time trajectory + paper figures).
bench:
	$(PYTHON) -m pytest benchmarks -q

# No third-party linter is vendored; byte-compiling everything still catches
# syntax errors and obvious breakage in one second.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
