"""Shared fixtures for the benchmark harness."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating a paper figure"
    )
