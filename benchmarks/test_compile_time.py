"""Compile-time benchmarks for the lowering pipeline.

Two kinds of measurements:

* a grid sweep (1x1 -> 16x16) that compiles the Jacobian benchmark and
  records the per-pass wall times from the pipeline instrumentation, so
  future PRs have a compile-speed trajectory to compare against;
* a head-to-head of the worklist rewrite driver against the legacy
  restart-the-world walker on a rewrite-heavy multi-field stencil, asserting
  the worklist driver is at least 2x faster on an 8x8 grid compile.
"""

import gc
import time

import pytest

from repro.benchmarks import benchmark_by_name
from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.ir.rewriting import use_restarting_driver
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program

GRID_SIZES = (1, 2, 4, 8, 16)


def coupled_star_program(num_fields: int, radius: int, extent: int) -> StencilProgram:
    """``num_fields`` independent star stencils of the given radius.

    Each extra field adds an equation, so the module (and with it the rewrite
    count) grows linearly — exactly the regime where the legacy driver's
    restart-per-rewrite behaviour turns quadratic.
    """
    shape = (extent, extent, 32)
    fields = [FieldDecl(f"u{i}", shape) for i in range(num_fields)]
    fields += [FieldDecl(f"v{i}", shape) for i in range(num_fields)]
    equations = []
    for i in range(num_fields):
        terms = FieldAccess(f"u{i}", (0, 0, 0))
        for r in range(1, radius + 1):
            for offset in ((r, 0, 0), (-r, 0, 0), (0, r, 0), (0, -r, 0), (0, 0, r), (0, 0, -r)):
                terms = terms + FieldAccess(f"u{i}", offset)
        equations.append(StencilEquation(f"v{i}", terms * Constant(0.1)))
    return StencilProgram(
        name=f"coupled{num_fields}", fields=fields, equations=equations, time_steps=2
    )


@pytest.mark.parametrize("grid", GRID_SIZES)
def test_compile_time_grid_sweep(benchmark, grid):
    """Compile time of the Jacobian benchmark across PE grid sizes."""
    bench = benchmark_by_name("Jacobian")
    program = bench.program(nx=grid, ny=grid, nz=32, time_steps=2)
    options = PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2)

    result = benchmark(lambda: compile_stencil_program(program, options))

    assert result.statistics is not None
    # Preserve the per-pass trajectory alongside the benchmark numbers.
    benchmark.extra_info["grid"] = f"{grid}x{grid}"
    benchmark.extra_info["total_rewrites"] = result.statistics.total_rewrites
    benchmark.extra_info["per_pass_ms"] = {
        stat.name: round(stat.wall_time * 1e3, 4) for stat in result.statistics.passes
    }
    assert result.program_module is not None


def _best_compile_seconds(program, options, repeats=5):
    """Best-of-N wall time; GC is paused so a collection on one side of the
    old-vs-new comparison cannot skew the ratio."""
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            compile_stencil_program(program, options)
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def test_worklist_driver_speedup_on_8x8_grid():
    """The worklist driver must compile at least 2x faster than the legacy
    restart-the-world walker on a rewrite-heavy 8x8 grid program."""
    program = coupled_star_program(num_fields=4, radius=3, extent=8)
    options = PipelineOptions(
        grid_width=8, grid_height=8, num_chunks=2, verify_each=False
    )

    worklist_seconds = _best_compile_seconds(program, options)
    with use_restarting_driver():
        restarting_seconds = _best_compile_seconds(program, options)

    speedup = restarting_seconds / worklist_seconds
    assert speedup >= 2.0, (
        f"worklist driver speedup {speedup:.2f}x below the 2x requirement "
        f"({worklist_seconds * 1e3:.2f} ms vs {restarting_seconds * 1e3:.2f} ms)"
    )


def test_per_pass_timings_cover_whole_pipeline():
    """Every pass of the pipeline shows up in the recorded statistics."""
    bench = benchmark_by_name("Jacobian")
    program = bench.program(nx=4, ny=4, nz=16, time_steps=2)
    options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=2)
    result = compile_stencil_program(program, options)
    from repro.transforms.pipeline import build_pass_pipeline

    expected = [pass_.name for pass_ in build_pass_pipeline(options).passes]
    recorded = [stat.name for stat in result.statistics.passes]
    assert recorded == expected
    assert result.statistics.total_wall_time > 0
