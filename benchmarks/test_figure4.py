"""Regenerates Figure 4: WSE2 vs WSE3 across benchmarks (large size).

Run with ``pytest benchmarks/test_figure4.py --benchmark-only``; the rows the
paper plots are printed as part of the benchmark output and asserted for
shape (the WSE3 outperforms the WSE2 on every benchmark).
"""

import pytest

from repro.eval.figure4 import compute_figure4, format_figure4


@pytest.mark.figure("figure4")
def test_figure4_rows(benchmark):
    rows = benchmark(compute_figure4)
    print("\n" + format_figure4(rows))
    assert len(rows) == 4
    for row in rows:
        assert row.wse3_gpts > row.wse2_gpts, (
            f"{row.benchmark}: expected the WSE3 to outperform the WSE2"
        )
        assert 1.0 < row.wse3_speedup < 2.0
        # Throughput magnitudes land in the paper's 10^3..10^5 GPts/s band.
        assert 1e3 < row.wse2_gpts < 1e5
