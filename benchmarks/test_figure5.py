"""Regenerates Figure 5: generated vs hand-written 25-point seismic kernel."""

import pytest

from repro.eval.figure5 import compute_figure5, format_figure5


@pytest.mark.figure("figure5")
def test_figure5_rows(benchmark):
    rows = benchmark(compute_figure5)
    print("\n" + format_figure5(rows))
    assert len(rows) == 3
    for row in rows:
        # The generated WSE2 code outperforms the hand-written kernel
        # (the paper reports up to +7.9 %).
        assert 1.0 < row.ours_wse2_speedup < 1.2
        # The WSE3 outperforms the WSE2 implementation (paper: up to +38.1 %).
        assert 1.15 < row.wse3_over_wse2 < 1.6
