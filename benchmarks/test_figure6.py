"""Regenerates Figure 6: acoustic on WSE3 vs 128 A100 GPUs vs 128 CPU nodes."""

import pytest

from repro.eval.figure6 import compute_figure6, format_figure6


@pytest.mark.figure("figure6")
def test_figure6_rows(benchmark):
    result = benchmark(compute_figure6)
    print("\n" + format_figure6(result))
    assert len(result.rows) == 3
    # The single wafer outperforms both clusters by a wide margin; the paper
    # reports ~14x over the GPUs and ~20x over the CPU nodes.
    assert result.wse3_vs_gpu > 3.0
    assert result.wse3_vs_cpu > 10.0
    # And the GPU cluster outperforms the CPU cluster.
    assert result.rows[1].gpts_per_second > result.rows[2].gpts_per_second
