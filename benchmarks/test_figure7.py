"""Regenerates Figure 7: the WSE3 roofline plus the A100 acoustic point."""

import pytest

from repro.eval.figure7 import compute_figure7, format_figure7


@pytest.mark.figure("figure7")
def test_figure7_points(benchmark):
    data = benchmark(compute_figure7)
    print("\n" + format_figure7(data))

    memory_ceiling, fabric_ceiling, a100 = data.ceilings
    # Every benchmark is compute bound when data resides in PE-local memory.
    for label in ("Jacobian", "Diffusion", "Seismic", "UVKBE", "Acoustic"):
        assert data.point(f"{label} (memory)").is_compute_bound(memory_ceiling)
    # All benchmarks except (at most) the Jacobian are compute bound from the
    # fabric as well.
    fabric_bound = [
        data.point(f"{label} (fabric)").is_compute_bound(fabric_ceiling)
        for label in ("Diffusion", "Seismic", "UVKBE", "Acoustic")
    ]
    assert all(fabric_bound)
    # The acoustic kernel on the A100 is memory bound.
    assert not data.point("Acoustic (A100)").is_compute_bound(a100)
