"""Compiler-throughput benchmarks: how fast the pipeline itself runs.

These are not part of the paper's evaluation but are useful regression
benchmarks for the reproduction: compile time per benchmark and functional
simulation speed.
"""

import pytest

from repro.benchmarks import benchmark_by_name
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.simulator import WseSimulator


@pytest.mark.parametrize("name", ["Jacobian", "Seismic", "UVKBE"])
def test_compile_time(benchmark, name):
    bench = benchmark_by_name(name)
    radius = 4 if bench.stencil_points >= 25 else 2
    grid = 2 * radius + 1
    program = bench.program(nx=grid, ny=grid, nz=32, time_steps=2)

    def compile_once():
        return compile_stencil_program(
            program, PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2)
        )

    result = benchmark(compile_once)
    assert result.program_module is not None


def test_simulation_throughput(benchmark):
    bench = benchmark_by_name("Jacobian")
    program = bench.program(nx=6, ny=6, nz=32, time_steps=2)
    compiled = compile_stencil_program(
        program, PipelineOptions(grid_width=6, grid_height=6, num_chunks=2)
    )

    def simulate_once():
        simulator = WseSimulator(compiled.program_module)
        simulator.execute()
        return simulator.statistics

    stats = benchmark(simulate_once)
    assert stats.exchanges == 6 * 6 * 2
