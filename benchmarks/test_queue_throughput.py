"""Throughput measurement of the async run queue.

Two claims are pinned down:

* a warm resubmission of a queued batch is served entirely from the run
  cache — the daemon resolves every job at submit time without queueing
  or simulating anything — and is at least **5x** faster than the cold
  batch that actually ran the simulations;
* the queued batch produces exactly the artifacts the run cache then
  serves, so the queue adds no determinism hazard on top of the run
  service it wraps.

The trajectory lands in ``BENCH_queue.json`` at the repo root in the
shared schema (cold and warm are distinct rows).
"""

import time
from pathlib import Path

from repro.benchmarks import benchmark_by_name
from repro.eval.trajectory import make_record, merge_trajectory
from repro.service.queue import JobQueue, JobStatus
from repro.transforms.pipeline import PipelineOptions

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_queue.json"


def _batch():
    """6 distinct run jobs spanning benchmarks and executors."""
    jobs = []
    for name in ("Jacobian", "Diffusion", "UVKBE"):
        program = benchmark_by_name(name).program(
            nx=4, ny=4, nz=16, time_steps=2
        )
        options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=2)
        for executor in ("vectorized", "tiled"):
            jobs.append((program, options, executor))
    return jobs


def test_warm_queue_resubmission_is_at_least_5x_faster_than_cold(tmp_path):
    jobs = _batch()
    cache = tmp_path / "store"

    with JobQueue(cache, workers=2, mode="inline") as queue:
        start = time.perf_counter()
        handles = [
            queue.submit(program, options, executor=executor)
            for program, options, executor in jobs
        ]
        for handle in handles:
            assert handle.wait(timeout=600).status is JobStatus.DONE
        cold_seconds = time.perf_counter() - start
    assert queue.statistics.completed == len(jobs)

    # A fresh daemon without a single worker: every job must be resolved
    # at submit time, straight from the run cache.
    with JobQueue(cache, workers=0) as warm:
        start = time.perf_counter()
        resubmitted = [
            warm.submit(program, options, executor=executor)
            for program, options, executor in jobs
        ]
        warm_seconds = time.perf_counter() - start
        assert warm.statistics.resumed_from_cache == len(jobs)
        for cold, resumed in zip(handles, resubmitted):
            assert resumed.record().served_from == "run-cache"
            assert resumed.result() == cold.result()
    assert warm.statistics.completed == 0  # nothing simulated

    speedup = cold_seconds / warm_seconds
    merge_trajectory(
        TRAJECTORY_PATH,
        [
            make_record(
                "Jacobian+Diffusion+UVKBE", "4x4", "queue-cold",
                cold_seconds, 1.0,
            ),
            make_record(
                "Jacobian+Diffusion+UVKBE", "4x4", "queue-warm",
                warm_seconds, speedup,
            ),
        ],
    )
    assert speedup >= 5.0, (
        f"warm queue resubmission only {speedup:.1f}x faster than cold "
        f"({warm_seconds * 1e3:.3f} ms vs {cold_seconds * 1e3:.1f} ms)"
    )
