"""Throughput measurements of the compilation and run services.

Four claims are pinned down:

* a warm-cache recompile of a benchmark is at least **10x** faster than its
  cold compile (the artifact is served from the content-addressed cache
  instead of re-running the 17-pass pipeline);
* a parallel batch of 8 distinct configurations beats compiling the same
  batch serially, with 2+ pool workers (asserted on hosts with at least two
  usable CPUs; single-CPU hosts cannot express the parallelism and skip);
* a pooled batch produces byte-identical artifacts to serial compilation,
  so the parallelism is free of determinism hazards;
* a warm end-to-end **run job** is at least **10x** faster than its cold
  run (compile + simulate + digest are all served from the run-artifact
  cache) — the trajectory lands in ``BENCH_run_service.json`` at the repo
  root in the shared schema.
"""

import time
from pathlib import Path

import pytest

from repro.benchmarks import benchmark_by_name
from repro.eval.trajectory import make_record, merge_trajectory
from repro.service.run import RunService
from repro.service.service import CompileService
from repro.tests_support import usable_cpus
from repro.transforms.pipeline import PipelineOptions

RUN_TRAJECTORY_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_run_service.json"
)


def _seismic_config():
    benchmark = benchmark_by_name("Seismic")
    program = benchmark.program(nx=9, ny=9, nz=32, time_steps=2)
    options = PipelineOptions(grid_width=9, grid_height=9, num_chunks=2)
    return program, options


def _batch_configs():
    """8 distinct configurations spanning benchmarks, targets and chunking."""
    configs = []
    for name, grid in (("Seismic", 9), ("Diffusion", 5)):
        benchmark = benchmark_by_name(name)
        program = benchmark.program(nx=grid, ny=grid, nz=32, time_steps=2)
        for target in ("wse2", "wse3"):
            for num_chunks in (1, 2):
                configs.append(
                    (
                        program,
                        PipelineOptions(
                            grid_width=grid,
                            grid_height=grid,
                            num_chunks=num_chunks,
                            target=target,
                        ),
                    )
                )
    assert len(configs) == 8
    assert len({id(options) for _, options in configs}) == 8
    return configs


def test_warm_cache_recompile_is_at_least_10x_faster(tmp_path):
    program, options = _seismic_config()
    with CompileService(cache_dir=tmp_path / "store") as service:
        start = time.perf_counter()
        cold_artifact = service.submit(program, options).result()
        cold_seconds = time.perf_counter() - start
        assert service.statistics.inline_compiles == 1

        warm_seconds = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            warm_artifact = service.submit(program, options).result()
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
        assert service.statistics.inline_compiles == 1  # never recompiled
        assert warm_artifact == cold_artifact

    speedup = cold_seconds / warm_seconds
    assert speedup >= 10.0, (
        f"warm recompile only {speedup:.1f}x faster than cold "
        f"({warm_seconds * 1e3:.3f} ms vs {cold_seconds * 1e3:.1f} ms)"
    )


def test_warm_disk_store_survives_a_service_restart(tmp_path):
    program, options = _seismic_config()
    with CompileService(cache_dir=tmp_path / "store") as first:
        first.compile(program, options)
    # A fresh service (fresh memory tier) over the same store still avoids
    # the pipeline entirely.
    with CompileService(cache_dir=tmp_path / "store") as second:
        second.compile(program, options)
    assert second.statistics.inline_compiles == 0
    assert second.cache.statistics.disk_hits == 1


@pytest.mark.skipif(
    usable_cpus() < 2,
    reason="parallel-vs-serial wall-clock needs at least 2 usable CPUs",
)
def test_parallel_batch_beats_serial_compilation(tmp_path):
    configs = _batch_configs()
    workers = min(4, usable_cpus())
    assert workers >= 2

    with CompileService(cache_dir=tmp_path / "serial-store") as serial:
        start = time.perf_counter()
        for future in serial.submit_batch(configs):
            future.result()
        serial_seconds = time.perf_counter() - start
    assert serial.statistics.inline_compiles == 8

    with CompileService(
        max_workers=workers, cache_dir=tmp_path / "parallel-store"
    ) as parallel:
        start = time.perf_counter()
        for future in parallel.submit_batch(configs):
            future.result()
        parallel_seconds = time.perf_counter() - start
    assert parallel.statistics.pool_compiles == 8

    assert parallel_seconds < serial_seconds, (
        f"parallel batch ({workers} workers) took {parallel_seconds * 1e3:.1f} ms, "
        f"serial took {serial_seconds * 1e3:.1f} ms"
    )


def test_warm_run_job_is_at_least_10x_faster_than_cold(tmp_path, monkeypatch):
    """Cold: pipeline + simulation + digests; warm: one cache lookup."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    benchmark = benchmark_by_name("Jacobian")
    grid = 8
    program = benchmark.program(nx=grid, ny=grid, nz=32, time_steps=2)
    options = PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2)

    with RunService() as service:
        start = time.perf_counter()
        cold_artifact = service.run(program, options, executor="vectorized")
        cold_seconds = time.perf_counter() - start
        assert service.statistics.simulations == 1

        warm_seconds = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            warm_artifact = service.run(program, options, executor="vectorized")
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
        assert service.statistics.simulations == 1  # never re-simulated
        assert warm_artifact == cold_artifact

    speedup = cold_seconds / warm_seconds
    merge_trajectory(
        RUN_TRAJECTORY_PATH,
        [
            make_record(
                "Jacobian", f"{grid}x{grid}", "run-service-cold",
                cold_seconds, 1.0,
            ),
            make_record(
                "Jacobian", f"{grid}x{grid}", "run-service-warm",
                warm_seconds, speedup,
            ),
        ],
    )
    assert speedup >= 10.0, (
        f"warm run job only {speedup:.1f}x faster than cold "
        f"({warm_seconds * 1e3:.3f} ms vs {cold_seconds * 1e3:.1f} ms)"
    )


def test_pooled_batch_matches_serial_artifacts_byte_for_byte(tmp_path):
    configs = _batch_configs()
    with CompileService(cache_dir=tmp_path / "serial-store") as serial:
        expected = [f.result() for f in serial.submit_batch(configs)]
    with CompileService(
        max_workers=2, cache_dir=tmp_path / "parallel-store"
    ) as parallel:
        actual = [f.result() for f in parallel.submit_batch(configs)]
    for serial_artifact, pooled_artifact in zip(expected, actual):
        assert pooled_artifact.fingerprint == serial_artifact.fingerprint
        assert pooled_artifact.csl_sources == serial_artifact.csl_sources
