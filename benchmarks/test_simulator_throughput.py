"""Simulation-throughput benchmarks across the execution backends.

The trajectories are written to the repo root as ``BENCH_simulator.json``
in the shared ``{name, grid, executor, seconds, speedup[, cache]}`` schema
(see :mod:`repro.eval.trajectory`; the file is gitignored and uploaded as
a CI artifact):

* a grid-size sweep of the Jacobian benchmark on the ``reference``,
  ``vectorized`` and ``compiled`` backends, pinning the claims that on an
  8x8 grid the vectorized lockstep executor is at least **3x** faster than
  the per-PE interpreter and the fused generated kernel at least **5x**
  (in practice both are orders of magnitude);
* a paper-scale head-to-head of the overlapped ``tiled`` backend
  (compiled shard kernels on the persistent pool) against ``compiled``
  on a 64x64 fabric, pinning **tiled >= 1.2x compiled** on hosts with 2+
  usable CPUs; single-CPU hosts cannot express shard parallelism, so they
  instead pin a **>= 0.95x vectorized** no-regression floor (and still
  record the trajectory);
* a paper-scale head-to-head of ``compiled`` against ``vectorized`` on the
  same 64x64 fabric, pinning a **1.2x** floor, with the kernel cache's
  cold (code-generating) and warm (memo-served) runs recorded as separate
  trajectory rows and the warm run asserted to reuse the kernel without
  re-generating it;
* an ``auto`` dispatcher row on the same 64x64 fabric, pinning that the
  dispatcher's end-to-end time is within **5%** of the best recorded
  single backend (its decision overhead is one trajectory read);
* a large-fabric 128x128 trajectory of ``vectorized``, ``compiled``
  (cold + warm) and ``tiled`` (recorded, not asserted — it exists to
  track scaling over time);
* a 256x256 weak/strong-scaling sweep of the tiled shard grid, written to
  ``BENCH_scaling.json`` with ``tiled:<kx>x<ky>`` executor labels.
"""

import gc
import time
from pathlib import Path

import numpy as np

from repro.baselines.numpy_ref import allocate_fields, field_to_columns
from repro.benchmarks import benchmark_by_name
from repro.eval.trajectory import make_record, merge_trajectory
from repro.tests_support import usable_cpus
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.codegen import (
    FUSION_ENV_VAR,
    kernel_cache_statistics,
    reset_kernel_cache,
)
from repro.wse.executors.tiled import SHARD_ENV_VAR
from repro.wse.simulator import WseSimulator

GRID_SIZES = (1, 2, 4, 8)
Z_DIM = 32
TIME_STEPS = 2
REPEATS = 3

#: the paper-scale head-to-head configuration (tiled and compiled, each
#: against vectorized).  The z extent and step count are sized so per-round
#: array math dominates the per-round synchronisation cost of the shard
#: pool by a wide margin.
TILED_GRID = 64
TILED_Z_DIM = 256
TILED_TIME_STEPS = 12

#: the large-fabric trajectory configuration: four times the PEs of the
#: paper-scale row, sized modestly in z and steps so the row stays cheap.
LARGE_GRID = 128
LARGE_Z_DIM = 64
LARGE_TIME_STEPS = 4

#: the scaling-sweep configuration: 16x the PEs of the paper-scale row,
#: shallow in z and steps so each shard-grid point stays affordable.
SCALING_GRID = 256
SCALING_Z_DIM = 32
SCALING_TIME_STEPS = 2
#: shard-grid extents swept for strong scaling (K of KxK).
SCALING_EXTENTS = (1, 2)

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_simulator.json"
SCALING_PATH = REPO_ROOT / "BENCH_scaling.json"


def _compiled(grid: int, z_dim: int = Z_DIM, time_steps: int = TIME_STEPS):
    bench = benchmark_by_name("Jacobian")
    program = bench.program(nx=grid, ny=grid, nz=z_dim, time_steps=time_steps)
    options = PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2)
    result = compile_stencil_program(program, options)
    rng = np.random.default_rng(29)
    fields = allocate_fields(program, lambda name, shape: rng.uniform(-1, 1, shape))
    columns = {
        decl.name: field_to_columns(program, decl.name, fields[decl.name])
        for decl in program.fields
    }
    return result.program_module, columns


def _best_simulation_seconds(program_module, columns, executor: str) -> float:
    """Best-of-N wall time of one full simulation (fresh backend per run).

    Backend construction and host-side field loading are included — they are
    part of what a figure-regeneration run pays per simulation (for ``tiled``
    that includes forking the shard workers) — while compilation is excluded
    (it is served by the compile cache in practice).  GC is paused so a
    collection on one side cannot skew the ratio.
    """
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPEATS):
            start = time.perf_counter()
            simulator = WseSimulator(program_module, executor=executor)
            for name, data in columns.items():
                simulator.load_field(name, data)
            simulator.execute()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def test_simulator_throughput_sweep_records_trajectory_and_speedup():
    """Sweep the PE grid, record the trajectory, pin the 8x8 speedups."""
    vectorized_speedups = {}
    compiled_speedups = {}
    records = []
    for grid in GRID_SIZES:
        program_module, columns = _compiled(grid)
        reference_seconds = _best_simulation_seconds(
            program_module, columns, "reference"
        )
        vectorized_seconds = _best_simulation_seconds(
            program_module, columns, "vectorized"
        )
        compiled_seconds = _best_simulation_seconds(
            program_module, columns, "compiled"
        )
        vectorized_speedups[grid] = reference_seconds / vectorized_seconds
        compiled_speedups[grid] = reference_seconds / compiled_seconds
        grid_label = f"{grid}x{grid}"
        records.append(
            make_record("Jacobian", grid_label, "reference", reference_seconds, 1.0)
        )
        records.append(
            make_record(
                "Jacobian",
                grid_label,
                "vectorized",
                vectorized_seconds,
                vectorized_speedups[grid],
            )
        )
        records.append(
            make_record(
                "Jacobian",
                grid_label,
                "compiled",
                compiled_seconds,
                compiled_speedups[grid],
                cache="warm",  # best-of-N: every timed run after the first
            )
        )
    merge_trajectory(TRAJECTORY_PATH, records)

    assert vectorized_speedups[8] >= 3.0, (
        f"vectorized executor speedup {vectorized_speedups[8]:.2f}x on 8x8 "
        f"is below the 3x requirement; trajectory in {TRAJECTORY_PATH}"
    )
    assert compiled_speedups[8] >= 5.0, (
        f"compiled executor speedup {compiled_speedups[8]:.2f}x on 8x8 is "
        f"below the 5x requirement; trajectory in {TRAJECTORY_PATH}"
    )


def _best_interleaved_seconds(program_module, columns, executors, repeats):
    """Best-of-N wall times for several backends, measured interleaved.

    Timing each backend in its own best-of-N block lets background load
    drift between blocks skew the ratios; round-robin interleaving puts
    every backend in the same load window on every repeat, so a noisy
    phase penalises all of them equally.
    """
    best = {executor: float("inf") for executor in executors}
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            for executor in executors:
                start = time.perf_counter()
                simulator = WseSimulator(program_module, executor=executor)
                for name, data in columns.items():
                    simulator.load_field(name, data)
                simulator.execute()
                elapsed = time.perf_counter() - start
                best[executor] = min(best[executor], elapsed)
    finally:
        gc.enable()
    return best


def test_tiled_beats_compiled_at_paper_scale(monkeypatch):
    """Overlapped ``tiled`` >= 1.2x ``compiled`` on 64x64 (2+ CPUs); on
    single-CPU hosts a >= 0.95x ``vectorized`` no-regression floor."""
    # Pin the historical 2x2 shard grid: the measured configuration must
    # not drift with the host-CPU-derived auto grid.
    monkeypatch.setenv(SHARD_ENV_VAR, "2")
    program_module, columns = _compiled(
        TILED_GRID, z_dim=TILED_Z_DIM, time_steps=TILED_TIME_STEPS
    )
    timings = _best_interleaved_seconds(
        program_module,
        columns,
        ("vectorized", "compiled", "tiled"),
        REPEATS + 1,
    )
    vectorized_seconds = timings["vectorized"]
    compiled_seconds = timings["compiled"]
    tiled_seconds = timings["tiled"]
    speedup = vectorized_seconds / tiled_seconds
    grid = f"{TILED_GRID}x{TILED_GRID}"
    merge_trajectory(
        TRAJECTORY_PATH,
        [
            make_record("Jacobian", grid, "vectorized", vectorized_seconds, 1.0),
            make_record("Jacobian", grid, "tiled", tiled_seconds, speedup),
        ],
    )

    if usable_cpus() >= 2:
        ratio = compiled_seconds / tiled_seconds
        assert ratio >= 1.2, (
            f"tiled-compiled speedup {ratio:.2f}x over compiled on {grid} is "
            f"below the 1.2x requirement ({tiled_seconds * 1e3:.1f} ms vs "
            f"{compiled_seconds * 1e3:.1f} ms); trajectory in {TRAJECTORY_PATH}"
        )
    else:
        # One CPU cannot express shard parallelism; the compiled shard
        # kernels and one-barrier protocol must still keep the backend
        # within a whisker of the vectorized single-process path.
        assert speedup >= 0.95, (
            f"tiled executor at {speedup:.2f}x vectorized on {grid} regressed "
            f"below the single-CPU 0.95x floor ({tiled_seconds * 1e3:.1f} ms "
            f"vs {vectorized_seconds * 1e3:.1f} ms); trajectory in "
            f"{TRAJECTORY_PATH}"
        )


def _one_simulation_seconds(program_module, columns, executor: str) -> float:
    """Wall time of a single simulation, setup included — what a cold
    (code-generating) run pays versus a warm (kernel-memo) one."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        simulator = WseSimulator(program_module, executor=executor)
        for name, data in columns.items():
            simulator.load_field(name, data)
        simulator.execute()
        return time.perf_counter() - start
    finally:
        gc.enable()


def test_compiled_beats_vectorized_at_paper_scale():
    """``compiled`` >= 1.2x ``vectorized`` on a 64x64 fabric, and the warm
    run reuses the generated kernel instead of re-generating it."""
    program_module, columns = _compiled(
        TILED_GRID, z_dim=TILED_Z_DIM, time_steps=TILED_TIME_STEPS
    )
    vectorized_seconds = _best_simulation_seconds(
        program_module, columns, "vectorized"
    )

    reset_kernel_cache()
    cold_seconds = _one_simulation_seconds(program_module, columns, "compiled")
    after_cold = kernel_cache_statistics()
    assert after_cold.codegens == 1, "the cold run must generate the kernel"
    assert after_cold.memory_hits == 0

    warm_seconds = _best_simulation_seconds(program_module, columns, "compiled")
    after_warm = kernel_cache_statistics()
    assert after_warm.codegens == 1, (
        "warm runs re-generated the kernel instead of reusing the memo"
    )
    assert after_warm.memory_hits >= REPEATS

    speedup = vectorized_seconds / warm_seconds
    grid = f"{TILED_GRID}x{TILED_GRID}"
    merge_trajectory(
        TRAJECTORY_PATH,
        [
            make_record("Jacobian", grid, "vectorized", vectorized_seconds, 1.0),
            make_record(
                "Jacobian",
                grid,
                "compiled",
                cold_seconds,
                vectorized_seconds / cold_seconds,
                cache="cold",
            ),
            make_record(
                "Jacobian", grid, "compiled", warm_seconds, speedup, cache="warm"
            ),
        ],
    )
    assert speedup >= 1.2, (
        f"compiled executor speedup {speedup:.2f}x on {grid} is below the "
        f"1.2x requirement ({warm_seconds * 1e3:.1f} ms vs "
        f"{vectorized_seconds * 1e3:.1f} ms); trajectory in {TRAJECTORY_PATH}"
    )


#: temporal block depths swept by the fusion head-to-head (1 = unblocked).
FUSION_DEPTHS = (1, 2, 4)


def test_temporal_blocking_speeds_up_compiled(monkeypatch):
    """The best blocked depth must run ``compiled`` >= 1.15x its unblocked
    self on the paper-scale 64x64 fabric, warm kernel cache.

    Temporal blocking moves the round loop inside the generated kernel: R
    delivery rounds per Python boundary crossing instead of one, with the
    exchange staging writing receive buffers directly.  Depths are timed
    interleaved (same load window per repeat) and every depth's warm row is
    recorded with an explicit ``r`` so the trajectory separates blocked and
    unblocked measurements.
    """
    program_module, columns = _compiled(
        TILED_GRID, z_dim=TILED_Z_DIM, time_steps=TILED_TIME_STEPS
    )
    best = {depth: float("inf") for depth in FUSION_DEPTHS}
    gc.collect()
    gc.disable()
    try:
        # Round-robin over depths; the first pass pays each depth's one-time
        # code generation, so with REPEATS extra passes the minima are warm.
        for _ in range(REPEATS + 1):
            for depth in FUSION_DEPTHS:
                if depth > 1:
                    monkeypatch.setenv(FUSION_ENV_VAR, str(depth))
                else:
                    monkeypatch.delenv(FUSION_ENV_VAR, raising=False)
                start = time.perf_counter()
                simulator = WseSimulator(program_module, executor="compiled")
                for name, data in columns.items():
                    simulator.load_field(name, data)
                simulator.execute()
                best[depth] = min(best[depth], time.perf_counter() - start)
    finally:
        gc.enable()
        monkeypatch.delenv(FUSION_ENV_VAR, raising=False)

    grid = f"{TILED_GRID}x{TILED_GRID}"
    merge_trajectory(
        TRAJECTORY_PATH,
        [
            make_record(
                "Jacobian",
                grid,
                "compiled",
                seconds,
                best[1] / seconds,
                cache="warm",
                r=depth,
            )
            for depth, seconds in best.items()
        ],
    )
    best_depth = min(
        (depth for depth in FUSION_DEPTHS if depth > 1), key=best.get
    )
    ratio = best[1] / best[best_depth]
    assert ratio >= 1.15, (
        f"temporal blocking at R={best_depth} reached only {ratio:.2f}x over "
        f"unblocked compiled on {grid} ({best[best_depth] * 1e3:.1f} ms vs "
        f"{best[1] * 1e3:.1f} ms), below the 1.15x requirement; trajectory "
        f"in {TRAJECTORY_PATH}"
    )


def test_auto_tracks_the_best_recorded_backend():
    """``auto`` on the paper-scale fabric must land within 5% of the best
    recorded single backend — its decision overhead is one trajectory read
    plus the delegate's own runtime."""
    from repro.eval.trajectory import read_trajectory

    program_module, columns = _compiled(
        TILED_GRID, z_dim=TILED_Z_DIM, time_steps=TILED_TIME_STEPS
    )
    auto_seconds = _best_simulation_seconds(program_module, columns, "auto")
    grid = f"{TILED_GRID}x{TILED_GRID}"
    rows = [
        row
        for row in read_trajectory(TRAJECTORY_PATH)
        if row["grid"] == grid
        and row["executor"] in ("reference", "vectorized", "compiled", "tiled")
        and row.get("cache") != "cold"
    ]
    assert rows, "the 64x64 head-to-heads must have recorded rows first"
    best = min(rows, key=lambda row: row["seconds"])
    merge_trajectory(
        TRAJECTORY_PATH,
        [
            make_record(
                "Jacobian",
                grid,
                "auto",
                auto_seconds,
                best["seconds"] / auto_seconds,
            )
        ],
    )
    assert auto_seconds <= best["seconds"] * 1.05, (
        f"auto took {auto_seconds * 1e3:.1f} ms on {grid}, more than 5% over "
        f"the best recorded backend ({best['executor']}: "
        f"{best['seconds'] * 1e3:.1f} ms); trajectory in {TRAJECTORY_PATH}"
    )


def test_large_fabric_trajectory_is_recorded():
    """128x128: record ``vectorized``, ``compiled`` (cold and warm) and
    ``tiled`` rows for scaling trends; no speedup floor is asserted here."""
    program_module, columns = _compiled(
        LARGE_GRID, z_dim=LARGE_Z_DIM, time_steps=LARGE_TIME_STEPS
    )
    vectorized_seconds = _best_simulation_seconds(
        program_module, columns, "vectorized"
    )
    reset_kernel_cache()
    cold_seconds = _one_simulation_seconds(program_module, columns, "compiled")
    warm_seconds = _best_simulation_seconds(program_module, columns, "compiled")
    tiled_seconds = _best_simulation_seconds(program_module, columns, "tiled")
    grid = f"{LARGE_GRID}x{LARGE_GRID}"
    merge_trajectory(
        TRAJECTORY_PATH,
        [
            make_record("Jacobian", grid, "vectorized", vectorized_seconds, 1.0),
            make_record(
                "Jacobian",
                grid,
                "compiled",
                cold_seconds,
                vectorized_seconds / cold_seconds,
                cache="cold",
            ),
            make_record(
                "Jacobian",
                grid,
                "compiled",
                warm_seconds,
                vectorized_seconds / warm_seconds,
                cache="warm",
            ),
            make_record(
                "Jacobian",
                grid,
                "tiled",
                tiled_seconds,
                vectorized_seconds / tiled_seconds,
            ),
        ],
    )


def test_scaling_sweep_records_weak_and_strong_rows(monkeypatch):
    """256x256 shard-grid sweep: strong scaling (fixed fabric, growing
    shard grid) plus one weak-scaling pair (per-shard work held constant
    from 128x128/1x1 to 256x256/2x2).  Recorded to ``BENCH_scaling.json``
    with ``tiled:<kx>x<ky>`` labels; no floor is asserted — single-CPU CI
    hosts cannot express the parallelism, the artifact tracks it instead.
    """
    records = []
    strong = {}
    program_module, columns = _compiled(
        SCALING_GRID, z_dim=SCALING_Z_DIM, time_steps=SCALING_TIME_STEPS
    )
    for extent in SCALING_EXTENTS:
        monkeypatch.setenv(SHARD_ENV_VAR, str(extent))
        strong[extent] = _best_simulation_seconds(
            program_module, columns, "tiled"
        )
    base = strong[SCALING_EXTENTS[0]]
    grid = f"{SCALING_GRID}x{SCALING_GRID}"
    for extent, seconds in strong.items():
        records.append(
            make_record(
                "JacobianStrong",
                grid,
                f"tiled:{extent}x{extent}",
                seconds,
                base / seconds,
            )
        )

    # Weak scaling: the 2x2 sweep point owns 128x128 PEs per shard; pair
    # it with a 128x128 fabric on a single shard (identical per-shard
    # work, 4x the workers).  Ideal weak efficiency is speedup 1.0.
    monkeypatch.setenv(SHARD_ENV_VAR, "1")
    small_module, small_columns = _compiled(
        LARGE_GRID, z_dim=SCALING_Z_DIM, time_steps=SCALING_TIME_STEPS
    )
    weak_base = _best_simulation_seconds(small_module, small_columns, "tiled")
    records.append(
        make_record(
            "JacobianWeak",
            f"{LARGE_GRID}x{LARGE_GRID}",
            "tiled:1x1",
            weak_base,
            1.0,
        )
    )
    records.append(
        make_record(
            "JacobianWeak",
            grid,
            "tiled:2x2",
            strong[2],
            weak_base / strong[2],
        )
    )
    merge_trajectory(SCALING_PATH, records)
    assert all(record["seconds"] > 0 for record in records)


def test_executors_match_on_the_swept_program():
    """The throughput comparison is only meaningful if every backend
    computes the same answer on the swept configuration — pin it
    byte-for-byte."""
    program_module, columns = _compiled(8)
    gathered = {}
    for executor in ("reference", "vectorized", "tiled", "compiled", "auto"):
        simulator = WseSimulator(program_module, executor=executor)
        for name, data in columns.items():
            simulator.load_field(name, data)
        simulator.execute()
        gathered[executor] = simulator.read_field("v")
    assert gathered["reference"].tobytes() == gathered["vectorized"].tobytes()
    assert gathered["reference"].tobytes() == gathered["tiled"].tobytes()
    assert gathered["reference"].tobytes() == gathered["compiled"].tobytes()
    assert gathered["reference"].tobytes() == gathered["auto"].tobytes()
