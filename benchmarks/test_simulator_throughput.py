"""Simulation-throughput benchmarks: reference vs vectorized executors.

A grid-size sweep simulates the Jacobian benchmark on both execution
backends and records the wall-time trajectory to ``BENCH_simulator.json``
(next to this file, gitignored: timings are host-specific), so future PRs
have a simulation-speed baseline to compare against — the simulator
counterpart of the compile-time trajectories from ``test_compile_time.py``.

The pinned claim: the vectorized lockstep executor is at least **3x** faster
than the per-PE reference interpreter on an 8x8 grid.  (In practice the gap
is an order of magnitude and widens with the grid, because the reference
backend re-interprets the program once per PE while the vectorized backend
interprets it once and batches the math.)
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.baselines.numpy_ref import allocate_fields, field_to_columns
from repro.benchmarks import benchmark_by_name
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.simulator import WseSimulator

GRID_SIZES = (1, 2, 4, 8)
Z_DIM = 32
TIME_STEPS = 2
REPEATS = 3
TRAJECTORY_PATH = Path(__file__).resolve().parent / "BENCH_simulator.json"


def _compiled(grid: int):
    bench = benchmark_by_name("Jacobian")
    program = bench.program(nx=grid, ny=grid, nz=Z_DIM, time_steps=TIME_STEPS)
    options = PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2)
    result = compile_stencil_program(program, options)
    rng = np.random.default_rng(29)
    fields = allocate_fields(program, lambda name, shape: rng.uniform(-1, 1, shape))
    columns = {
        decl.name: field_to_columns(program, decl.name, fields[decl.name])
        for decl in program.fields
    }
    return result.program_module, columns


def _best_simulation_seconds(program_module, columns, executor: str) -> float:
    """Best-of-N wall time of one full simulation (fresh backend per run).

    Backend construction and host-side field loading are included — they are
    part of what a figure-regeneration run pays per simulation — while
    compilation is excluded (it is served by the compile cache in practice).
    GC is paused so a collection on one side cannot skew the ratio.
    """
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPEATS):
            start = time.perf_counter()
            simulator = WseSimulator(program_module, executor=executor)
            for name, data in columns.items():
                simulator.load_field(name, data)
            simulator.execute()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def test_simulator_throughput_sweep_records_trajectory_and_speedup():
    """Sweep the PE grid, record the trajectory, pin the 8x8 speedup."""
    rows = []
    for grid in GRID_SIZES:
        program_module, columns = _compiled(grid)
        reference_seconds = _best_simulation_seconds(
            program_module, columns, "reference"
        )
        vectorized_seconds = _best_simulation_seconds(
            program_module, columns, "vectorized"
        )
        rows.append(
            {
                "grid": f"{grid}x{grid}",
                "reference_ms": round(reference_seconds * 1e3, 4),
                "vectorized_ms": round(vectorized_seconds * 1e3, 4),
                "speedup": round(reference_seconds / vectorized_seconds, 2),
            }
        )

    TRAJECTORY_PATH.write_text(
        json.dumps(
            {
                "benchmark": "Jacobian",
                "z_dim": Z_DIM,
                "time_steps": TIME_STEPS,
                "repeats": REPEATS,
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )

    eight = next(row for row in rows if row["grid"] == "8x8")
    assert eight["speedup"] >= 3.0, (
        f"vectorized executor speedup {eight['speedup']:.2f}x on 8x8 is below "
        f"the 3x requirement ({eight['vectorized_ms']:.2f} ms vs "
        f"{eight['reference_ms']:.2f} ms); trajectory in {TRAJECTORY_PATH}"
    )


def test_vectorized_results_match_reference_on_the_swept_program():
    """The throughput comparison is only meaningful if both backends compute
    the same answer on the swept configuration — pin it byte-for-byte."""
    program_module, columns = _compiled(8)
    gathered = {}
    for executor in ("reference", "vectorized"):
        simulator = WseSimulator(program_module, executor=executor)
        for name, data in columns.items():
            simulator.load_field(name, data)
        simulator.execute()
        gathered[executor] = simulator.read_field("v")
    assert gathered["reference"].tobytes() == gathered["vectorized"].tobytes()
