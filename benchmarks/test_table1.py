"""Regenerates Table 1: lines-of-code comparison."""

import pytest

from repro.eval.table1 import compute_table1, format_table1


@pytest.mark.figure("table1")
def test_table1_rows(benchmark):
    rows = benchmark(compute_table1)
    print("\n" + format_table1(rows))
    assert len(rows) == 5
    for row in rows:
        # The DSL source is dramatically smaller than the generated CSL
        # (Table 1's headline result).
        assert row.dsl_ours < row.csl_kernel_only
        assert row.csl_kernel_only < row.csl_entire
        assert row.csl_entire > 200
