"""Suite-wide hermeticity for the compilation service.

Any test that compiles through the service (the eval figures, the
benchmarks, the service suite itself) would otherwise publish artifacts to
the user-level store (``~/.cache/repro-csl``).  Point the store at a
session-scoped pytest temp directory instead, so test runs neither read
stale artifacts from nor leak artifacts into the real store.
"""

import os

import pytest

from repro.service.cache import REPRO_CACHE_DIR_ENV
from repro.wse.executors.tiled import SHARD_ENV_VAR


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_store(tmp_path_factory):
    previous = os.environ.get(REPRO_CACHE_DIR_ENV)
    os.environ[REPRO_CACHE_DIR_ENV] = str(
        tmp_path_factory.mktemp("suite-artifact-store")
    )
    yield
    if previous is None:
        os.environ.pop(REPRO_CACHE_DIR_ENV, None)
    else:
        os.environ[REPRO_CACHE_DIR_ENV] = previous


@pytest.fixture(scope="session", autouse=True)
def _deterministic_shard_geometry():
    """Pin the tiled backend to its historical 2x2 shard grid.

    The auto heuristic derives the extent from the host's usable CPUs, so
    on a 1-CPU runner every tiled test would silently degenerate to one
    shard and stop exercising seam exchanges.  Tests about the heuristic
    itself pass an explicit ``cpus`` or monkeypatch the variable away.
    """
    if os.environ.get(SHARD_ENV_VAR):
        yield  # an operator override outranks the suite default
        return
    os.environ[SHARD_ENV_VAR] = "2"
    yield
    os.environ.pop(SHARD_ENV_VAR, None)
