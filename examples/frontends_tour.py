"""Front-end agnosticism tour: the same pipeline serves three DSLs.

The paper's central usability claim is that any front-end emitting the
stencil dialect targets the WSE without user-code changes.  This example
writes the *same* heat-diffusion kernel three ways —

* symbolically, with the Devito-like DSL,
* as a Fortran loop nest, through the Flang-like extractor,
* as PSyclone-style kernel metadata + algorithm layer,

— compiles each through the identical pipeline, runs all three on the fabric
simulator with the same input data and shows they produce the same result
and the same program structure.

Run with:  python examples/frontends_tour.py
"""

import numpy as np

from repro.baselines.numpy_ref import allocate_fields, field_to_columns
from repro.dialects import csl
from repro.frontends.common import Constant, FieldAccess, StencilProgram
from repro.frontends.devito_like import Eq, Grid, Operator, TimeFunction
from repro.frontends.flang_like import parse_fortran_stencil
from repro.frontends.psyclone_like import (
    AccessMode,
    AlgorithmLayer,
    FieldArgument,
    Kernel,
    KernelMetadata,
)
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.simulator import WseSimulator

SHAPE = (5, 5, 12)
ALPHA = 0.1


def devito_version() -> StencilProgram:
    grid = Grid(shape=SHAPE, halo=(1, 1, 1))
    u = TimeFunction("u", grid)
    v = TimeFunction("v", grid)
    update = u.center + u.laplace() * Constant(ALPHA)
    return Operator([Eq(v, update)], name="diffusion_devito", time_steps=1).to_stencil_program()


def flang_version() -> StencilProgram:
    nx, ny, nz = SHAPE
    statement = (
        "v(k,j,i) = u(k,j,i) + (u(k,j,i+1) + u(k,j,i-1) + u(k,j+1,i) + u(k,j-1,i)"
        " + u(k+1,j,i) + u(k-1,j,i) + u(k,j,i) * -6.0) * 0.1"
    )
    source = f"""
    do i = 1, {nx}
      do j = 1, {ny}
        do k = 1, {nz}
          {statement}
        enddo
      enddo
    enddo
    """
    return parse_fortran_stencil(source, name="diffusion_flang", time_steps=1)


def psyclone_version() -> StencilProgram:
    metadata = KernelMetadata(
        "diffusion_kernel",
        [
            FieldArgument("u", AccessMode.READ, stencil_extent=1),
            FieldArgument("v", AccessMode.WRITE),
        ],
    )

    def update(access):
        laplacian = (
            access("u", 1, 0, 0) + access("u", -1, 0, 0)
            + access("u", 0, 1, 0) + access("u", 0, -1, 0)
            + access("u", 0, 0, 1) + access("u", 0, 0, -1)
            + access("u", 0, 0, 0) * Constant(-6.0)
        )
        return access("u", 0, 0, 0) + laplacian * Constant(ALPHA)

    kernel = Kernel(metadata, {"v": update})
    return (
        AlgorithmLayer("diffusion_psyclone", SHAPE, time_steps=1)
        .invoke(kernel)
        .to_stencil_program()
    )


def run(program: StencilProgram, fields) -> tuple[np.ndarray, int]:
    options = PipelineOptions(grid_width=SHAPE[0], grid_height=SHAPE[1], num_chunks=2)
    compiled = compile_stencil_program(program, options)
    # Run on both execution backends; the vectorized lockstep executor must
    # reproduce the per-PE reference interpreter bit for bit.
    outputs = {}
    for backend in ("reference", "vectorized"):
        simulator = WseSimulator(compiled.program_module, executor=backend)
        for decl in program.fields:
            simulator.load_field(decl.name, field_to_columns(program, decl.name, fields[decl.name]))
        simulator.execute()
        outputs[backend] = simulator.read_field("v")
    assert np.array_equal(outputs["reference"], outputs["vectorized"])
    task_count = sum(
        1 for op in compiled.program_module.ops if isinstance(op, csl.TaskOp)
    )
    return outputs["vectorized"], task_count


def main() -> None:
    programs = {
        "Devito-like": devito_version(),
        "Flang-like": flang_version(),
        "PSyclone-like": psyclone_version(),
    }

    rng = np.random.default_rng(11)
    interior = rng.uniform(-1.0, 1.0, SHAPE)
    results = {}
    for label, program in programs.items():
        fields = allocate_fields(program, lambda name, shape: interior)
        result, task_count = run(program, fields)
        results[label] = result
        print(f"{label:<14} compiled: {task_count} tasks in the PE program")

    reference = results["Devito-like"]
    for label, result in results.items():
        np.testing.assert_allclose(result, reference, rtol=1e-5, atol=1e-6)
    print("all three front-ends produce identical results on the simulated WSE — OK")
    print("(each validated bit-for-bit across the reference and vectorized executors)")


if __name__ == "__main__":
    main()
