"""Quickstart: compile a 3-D Jacobi stencil to CSL and run it on the
simulated Wafer-Scale Engine.

This walks the whole flow of the paper in ~60 lines:

1. describe the stencil (here directly as a ``StencilProgram``; the other
   examples use the Devito-like / Fortran / PSyclone-like front-ends);
2. run the lowering pipeline (stencil dialect -> csl-stencil -> csl-wrapper
   -> csl-ir);
3. print the generated CSL sources;
4. execute the generated program on the fabric simulator and check it against
   the NumPy reference.

The simulator runs on the ``vectorized`` lockstep backend by default; set
``REPRO_EXECUTOR=reference`` to run the per-PE interpreter instead (both
produce bit-identical results — see the "Execution backends" section of the
README).

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.backend.csl_printer import print_csl_sources
from repro.baselines.numpy_ref import allocate_fields, field_to_columns, run_reference
from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.simulator import WseSimulator


def build_program() -> StencilProgram:
    """A 7-point Jacobi update over a 6 x 6 x 16 grid, two time steps."""
    u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    expression = (
        u(0, 0, 0) + u(1, 0, 0) + u(-1, 0, 0)
        + u(0, 1, 0) + u(0, -1, 0)
        + u(0, 0, 1) + u(0, 0, -1)
    ) * Constant(1.0 / 7.0)
    return StencilProgram(
        name="quickstart_jacobi",
        fields=[FieldDecl("u", (6, 6, 16)), FieldDecl("v", (6, 6, 16))],
        equations=[StencilEquation("v", expression)],
        time_steps=2,
    )


def main() -> None:
    program = build_program()

    # One PE per (x, y) grid cell; each PE holds a column of 16 z values.
    options = PipelineOptions(grid_width=6, grid_height=6, num_chunks=2)
    compiled = compile_stencil_program(program, options)

    sources = print_csl_sources(compiled.csl_modules)
    for file_name, text in sources.items():
        print(f"=== {file_name} ({len(text.splitlines())} lines) ===")
        print("\n".join(text.splitlines()[:12]))
        print("    ...\n")

    # Load random data, execute on the simulated fabric, and validate.
    rng = np.random.default_rng(42)
    fields = allocate_fields(program, lambda name, shape: rng.uniform(-1, 1, shape))
    reference = {name: array.copy() for name, array in fields.items()}

    simulator = WseSimulator(compiled.program_module)
    for decl in program.fields:
        simulator.load_field(decl.name, field_to_columns(program, decl.name, fields[decl.name]))
    statistics = simulator.execute()

    run_reference(program, reference)
    expected = field_to_columns(program, "v", reference["v"])
    measured = simulator.read_field("v")
    np.testing.assert_allclose(measured, expected, rtol=1e-5, atol=1e-6)

    print(f"simulation statistics ({simulator.executor_name} executor):")
    print(f"  delivery rounds     : {statistics.rounds}")
    print(f"  tasks executed      : {statistics.tasks_run}")
    print(f"  halo exchanges      : {statistics.exchanges}")
    print(f"  DSD operations      : {statistics.dsd_ops}")
    print(f"  peak PE memory      : {statistics.max_pe_memory_bytes} bytes")
    print("result matches the NumPy reference — OK")


if __name__ == "__main__":
    main()
