"""Regenerate every table and figure of the paper's evaluation.

Prints the data behind Figures 4-7 and Table 1 (see EXPERIMENTS.md for the
paper-vs-measured comparison).  All calibration compiles go through the
compilation service (``repro.service``), whose content-addressed cache
compiles each distinct (benchmark, target, chunks) configuration once and
serves every repeat warm — the statistics block at the end of the report
shows how many compiles the cache absorbed.  Calibration simulations run on
the vectorized lockstep executor by default; ``REPRO_EXECUTOR=reference``
switches them to the per-PE interpreter (same numbers, slower).

Run with:  python examples/reproduce_paper.py
"""

from repro.eval.report import full_report


if __name__ == "__main__":
    print(full_report())
