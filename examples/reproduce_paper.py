"""Regenerate every table and figure of the paper's evaluation.

Prints the data behind Figures 4-7 and Table 1 (see EXPERIMENTS.md for the
paper-vs-measured comparison).  Equivalent to running the benchmark harness
with ``pytest benchmarks/ --benchmark-only`` but as a plain script.

Run with:  python examples/reproduce_paper.py
"""

from repro.eval.report import full_report


if __name__ == "__main__":
    print(full_report())
