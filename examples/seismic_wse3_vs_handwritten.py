"""Seismic modelling example: the 25-point stencil on WSE2 and WSE3.

Reproduces the Figure 5 experiment at example scale: the 25-point seismic
kernel (translated from the hand-written Cerebras implementation of
Jacquelin et al.) is compiled by the pipeline, functionally validated on the
simulator, and its estimated throughput is compared for

* the hand-written WSE2 kernel (modelled: two chunks, full-column exchange,
  twice the task count),
* our generated code on the WSE2, and
* our generated code on the WSE3.

Run with:  python examples/seismic_wse3_vs_handwritten.py
"""

import numpy as np

from repro.baselines.numpy_ref import allocate_fields, field_to_columns, run_reference
from repro.benchmarks import seismic_benchmark
from repro.benchmarks.definitions import PROBLEM_SIZES
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.machine import WSE2, WSE3
from repro.wse.perf_model import (
    estimate_performance,
    handwritten_seismic_activity,
    measure_pe_activity,
)
from repro.wse.simulator import WseSimulator


def validate_small_instance() -> None:
    """Functional check of the generated 25-point kernel on a 9x9 grid."""
    program = seismic_benchmark.program(nx=9, ny=9, nz=16, time_steps=1)
    options = PipelineOptions(grid_width=9, grid_height=9, num_chunks=1)
    compiled = compile_stencil_program(program, options)

    rng = np.random.default_rng(3)
    fields = allocate_fields(program, lambda name, shape: rng.uniform(-1, 1, shape))
    reference = {name: array.copy() for name, array in fields.items()}

    simulator = WseSimulator(compiled.program_module)
    for decl in program.fields:
        simulator.load_field(
            decl.name, field_to_columns(program, decl.name, fields[decl.name])
        )
    simulator.execute()
    run_reference(program, reference)
    np.testing.assert_allclose(
        simulator.read_field("v"),
        field_to_columns(program, "v", reference["v"]),
        rtol=2e-5,
        atol=1e-5,
    )
    print(
        "25-point kernel functionally validated against the NumPy reference "
        f"({simulator.executor_name} executor)"
    )


def performance_comparison() -> None:
    generated_wse2 = measure_pe_activity(seismic_benchmark, WSE2, num_chunks=1)
    generated_wse3 = measure_pe_activity(seismic_benchmark, WSE3, num_chunks=1)
    handwritten = handwritten_seismic_activity(generated_wse2, seismic_benchmark.z_dim)

    print(f"\n{'size':<14} {'hand-written WSE2':>18} {'ours WSE2':>12} {'ours WSE3':>12}")
    for size in PROBLEM_SIZES:
        hand = estimate_performance(seismic_benchmark, WSE2, size, activity=handwritten)
        ours2 = estimate_performance(seismic_benchmark, WSE2, size, activity=generated_wse2)
        ours3 = estimate_performance(seismic_benchmark, WSE3, size, activity=generated_wse3)
        print(
            f"{size.nx}x{size.ny:<9} {hand.gpts_per_second:>15.0f}    "
            f"{ours2.gpts_per_second:>12.0f} {ours3.gpts_per_second:>12.0f}  GPts/s"
        )
        print(
            f"{'':<14} {'1.00x':>18} "
            f"{ours2.gpts_per_second / hand.gpts_per_second:>11.3f}x "
            f"{ours3.gpts_per_second / hand.gpts_per_second:>11.3f}x"
        )


if __name__ == "__main__":
    validate_small_instance()
    performance_comparison()
