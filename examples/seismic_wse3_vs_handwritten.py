"""Seismic modelling example: generated vs hand-written 25-point CSL.

Reproduces the Figure 5 experiment at example scale, now with an *actual*
hand-written kernel in the loop.  ``examples/handwritten/`` holds a 25-point
seismic CSL program written against the grammar subset :mod:`repro.csl`
parses (the spelling a Cerebras engineer would write: named slices, shared
Taylor coefficients, comments).  This script

* parses the handwritten sources into a :class:`ProgramImage` and runs them
  on every registered executor, checking all executors agree byte for byte;
* field-diffs the handwritten kernel against the pipeline-generated one
  with the shared diff harness (:func:`repro.csl.diff_images`);
* functionally validates the generated kernel against the NumPy reference;
* keeps the analytic WSE2/WSE3 projection of the paper's Figure 5 as a
  side table (the modelled hand-written WSE2 baseline: two chunks,
  full-column exchange, twice the task count).

Run with:  python examples/seismic_wse3_vs_handwritten.py
"""

import os

import numpy as np

from repro.baselines.numpy_ref import allocate_fields, field_to_columns, run_reference
from repro.benchmarks import seismic_benchmark
from repro.benchmarks.definitions import PROBLEM_SIZES
from repro.backend.csl_printer import print_csl_sources
from repro.csl import diff_images, parse_csl_dir, parse_csl_sources
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.executors import available_executors
from repro.wse.machine import WSE2, WSE3
from repro.wse.perf_model import (
    estimate_performance,
    handwritten_seismic_activity,
    measure_pe_activity,
)
from repro.wse.simulator import WseSimulator

HANDWRITTEN_DIR = os.path.join(os.path.dirname(__file__), "handwritten")


def handwritten_on_all_executors():
    """Parse the handwritten kernel and run it on every executor.

    Returns the parsed image; raises if any executor's fields diverge from
    the reference executor's.
    """
    image = parse_csl_dir(HANDWRITTEN_DIR).image()
    print(
        f"parsed handwritten kernel '{image.module.sym_name}' "
        f"({image.width}x{image.height} fabric, "
        f"{len(image.buffers)} buffers, {len(image.callables)} callables)"
    )

    rng = np.random.default_rng(13)
    inputs = {
        name: rng.uniform(-1.0, 1.0, (image.width, image.height, size)).astype(
            np.float32
        )
        for name, size in sorted(image.buffers.items())
    }
    baseline: dict[str, np.ndarray] | None = None
    for executor in available_executors():
        simulator = WseSimulator(image, executor=executor)
        for name, columns in inputs.items():
            simulator.load_field(name, columns.copy())
        simulator.execute()
        fields = {name: simulator.read_field(name) for name in sorted(image.buffers)}
        if baseline is None:
            baseline = fields
        else:
            for name, array in fields.items():
                if array.tobytes() != baseline[name].tobytes():
                    raise AssertionError(
                        f"executor '{executor}' diverges on field '{name}'"
                    )
        print(f"  {executor:<12} ran handwritten CSL, fields byte-identical")


def handwritten_vs_generated() -> None:
    """Field-diff the handwritten kernel against the generated one."""
    handwritten = parse_csl_dir(HANDWRITTEN_DIR).image()
    program = seismic_benchmark.program(
        nx=handwritten.width, ny=handwritten.height, nz=16, time_steps=2
    )
    options = PipelineOptions(
        grid_width=handwritten.width,
        grid_height=handwritten.height,
        num_chunks=1,
    )
    compiled = compile_stencil_program(program, options)
    generated = parse_csl_sources(print_csl_sources(compiled.csl_modules)).image()

    report = diff_images(
        generated,
        handwritten,
        fields=("u", "v"),
        executors=("reference", "vectorized"),
        label_a="generated",
        label_b="handwritten",
    )
    print()
    print(report.format())
    if not report.agreed:
        raise AssertionError("handwritten kernel diverged from generated code")


def validate_small_instance() -> None:
    """Functional check of the generated 25-point kernel on a 9x9 grid."""
    program = seismic_benchmark.program(nx=9, ny=9, nz=16, time_steps=1)
    options = PipelineOptions(grid_width=9, grid_height=9, num_chunks=1)
    compiled = compile_stencil_program(program, options)

    rng = np.random.default_rng(3)
    fields = allocate_fields(program, lambda name, shape: rng.uniform(-1, 1, shape))
    reference = {name: array.copy() for name, array in fields.items()}

    simulator = WseSimulator(compiled.program_module)
    for decl in program.fields:
        simulator.load_field(
            decl.name, field_to_columns(program, decl.name, fields[decl.name])
        )
    simulator.execute()
    run_reference(program, reference)
    np.testing.assert_allclose(
        simulator.read_field("v"),
        field_to_columns(program, "v", reference["v"]),
        rtol=2e-5,
        atol=1e-5,
    )
    print(
        "\n25-point kernel functionally validated against the NumPy reference "
        f"({simulator.executor_name} executor)"
    )


def performance_comparison() -> None:
    generated_wse2 = measure_pe_activity(seismic_benchmark, WSE2, num_chunks=1)
    generated_wse3 = measure_pe_activity(seismic_benchmark, WSE3, num_chunks=1)
    handwritten = handwritten_seismic_activity(generated_wse2, seismic_benchmark.z_dim)

    print(f"\n{'size':<14} {'hand-written WSE2':>18} {'ours WSE2':>12} {'ours WSE3':>12}")
    for size in PROBLEM_SIZES:
        hand = estimate_performance(seismic_benchmark, WSE2, size, activity=handwritten)
        ours2 = estimate_performance(seismic_benchmark, WSE2, size, activity=generated_wse2)
        ours3 = estimate_performance(seismic_benchmark, WSE3, size, activity=generated_wse3)
        print(
            f"{size.nx}x{size.ny:<9} {hand.gpts_per_second:>15.0f}    "
            f"{ours2.gpts_per_second:>12.0f} {ours3.gpts_per_second:>12.0f}  GPts/s"
        )
        print(
            f"{'':<14} {'1.00x':>18} "
            f"{ours2.gpts_per_second / hand.gpts_per_second:>11.3f}x "
            f"{ours3.gpts_per_second / hand.gpts_per_second:>11.3f}x"
        )


if __name__ == "__main__":
    handwritten_on_all_executors()
    handwritten_vs_generated()
    validate_small_instance()
    performance_comparison()
