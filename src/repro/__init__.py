"""repro: reproduction of "An MLIR Lowering Pipeline for Stencils at Wafer-Scale".

The package is organised into:

- :mod:`repro.ir`        -- an SSA IR core in the spirit of xDSL/MLIR.
- :mod:`repro.dialects`  -- the dialects used by the paper (builtin, arith,
  func, scf, tensor, memref, linalg, stencil, dmp, varith, csl_stencil,
  csl_wrapper and csl).
- :mod:`repro.transforms` -- the five groups of lowering transformations plus
  the optimisation passes, and the full pipeline driver.
- :mod:`repro.backend`   -- the CSL code printer, layout metaprogram generator
  and the executable PE-program builder used by the simulator.
- :mod:`repro.wse`       -- the Wafer-Scale Engine substrate: fabric simulator,
  runtime communication library, machine specifications and performance model.
- :mod:`repro.frontends` -- three small front-ends (Devito-like, Flang-like,
  PSyclone-like) that emit the stencil dialect.
- :mod:`repro.baselines` -- NumPy reference executor, GPU/CPU analytical
  baselines and roofline machinery.
- :mod:`repro.benchmarks` -- the five paper benchmarks.
- :mod:`repro.eval`      -- the harness that regenerates every figure/table.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
