"""Backend: CSL source generation from csl-ir.

* :mod:`repro.backend.csl_printer` — prints a csl-ir module as CSL source
  text (the paper's final code-generation step, Section 4.3);
* :mod:`repro.backend.runtime_library` — the CSL source template of the
  runtime communications library (Section 5.6) that generated programs
  import;
* :mod:`repro.backend.loc` — lines-of-code accounting used by Table 1.
"""

from repro.backend.csl_printer import CslPrinter, print_csl_module, print_csl_sources

__all__ = ["CslPrinter", "print_csl_module", "print_csl_sources"]
