"""CSL source printer for csl-ir modules.

The csl-ir dialect mirrors CSL constructs one-to-one, so printing is a
syntax-directed walk: buffers become ``@zeros`` declarations, tasks become
``task``/``@bind_local_task`` pairs, DSD builtins print as their ``@fadds``
style calls, and the layout module prints ``@set_rectangle`` /
``@set_tile_code`` over the PE grid.

The concrete spellings (builtin names, operator symbols, the communicate call
schema) come from :mod:`repro.csl.surface`, which the text parser
(:mod:`repro.csl.parser`) consumes too — printed output is a *lossless*
encoding of the csl-ir module, so ``print → parse`` is a fixpoint (pinned by
``tests/csl/test_roundtrip.py``).
"""

from __future__ import annotations

import io

from repro.csl import surface
from repro.dialects import arith, csl, memref, scf
from repro.ir.attributes import (
    Attribute,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
)
from repro.ir.operation import Block, Operation
from repro.ir.types import MemRefType
from repro.ir.value import SSAValue


class CslPrinter:
    """Prints one csl-ir module (program or layout) as CSL source text."""

    def __init__(self) -> None:
        self.buffer = io.StringIO()
        self.indent = 0
        self._names: dict[int, str] = {}
        self._counter = 0

    # ------------------------------------------------------------------ #

    def print_module(self, module: csl.CslModuleOp) -> str:
        if module.kind == csl.ModuleKind.LAYOUT:
            self._print_layout(module)
        else:
            self._print_program(module)
        return self.buffer.getvalue()

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _line(self, text: str = "") -> None:
        self.buffer.write("  " * self.indent + text + "\n")

    def _name(self, value: SSAValue, hint: str = "v") -> str:
        key = id(value)
        if key not in self._names:
            self._names[key] = f"{hint}{self._counter}"
            self._counter += 1
        return self._names[key]

    @staticmethod
    def _attr_text(attribute: Attribute) -> str:
        return surface.attr_text(attribute)

    def _operand(self, value: SSAValue) -> str:
        return self._names.get(id(value), f"v{id(value) % 1000}")

    # ------------------------------------------------------------------ #
    # Layout module
    # ------------------------------------------------------------------ #

    def _print_layout(self, module: csl.CslModuleOp) -> None:
        width = module.attributes.get("width")
        height = module.attributes.get("height")
        self._line(f"// layout metaprogram: {module.sym_name}")
        self._line("param width : u16;")
        self._line("param height : u16;")
        self._line()
        for op in module.ops:
            if isinstance(op, csl.ImportModuleOp):
                name = self._name(op.result, "lib")
                fields = ", ".join(
                    f".{key} = {self._attr_text(value)}"
                    for key, value in op.fields.items()
                )
                suffix = f", .{{ {fields} }}" if fields else ""
                self._line(f'const {name} = @import_module("{op.module}"{suffix});')
            elif isinstance(op, csl.SetRectangleOp):
                self._line("layout {")
                self.indent += 1
                self._line(f"@set_rectangle({op.width}, {op.height});")
            elif isinstance(op, csl.SetTileCodeOp):
                params = ", ".join(
                    f".{key} = {self._attr_text(value)}"
                    for key, value in op.params.items()
                )
                self._line("var x : u16 = 0;")
                self._line(f"while (x < {self._attr_text(width)}) : (x += 1) {{")
                self.indent += 1
                self._line("var y : u16 = 0;")
                self._line(f"while (y < {self._attr_text(height)}) : (y += 1) {{")
                self.indent += 1
                self._line(
                    f'@set_tile_code(x, y, "{op.program_file}", .{{ {params} }});'
                )
                self.indent -= 1
                self._line("}")
                self.indent -= 1
                self._line("}")
        if self.indent > 0:
            self.indent -= 1
            self._line("}")

    # ------------------------------------------------------------------ #
    # Program module
    # ------------------------------------------------------------------ #

    def _print_program(self, module: csl.CslModuleOp) -> None:
        self._line(f"// PE program: {module.sym_name}")
        for op in module.ops:
            self._print_top_level(op)

    def _print_top_level(self, op: Operation) -> None:
        if isinstance(op, csl.ParamOp):
            default = f" = {op.default}" if op.default is not None else ""
            self._line(f"param {op.param_name} : i16{default};")
        elif isinstance(op, csl.ImportModuleOp):
            name = self._name(op.result, "lib")
            fields = ", ".join(
                f".{key} = {self._attr_text(value)}"
                for key, value in op.fields.items()
            )
            suffix = f", .{{ {fields} }}" if fields else ""
            self._line(f'const {name} = @import_module("{op.module}"{suffix});')
        elif isinstance(op, csl.VariableOp):
            self._line(f"var {op.sym_name} : i32 = {op.init};")
        elif isinstance(op, csl.ZerosOp):
            name_attr = op.attributes.get("sym_name")
            name = name_attr.data if isinstance(name_attr, StringAttr) else "buffer"
            size = op.buffer_type.element_count()
            self._line(f"var {name} = @zeros([{size}]f32);")
        elif isinstance(op, csl.FuncOp):
            self._print_callable(f"fn {op.sym_name}()", op.body.blocks[0])
        elif isinstance(op, csl.TaskOp):
            arguments = ", ".join(
                f"{self._name(argument, 'arg')} : i16"
                for argument in op.body.blocks[0].args
            )
            self._print_callable(f"task {op.sym_name}({arguments})", op.body.blocks[0])
            self._line(
                f"comptime {{ @bind_local_task(@get_local_task_id({op.task_id}), "
                f"{op.sym_name}); }}"
            )
        elif isinstance(op, csl.ExportOp):
            self._line(f'comptime {{ @export_symbol({op.sym_name}, "{op.sym_name}"); }}')
        elif isinstance(op, csl.RpcOp):
            self._line(
                "comptime { @rpc(@get_data_task_id("
                + self._operand(op.operands[0])
                + ".LAUNCH)); }"
            )

    def _print_callable(self, header: str, block: Block) -> None:
        self._line(f"{header} void {{")
        self.indent += 1
        for op in block.ops:
            self._print_statement(op)
        self.indent -= 1
        self._line("}")
        self._line()

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #

    def _print_statement(self, op: Operation) -> None:
        if isinstance(op, (csl.ConstantOp, arith.ConstantOp)):
            name = self._name(op.results[0], "c")
            self._line(f"const {name} = {op.value};")
        elif isinstance(op, csl.LoadVarOp):
            self._names[id(op.result)] = op.var
        elif isinstance(op, csl.StoreVarOp):
            self._line(f"{op.var} = {self._operand(op.value)};")
        elif type(op) in surface.BINARY_OP_SYMBOLS:
            name = self._name(op.results[0], "t")
            symbol = surface.BINARY_OP_SYMBOLS[type(op)]
            self._line(
                f"const {name} = {self._operand(op.lhs)} {symbol} "
                f"{self._operand(op.rhs)};"
            )
        elif isinstance(op, arith.CmpiOp):
            name = self._name(op.results[0], "cond")
            comparison = surface.CMP_PREDICATE_SYMBOLS[op.predicate]
            self._line(
                f"const {name} = {self._operand(op.lhs)} {comparison} "
                f"{self._operand(op.rhs)};"
            )
        elif isinstance(op, scf.IfOp):
            self._line(f"if ({self._operand(op.condition)}) {{")
            self.indent += 1
            for inner in op.then_region.blocks[0].ops:
                self._print_statement(inner)
            self.indent -= 1
            self._line("} else {")
            self.indent += 1
            for inner in op.else_region.blocks[0].ops:
                self._print_statement(inner)
            self.indent -= 1
            self._line("}")
        elif isinstance(op, csl.CallOp):
            self._line(f"{op.callee}();")
        elif isinstance(op, csl.ActivateOp):
            self._line(f"@activate(@get_local_task_id({op.task_id})); // {op.task_name}")
        elif isinstance(op, csl.GetMemDsdOp):
            name = self._name(op.result, "dsd")
            buffer_attr = op.attributes.get("buffer")
            buffer = buffer_attr.data if isinstance(buffer_attr, StringAttr) else "buffer"
            index = "i" if op.stride == 1 else f"i * {op.stride}"
            if op.offset:
                access = f"{buffer}[{op.offset} + {index}]"
            else:
                access = f"{buffer}[{index}]"
            self._line(
                f"const {name} = @get_dsd({surface.DSD_KIND_MEM1D}, "
                f".{{ .tensor_access = |i|{{{op.length}}} -> {access} }});"
            )
        elif isinstance(op, csl.IncrementDsdOffsetOp):
            name = self._name(op.result, "dsd")
            base = self._operand(op.operands[0])
            dynamic = (
                f" + {self._operand(op.operands[1])}" if len(op.operands) > 1 else ""
            )
            self._line(
                f"const {name} = @increment_dsd_offset({base}, "
                f"{op.offset}{dynamic}, f32);"
            )
        elif isinstance(op, csl._DsdBuiltinOp):
            operands = ", ".join(self._operand(value) for value in op.operands)
            self._line(f"{op.builtin_name}({operands});")
        elif isinstance(op, csl.CommsExchangeOp):
            self._print_communicate(op)
        elif isinstance(op, csl.UnblockCmdStreamOp):
            self._line(f"{surface.SYS_RECEIVER}.{surface.UNBLOCK_MEMBER}();")
        elif isinstance(op, csl.ReturnOp):
            self._line("return;")
        elif isinstance(op, scf.YieldOp):
            return
        elif isinstance(op, memref.SubviewOp):
            # Subviews surviving to code generation print as DSD definitions.
            name = self._name(op.results[0], "view")
            self._line(
                f"const {name} = @get_dsd(mem1d_dsd, .{{ .tensor_access = "
                f"|i|{{{op.size}}} -> {self._operand(op.source)}[i] }});"
            )
        else:
            self._line(f"// <unprinted operation {op.name}>")

    def _print_communicate(self, op: csl.CommsExchangeOp) -> None:
        """The extended communicate call: every exchange attribute rides the
        argument struct, so the printed text is a lossless encoding the
        parser can rebuild the op from (the real runtime library accepts and
        ignores extra comptime struct fields)."""
        attributes = op.attributes
        if "src_offset" not in attributes:
            # hand-built images without the plan metadata: legacy short form
            recv = op.recv_callback or "null"
            self._line(
                f"{surface.COMMS_RECEIVER}.{surface.COMMUNICATE_MEMBER}"
                f"(&{self._operand(op.buffer)}, "
                f"{op.num_chunks}, &{recv}, &{op.done_callback});"
            )
            return
        directions = ", ".join(
            f".{{ {dx}, {dy} }}" for dx, dy in op.directions
        )
        fields = [
            f".num_chunks = {op.num_chunks}",
            f".chunk_size = {attributes['chunk_size'].value}",
            f".src_offset = {attributes['src_offset'].value}",
            f".src_len = {attributes['src_len'].value}",
            f".pattern = {op.pattern}",
            f".recv_buffer = &{attributes['recv_buffer'].string_value}",
            f".directions = .{{ {directions} }}",
        ]
        if op.coefficients is not None:
            coefficients = ", ".join(repr(c) for c in op.coefficients)
            fields.append(f".coefficients = .{{ {coefficients} }}")
        if op.recv_callback:
            fields.append(f".recv = &{op.recv_callback}")
        fields.append(f".done = &{op.done_callback}")
        self._line(
            f"{surface.COMMS_RECEIVER}.{surface.COMMUNICATE_MEMBER}"
            f"(&{self._operand(op.buffer)}, .{{ {', '.join(fields)} }});"
        )


def print_csl_module(module: csl.CslModuleOp) -> str:
    """Print one csl-ir module as CSL source."""
    return CslPrinter().print_module(module)


def print_csl_sources(modules: list[csl.CslModuleOp]) -> dict[str, str]:
    """Print every module of a compilation result, keyed by file name."""
    sources: dict[str, str] = {}
    for module in modules:
        suffix = "_layout" if module.kind == csl.ModuleKind.LAYOUT else ""
        file_name = f"{module.sym_name.removesuffix('_layout')}{suffix}.csl"
        sources[file_name] = print_csl_module(module)
    return sources
