"""Lines-of-code accounting for Table 1.

Three numbers are reported per benchmark:

* *CSL kernel only* — the generated PE-program source, without placement,
  communication or host-interaction support;
* *CSL entire* — the generated PE program plus the generated layout
  metaprogram plus the runtime communications library it imports;
* *DSL & our approach* — the lines a user writes in the front-end DSL.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.backend.csl_printer import print_csl_module
from repro.backend.runtime_library import runtime_library_loc
from repro.benchmarks.definitions import Benchmark
from repro.transforms.pipeline import CompilationResult


def count_lines(text: str) -> int:
    """Non-blank, non-comment-only lines."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count


@dataclass(frozen=True)
class LocReport:
    benchmark: str
    csl_kernel_only: int
    csl_entire: int
    dsl_ours: int


def generated_loc(result: CompilationResult) -> tuple[int, int]:
    """(kernel-only, entire) line counts of the generated CSL sources."""
    program_text = print_csl_module(result.program_module)
    layout_text = print_csl_module(result.layout_module)
    kernel_only = count_lines(program_text)
    entire = (
        kernel_only
        + count_lines(layout_text)
        + runtime_library_loc(result.options.target)
    )
    return kernel_only, entire


def dsl_loc(benchmark: Benchmark) -> int:
    """Lines of front-end source the user writes for a benchmark.

    Measured as the source lines of the benchmark's factory function — the
    Devito/PSyclone/Fortran definition — which is exactly what a user would
    author.
    """
    source = inspect.getsource(benchmark.factory)
    return count_lines_python(source)


def count_lines_python(text: str) -> int:
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def loc_report(benchmark: Benchmark, result: CompilationResult) -> LocReport:
    kernel_only, entire = generated_loc(result)
    return LocReport(
        benchmark=benchmark.name,
        csl_kernel_only=kernel_only,
        csl_entire=entire,
        dsl_ours=dsl_loc(benchmark),
    )
