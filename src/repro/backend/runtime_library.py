"""CSL source of the runtime communications library (paper Section 5.6).

Generated PE programs import this library as ``stencil_comms.csl``.  It
implements the partitionable communication strategy of Jacquelin et al. for
star-shaped stencils of up to three dimensions at configurable pattern radius
and chunk size: asynchronous sends and receives are scheduled in all four
cardinal directions, internal tasks per direction handle completion of each
asynchronous step and update the routing switches, and the user-provided
callbacks are triggered per received chunk and at the end of the exchange.

Two variants are provided: the WSE2 variant programs the switch so that every
PE also transmits to itself (a hardware restriction of that generation,
Section 6), the WSE3 variant omits the self-route and uses the upgraded
switching logic.

The text is used two ways: it is written next to the generated ``.csl``
sources so the emitted program is complete, and its line count feeds the
"CSL entire" column of Table 1.
"""

from __future__ import annotations

_HEADER = """\
// stencil_comms.csl
// Chunked star-shaped halo exchange for stencils on the Wafer-Scale Engine.
// Parameters are injected by the layout metaprogram at compile time.

param pattern : u16;          // stencil radius in the (x, y) plane
param chunkSize : u16;        // values exchanged per chunk and direction
param numChunks : u16;        // chunks per exchange
param paddedZDim : u16;       // chunkSize * numChunks
param numDirections : u16;    // remote directions of the stencil shape

const directionCount : u16 = 4;

// Colors used by the exchange; two per direction (send / receive) plus one
// control color for switch reconfiguration.
param eastChannel : color;
param westChannel : color;
param northChannel : color;
param southChannel : color;
param controlChannel : color;

const sys_mod = @import_module("<memcpy/memcpy>");

// Receive buffer shared by all directions: one chunk slot per direction and
// per hop of the pattern radius.
var receive_staging = @zeros([directionCount * pattern * chunkSize]f32);
// Outgoing staging buffer, double buffered so forwarding can overlap with
// the local send of the next chunk.
var send_staging = @zeros([2 * chunkSize]f32);
"""

_STATE = """\
// ---------------------------------------------------------------------------
// Exchange state
// ---------------------------------------------------------------------------

var current_chunk : u16 = 0;
var chunks_received : [directionCount]u16 = @constants([directionCount]u16, 0);
var directions_done : u16 = 0;
var exchange_active : bool = false;

var source_dsd : mem1d_dsd;
var user_recv_callback : *const fn (i16) void = null;
var user_done_callback : *const fn () void = null;

// Per-direction fabric DSDs, rebuilt whenever the routing switches change.
var east_out : fabout_dsd;
var west_out : fabout_dsd;
var north_out : fabout_dsd;
var south_out : fabout_dsd;
var east_in : fabin_dsd;
var west_in : fabin_dsd;
var north_in : fabin_dsd;
var south_in : fabin_dsd;
"""

_TASKS = """\
// ---------------------------------------------------------------------------
// Internal tasks: one send-done and one receive task per direction, plus a
// chunk-completion task that fires once all directions delivered a chunk.
// ---------------------------------------------------------------------------

task east_send_done() void {
  directions_done += 1;
  if (directions_done == numDirections) { @activate(chunk_sent_task_id); }
}

task west_send_done() void {
  directions_done += 1;
  if (directions_done == numDirections) { @activate(chunk_sent_task_id); }
}

task north_send_done() void {
  directions_done += 1;
  if (directions_done == numDirections) { @activate(chunk_sent_task_id); }
}

task south_send_done() void {
  directions_done += 1;
  if (directions_done == numDirections) { @activate(chunk_sent_task_id); }
}

task east_receive(wavelet : f32) void {
  receive_staging[0 * chunkSize + chunks_received[0]] = wavelet;
  chunks_received[0] += 1;
  if (chunks_received[0] == chunkSize) { @activate(chunk_received_task_id); }
}

task west_receive(wavelet : f32) void {
  receive_staging[1 * chunkSize + chunks_received[1]] = wavelet;
  chunks_received[1] += 1;
  if (chunks_received[1] == chunkSize) { @activate(chunk_received_task_id); }
}

task north_receive(wavelet : f32) void {
  receive_staging[2 * chunkSize + chunks_received[2]] = wavelet;
  chunks_received[2] += 1;
  if (chunks_received[2] == chunkSize) { @activate(chunk_received_task_id); }
}

task south_receive(wavelet : f32) void {
  receive_staging[3 * chunkSize + chunks_received[3]] = wavelet;
  chunks_received[3] += 1;
  if (chunks_received[3] == chunkSize) { @activate(chunk_received_task_id); }
}

task chunk_received() void {
  // All directions have delivered the current chunk: hand it to the user.
  if (user_recv_callback != null) {
    user_recv_callback(@as(i16, current_chunk * chunkSize));
  }
  var d : u16 = 0;
  while (d < directionCount) : (d += 1) { chunks_received[d] = 0; }
  @activate(next_chunk_task_id);
}

task chunk_sent() void {
  directions_done = 0;
  // Sending of this chunk has completed in every direction; forwarding for
  // deeper pattern radii is performed by the router switch configuration.
}

task next_chunk() void {
  current_chunk += 1;
  if (current_chunk < numChunks) {
    send_current_chunk();
  } else {
    exchange_active = false;
    reset_switches();
    if (user_done_callback != null) { user_done_callback(); }
  }
}
"""

_SENDING = """\
// ---------------------------------------------------------------------------
// Sending
// ---------------------------------------------------------------------------

fn send_current_chunk() void {
  // Shift the chunk of the local column into the send staging buffer and
  // fire the four asynchronous micro-DMAs.
  const chunk_view = @increment_dsd_offset(source_dsd,
      @as(i16, current_chunk * chunkSize), f32);
  @fmovs(send_staging_dsd, chunk_view);
  @fmovs(east_out, send_staging_dsd, .{ .async = true,
      .activate = east_send_done });
  @fmovs(west_out, send_staging_dsd, .{ .async = true,
      .activate = west_send_done });
  @fmovs(north_out, send_staging_dsd, .{ .async = true,
      .activate = north_send_done });
  @fmovs(south_out, send_staging_dsd, .{ .async = true,
      .activate = south_send_done });
}

const send_staging_dsd = @get_dsd(mem1d_dsd,
    .{ .tensor_access = |i|{chunkSize} -> send_staging[i] });

// ---------------------------------------------------------------------------
// Routing switches
// ---------------------------------------------------------------------------

fn configure_switches() void {
  // Star-shaped exchange: for a pattern radius r every column travels up to
  // r hops in each cardinal direction.  Switch positions are advanced with
  // control wavelets after each hop so intermediate PEs forward data without
  // consuming it.
  var hop : u16 = 1;
  while (hop < pattern) : (hop += 1) {
    @fmovs(east_out, control_advance_dsd, .{ .async = true });
    @fmovs(west_out, control_advance_dsd, .{ .async = true });
    @fmovs(north_out, control_advance_dsd, .{ .async = true });
    @fmovs(south_out, control_advance_dsd, .{ .async = true });
  }
}

fn reset_switches() void {
  @fmovs(east_out, control_reset_dsd, .{ .async = true });
  @fmovs(west_out, control_reset_dsd, .{ .async = true });
  @fmovs(north_out, control_reset_dsd, .{ .async = true });
  @fmovs(south_out, control_reset_dsd, .{ .async = true });
}

const control_advance_dsd = @get_dsd(fabout_dsd,
    .{ .extent = 1, .fabric_color = controlChannel,
       .control = true });
const control_reset_dsd = @get_dsd(fabout_dsd,
    .{ .extent = 1, .fabric_color = controlChannel,
       .control = true });
"""

_ENTRY_WSE_COMMON = """\
// ---------------------------------------------------------------------------
// Public entry point
// ---------------------------------------------------------------------------

fn communicate(source : *[paddedZDim]f32, chunks : u16,
               recv_cb : *const fn (i16) void,
               done_cb : *const fn () void) void {
  if (exchange_active) {
    // Nested exchanges are a programming error; surface it loudly.
    @assert(false);
  }
  exchange_active = true;
  current_chunk = 0;
  directions_done = 0;
  user_recv_callback = recv_cb;
  user_done_callback = done_cb;
  source_dsd = @get_dsd(mem1d_dsd,
      .{ .tensor_access = |i|{chunkSize} -> source.*[i] });
  configure_switches();
  send_current_chunk();
}
"""

_WSE2_ROUTES = """\
// ---------------------------------------------------------------------------
// WSE2 route configuration: the switch restriction of this generation means
// every PE also transmits to itself on each of the four routes.
// ---------------------------------------------------------------------------

comptime {
  @set_local_color_config(eastChannel,
      .{ .routes = .{ .rx = .{ WEST, RAMP }, .tx = .{ EAST, RAMP } } });
  @set_local_color_config(westChannel,
      .{ .routes = .{ .rx = .{ EAST, RAMP }, .tx = .{ WEST, RAMP } } });
  @set_local_color_config(northChannel,
      .{ .routes = .{ .rx = .{ SOUTH, RAMP }, .tx = .{ NORTH, RAMP } } });
  @set_local_color_config(southChannel,
      .{ .routes = .{ .rx = .{ NORTH, RAMP }, .tx = .{ SOUTH, RAMP } } });
}
"""

_WSE3_ROUTES = """\
// ---------------------------------------------------------------------------
// WSE3 route configuration: the upgraded switching logic no longer requires
// the self-transmit route, halving ramp traffic per exchange.
// ---------------------------------------------------------------------------

comptime {
  @set_local_color_config(eastChannel,
      .{ .routes = .{ .rx = .{ WEST }, .tx = .{ EAST } } });
  @set_local_color_config(westChannel,
      .{ .routes = .{ .rx = .{ EAST }, .tx = .{ WEST } } });
  @set_local_color_config(northChannel,
      .{ .routes = .{ .rx = .{ SOUTH }, .tx = .{ NORTH } } });
  @set_local_color_config(southChannel,
      .{ .routes = .{ .rx = .{ NORTH }, .tx = .{ SOUTH } } });
}
"""

_BINDINGS = """\
// ---------------------------------------------------------------------------
// Task bindings
// ---------------------------------------------------------------------------

param chunk_received_task_id : local_task_id;
param chunk_sent_task_id : local_task_id;
param next_chunk_task_id : local_task_id;

comptime {
  @bind_local_task(chunk_received_task_id, chunk_received);
  @bind_local_task(chunk_sent_task_id, chunk_sent);
  @bind_local_task(next_chunk_task_id, next_chunk);
  @bind_data_task(@get_data_task_id(eastChannel), east_receive);
  @bind_data_task(@get_data_task_id(westChannel), west_receive);
  @bind_data_task(@get_data_task_id(northChannel), north_receive);
  @bind_data_task(@get_data_task_id(southChannel), south_receive);
  @bind_local_task(@get_local_task_id(2), east_send_done);
  @bind_local_task(@get_local_task_id(3), west_send_done);
  @bind_local_task(@get_local_task_id(4), north_send_done);
  @bind_local_task(@get_local_task_id(5), south_send_done);
}
"""


def runtime_library_source(target: str = "wse2") -> str:
    """The complete CSL source of the communications library for a target."""
    routes = _WSE2_ROUTES if target.lower() == "wse2" else _WSE3_ROUTES
    return "\n".join(
        [_HEADER, _STATE, _TASKS, _SENDING, _ENTRY_WSE_COMMON, routes, _BINDINGS]
    )


def runtime_library_loc(target: str = "wse2") -> int:
    """Non-blank lines of the runtime library (used by Table 1)."""
    return sum(
        1 for line in runtime_library_source(target).splitlines() if line.strip()
    )
