"""Analytical model of the paper's CPU baseline (Figure 6).

The paper's CPU numbers come from MPI + OpenMP kernels on 128 nodes of the
ARCHER2 Cray-EX (two 64-core AMD EPYC 7742 per node, Slingshot interconnect)
running the acoustic benchmark on a 1024³ FP32 grid.  The model mirrors the
GPU one: per-node roofline throughput plus a halo-exchange term.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuNodeSpec:
    name: str
    memory_bandwidth: float  # bytes/s per node
    peak_flops: float  # FP32 FLOP/s per node
    achievable_fraction: float


#: A dual EPYC-7742 ARCHER2 node: ~410 GB/s of DDR4 bandwidth, 128 cores.
ARCHER2_NODE = CpuNodeSpec(
    name="dual EPYC 7742",
    memory_bandwidth=410e9,
    peak_flops=2 * 64 * 2.25e9 * 16,
    achievable_fraction=0.65,
)


@dataclass(frozen=True)
class CpuClusterSpec:
    node: CpuNodeSpec
    num_nodes: int
    internode_bandwidth: float  # bytes/s per node (Slingshot)
    mpi_latency: float


ARCHER2_128_NODES = CpuClusterSpec(
    node=ARCHER2_NODE,
    num_nodes=128,
    internode_bandwidth=25e9,
    mpi_latency=20e-6,
)


@dataclass(frozen=True)
class CpuEstimate:
    gpts_per_second: float
    seconds_per_iteration: float
    compute_seconds: float
    halo_seconds: float


def estimate_cpu_cluster_throughput(
    cluster: CpuClusterSpec,
    grid_points: int,
    flops_per_point: float,
    bytes_per_point: float,
    halo_bytes_per_subdomain: float,
) -> CpuEstimate:
    points_per_node = grid_points / cluster.num_nodes
    per_point_seconds = max(
        bytes_per_point
        / (cluster.node.memory_bandwidth * cluster.node.achievable_fraction),
        flops_per_point / (cluster.node.peak_flops * cluster.node.achievable_fraction),
    )
    compute_seconds = points_per_node * per_point_seconds
    halo_seconds = (
        halo_bytes_per_subdomain / cluster.internode_bandwidth + cluster.mpi_latency
    )
    seconds_per_iteration = compute_seconds + halo_seconds
    return CpuEstimate(
        gpts_per_second=grid_points / seconds_per_iteration / 1e9,
        seconds_per_iteration=seconds_per_iteration,
        compute_seconds=compute_seconds,
        halo_seconds=halo_seconds,
    )


def acoustic_on_archer2(grid_side: int = 1024) -> CpuEstimate:
    """The paper's configuration: 1024³ FP32 acoustic on 128 ARCHER2 nodes."""
    grid_points = grid_side**3
    points_per_node = grid_points / ARCHER2_128_NODES.num_nodes
    subdomain_side = points_per_node ** (1.0 / 3.0)
    halo_bytes = 6 * (subdomain_side**2) * 4 * 2
    return estimate_cpu_cluster_throughput(
        ARCHER2_128_NODES,
        grid_points=grid_points,
        flops_per_point=21.0,
        bytes_per_point=40.0,
        halo_bytes_per_subdomain=halo_bytes,
    )
