"""Analytical model of the paper's GPU baseline (Figure 6).

The paper compares the WSE3 against MPI + OpenACC kernels on 128 Nvidia A100
GPUs of the Tursa supercomputer (Bisbas et al., IPDPS'25), running the
acoustic benchmark on a 1158³ grid in FP32.  Without access to Tursa we model
each GPU with a roofline-limited per-device throughput plus a halo-exchange
term for the strong-scaling decomposition, using the hardware numbers quoted
in the paper (A100: 2.039 TB/s HBM bandwidth, 17.59  FP32 TFLOP/s peak,
4×200 Gb/s Infiniband per node, 4 GPUs per node).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """One accelerator of the baseline cluster."""

    name: str
    memory_bandwidth: float  # bytes/s
    peak_flops: float  # FLOP/s
    achievable_fraction: float  # fraction of roofline reached by OpenACC code


#: Nvidia A100-80 as used on Tursa, with the paper's roofline numbers.
A100 = GpuSpec(
    name="A100",
    memory_bandwidth=2.039e12,
    peak_flops=17.59e12,
    achievable_fraction=0.55,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A GPU cluster running an MPI domain decomposition."""

    gpu: GpuSpec
    num_gpus: int
    gpus_per_node: int
    internode_bandwidth: float  # bytes/s per node
    mpi_latency: float  # seconds per halo exchange step


TURSA_128_A100 = ClusterSpec(
    gpu=A100,
    num_gpus=128,
    gpus_per_node=4,
    internode_bandwidth=4 * 25e9,
    mpi_latency=30e-6,
)


@dataclass(frozen=True)
class GpuEstimate:
    """Throughput estimate for the cluster on a stencil workload."""

    gpts_per_second: float
    seconds_per_iteration: float
    compute_seconds: float
    halo_seconds: float
    points_per_gpu: float


def estimate_cluster_throughput(
    cluster: ClusterSpec,
    grid_points: int,
    flops_per_point: float,
    bytes_per_point: float,
    halo_bytes_per_subdomain: float,
) -> GpuEstimate:
    """Strong-scaling estimate: per-iteration time = compute + halo exchange."""
    points_per_gpu = grid_points / cluster.num_gpus

    per_point_seconds = max(
        bytes_per_point / (cluster.gpu.memory_bandwidth * cluster.gpu.achievable_fraction),
        flops_per_point / (cluster.gpu.peak_flops * cluster.gpu.achievable_fraction),
    )
    compute_seconds = points_per_gpu * per_point_seconds

    node_bandwidth_per_gpu = cluster.internode_bandwidth / cluster.gpus_per_node
    halo_seconds = (
        halo_bytes_per_subdomain / node_bandwidth_per_gpu + cluster.mpi_latency
    )

    seconds_per_iteration = compute_seconds + halo_seconds
    gpts = grid_points / seconds_per_iteration / 1e9
    return GpuEstimate(
        gpts_per_second=gpts,
        seconds_per_iteration=seconds_per_iteration,
        compute_seconds=compute_seconds,
        halo_seconds=halo_seconds,
        points_per_gpu=points_per_gpu,
    )


def acoustic_on_tursa(grid_side: int = 1158) -> GpuEstimate:
    """The paper's acoustic configuration: 1158³ FP32 on 128 A100s.

    A 13-point acoustic update streams roughly three full wavefields plus the
    velocity model (4 arrays × 4 bytes read/written ≈ 40 B per point after
    cache reuse of neighbouring loads), at ~21 FLOP per point.
    """
    grid_points = grid_side**3
    points_per_gpu = grid_points / TURSA_128_A100.num_gpus
    subdomain_side = points_per_gpu ** (1.0 / 3.0)
    halo_bytes = 6 * (subdomain_side**2) * 4 * 2  # 6 faces, FP32, two halo layers
    return estimate_cluster_throughput(
        TURSA_128_A100,
        grid_points=grid_points,
        flops_per_point=21.0,
        bytes_per_point=40.0,
        halo_bytes_per_subdomain=halo_bytes,
    )
