"""Reference NumPy executor for stencil programs.

Executes a :class:`~repro.frontends.common.StencilProgram` directly with
NumPy array slicing, using the same semantics as the stencil dialect: every
equation is evaluated with value semantics (a snapshot of its inputs) over
the interior of the grid, equations apply sequentially within a time step,
and halo cells are Dirichlet-zero (never updated).

This is the ground truth the fabric simulator's results are validated
against, and it doubles as the "CPU" functional implementation used by the
examples.
"""

from __future__ import annotations

import numpy as np

from repro.frontends.common import (
    Add,
    Constant,
    Expression,
    FieldAccess,
    Mul,
    StencilProgram,
)


def allocate_fields(
    program: StencilProgram, initializer=None
) -> dict[str, np.ndarray]:
    """Allocate every field with its halo, optionally filling the interior.

    ``initializer`` is called as ``initializer(name, interior_shape)`` and
    must return an array of that shape; when omitted the interior is zero.
    Halo cells are always zero.
    """
    fields: dict[str, np.ndarray] = {}
    for decl in program.fields:
        padded_shape = tuple(n + 2 * h for n, h in zip(decl.shape, decl.halo))
        array = np.zeros(padded_shape, dtype=np.float32)
        if initializer is not None:
            hx, hy, hz = decl.halo
            nx, ny, nz = decl.shape
            array[hx : hx + nx, hy : hy + ny, hz : hz + nz] = np.asarray(
                initializer(decl.name, decl.shape), dtype=np.float32
            )
        fields[decl.name] = array
    return fields


def interior(program: StencilProgram, name: str, array: np.ndarray) -> np.ndarray:
    """The interior (non-halo) view of a field array."""
    decl = program.field(name)
    hx, hy, hz = decl.halo
    nx, ny, nz = decl.shape
    return array[hx : hx + nx, hy : hy + ny, hz : hz + nz]


def _evaluate(
    expression: Expression,
    program: StencilProgram,
    fields: dict[str, np.ndarray],
    output_field: str,
) -> np.ndarray:
    """Evaluate an expression over the interior of the output field."""
    decl = program.field(output_field)
    hx, hy, hz = decl.halo
    nx, ny, nz = decl.shape

    if isinstance(expression, Constant):
        return np.float32(expression.value)
    if isinstance(expression, FieldAccess):
        dx, dy, dz = expression.offset
        array = fields[expression.field]
        return array[
            hx + dx : hx + dx + nx,
            hy + dy : hy + dy + ny,
            hz + dz : hz + dz + nz,
        ]
    if isinstance(expression, Add):
        total = _evaluate(expression.terms[0], program, fields, output_field)
        for term in expression.terms[1:]:
            total = total + _evaluate(term, program, fields, output_field)
        return total
    if isinstance(expression, Mul):
        product = _evaluate(expression.factors[0], program, fields, output_field)
        for factor in expression.factors[1:]:
            product = product * _evaluate(factor, program, fields, output_field)
        return product
    raise TypeError(f"unsupported expression node {expression!r}")


def run_reference(
    program: StencilProgram,
    fields: dict[str, np.ndarray],
    time_steps: int | None = None,
) -> dict[str, np.ndarray]:
    """Run the program in place and return the field dictionary."""
    steps = time_steps if time_steps is not None else program.time_steps
    for _ in range(steps):
        for equation in program.equations:
            result = _evaluate(equation.expression, program, fields, equation.output)
            result = np.asarray(result, dtype=np.float32)
            interior(program, equation.output, fields[equation.output])[...] = result
    return fields


def field_to_columns(
    program: StencilProgram, name: str, array: np.ndarray
) -> np.ndarray:
    """Convert a halo-padded field into per-PE columns ``(nx, ny, z_total)``.

    Each PE holds the full z extent (core plus z halo) of its (x, y) cell.
    """
    decl = program.field(name)
    hx, hy, _ = decl.halo
    nx, ny, _ = decl.shape
    return np.ascontiguousarray(array[hx : hx + nx, hy : hy + ny, :])


def columns_to_field(
    program: StencilProgram, name: str, columns: np.ndarray
) -> np.ndarray:
    """Embed per-PE columns back into a zero-halo-padded field array."""
    decl = program.field(name)
    padded_shape = tuple(n + 2 * h for n, h in zip(decl.shape, decl.halo))
    array = np.zeros(padded_shape, dtype=np.float32)
    hx, hy, _ = decl.halo
    nx, ny, _ = decl.shape
    array[hx : hx + nx, hy : hy + ny, :] = columns
    return array
