"""Reference NumPy executor for stencil programs.

Executes a :class:`~repro.frontends.common.StencilProgram` directly with
NumPy array slicing, using the same semantics as the stencil dialect: every
equation is evaluated with value semantics (a snapshot of its inputs) over
the interior of the grid, and equations apply sequentially within a time
step.  Halo cells follow the program's
:class:`~repro.frontends.common.BoundaryCondition` via the matching
``np.pad`` mode — ``constant`` for ``dirichlet(value)``, ``wrap`` for
``periodic``, ``symmetric`` for ``reflect``.  The (x, y) halo is refreshed
from the current interior before every equation (mirroring the per-equation
fabric exchange), while the z halo is filled once at allocation and then
stays static, exactly as a PE's column halo does on the fabric (there is no
z exchange).

This is the ground truth the fabric simulator's results are validated
against, and it doubles as the "CPU" functional implementation used by the
examples.
"""

from __future__ import annotations

import numpy as np

from repro.frontends.common import (
    Add,
    BoundaryCondition,
    Constant,
    Expression,
    FieldAccess,
    Mul,
    StencilProgram,
)


def _pad_keywords(boundary: BoundaryCondition) -> dict:
    """The ``np.pad`` keywords implementing one boundary condition."""
    if boundary.kind == "dirichlet":
        return {"mode": "constant", "constant_values": np.float32(boundary.value)}
    if boundary.kind == "periodic":
        return {"mode": "wrap"}
    if boundary.kind == "reflect":
        # np.pad's "symmetric": mirror with the edge cell repeated, i.e. the
        # zero-flux ghost cell; matches BoundaryCondition.fold().
        return {"mode": "symmetric"}
    raise ValueError(f"unknown boundary kind {boundary.kind!r}")


def refresh_xy_halo(
    program: StencilProgram, name: str, array: np.ndarray
) -> None:
    """Refill the (x, y) halo from the current interior columns, in place.

    Whole columns (full z extent, including the static z halo) are padded,
    which is what the fabric exchange delivers: a wrapped or mirrored
    neighbour sends its column as stored.
    """
    decl = program.field(name)
    hx, hy, _ = decl.halo
    nx, ny, _ = decl.shape
    columns = array[hx : hx + nx, hy : hy + ny, :]
    array[:] = np.pad(
        columns, ((hx, hx), (hy, hy), (0, 0)), **_pad_keywords(program.boundary)
    )


def apply_boundary(program: StencilProgram, name: str, array: np.ndarray) -> None:
    """Fill every halo cell of a freshly initialised field, in place.

    The z halo is derived from the interior once, here — it ships to the
    fabric inside each PE's column and is never exchanged again — then the
    (x, y) halo is filled like any refresh.
    """
    decl = program.field(name)
    hx, hy, hz = decl.halo
    nx, ny, nz = decl.shape
    core = array[hx : hx + nx, hy : hy + ny, hz : hz + nz]
    array[hx : hx + nx, hy : hy + ny, :] = np.pad(
        core, ((0, 0), (0, 0), (hz, hz)), **_pad_keywords(program.boundary)
    )
    refresh_xy_halo(program, name, array)


def allocate_fields(
    program: StencilProgram, initializer=None
) -> dict[str, np.ndarray]:
    """Allocate every field with its halo, optionally filling the interior.

    ``initializer`` is called as ``initializer(name, interior_shape)`` and
    must return an array of that shape; when omitted the interior is zero.
    Halo cells are filled according to the program's boundary condition
    (all-zero under the historical Dirichlet-zero default).
    """
    fields: dict[str, np.ndarray] = {}
    for decl in program.fields:
        padded_shape = tuple(n + 2 * h for n, h in zip(decl.shape, decl.halo))
        array = np.zeros(padded_shape, dtype=np.float32)
        if initializer is not None:
            hx, hy, hz = decl.halo
            nx, ny, nz = decl.shape
            array[hx : hx + nx, hy : hy + ny, hz : hz + nz] = np.asarray(
                initializer(decl.name, decl.shape), dtype=np.float32
            )
        apply_boundary(program, decl.name, array)
        fields[decl.name] = array
    return fields


def interior(program: StencilProgram, name: str, array: np.ndarray) -> np.ndarray:
    """The interior (non-halo) view of a field array."""
    decl = program.field(name)
    hx, hy, hz = decl.halo
    nx, ny, nz = decl.shape
    return array[hx : hx + nx, hy : hy + ny, hz : hz + nz]


def _evaluate(
    expression: Expression,
    program: StencilProgram,
    fields: dict[str, np.ndarray],
    output_field: str,
) -> np.ndarray:
    """Evaluate an expression over the interior of the output field."""
    decl = program.field(output_field)
    hx, hy, hz = decl.halo
    nx, ny, nz = decl.shape

    if isinstance(expression, Constant):
        return np.float32(expression.value)
    if isinstance(expression, FieldAccess):
        dx, dy, dz = expression.offset
        array = fields[expression.field]
        return array[
            hx + dx : hx + dx + nx,
            hy + dy : hy + dy + ny,
            hz + dz : hz + dz + nz,
        ]
    if isinstance(expression, Add):
        total = _evaluate(expression.terms[0], program, fields, output_field)
        for term in expression.terms[1:]:
            total = total + _evaluate(term, program, fields, output_field)
        return total
    if isinstance(expression, Mul):
        product = _evaluate(expression.factors[0], program, fields, output_field)
        for factor in expression.factors[1:]:
            product = product * _evaluate(factor, program, fields, output_field)
        return product
    raise TypeError(f"unsupported expression node {expression!r}")


def run_reference(
    program: StencilProgram,
    fields: dict[str, np.ndarray],
    time_steps: int | None = None,
) -> dict[str, np.ndarray]:
    """Run the program in place and return the field dictionary.

    Before each equation the exchanged (x, y) rim of every field it reads
    is refreshed from the current interior — the oracle's equivalent of the
    per-apply fabric exchange.  A field is only refreshed while *stale*
    (every field starts stale, and an interior write stales it again); a
    Dirichlet rim is a constant no write can invalidate, so the paper
    benchmarks pad each field exactly once per run.  The static z halo is
    deliberately never touched: it is established at allocation time
    (:func:`allocate_fields`, or :func:`apply_boundary` for caller-built
    arrays) and kept as loaded — exactly like a PE's column halo on the
    fabric — so running N steps in one call or in N calls is identical.
    """
    dirichlet = program.boundary.kind == "dirichlet"
    stale = {decl.name for decl in program.fields}
    steps = time_steps if time_steps is not None else program.time_steps
    for _ in range(steps):
        for equation in program.equations:
            for name in equation.reads():
                if name in stale:
                    refresh_xy_halo(program, name, fields[name])
                    stale.discard(name)
            result = _evaluate(equation.expression, program, fields, equation.output)
            result = np.asarray(result, dtype=np.float32)
            interior(program, equation.output, fields[equation.output])[...] = result
            if not dirichlet:
                stale.add(equation.output)
    return fields


def field_to_columns(
    program: StencilProgram, name: str, array: np.ndarray
) -> np.ndarray:
    """Convert a halo-padded field into per-PE columns ``(nx, ny, z_total)``.

    Each PE holds the full z extent (core plus z halo) of its (x, y) cell.
    """
    decl = program.field(name)
    hx, hy, _ = decl.halo
    nx, ny, _ = decl.shape
    return np.ascontiguousarray(array[hx : hx + nx, hy : hy + ny, :])


def columns_to_field(
    program: StencilProgram, name: str, columns: np.ndarray
) -> np.ndarray:
    """Embed per-PE columns back into a halo-padded field array.

    The (x, y) halo is filled per the program's boundary condition, so a
    gathered result can be fed straight back into :func:`run_reference`.
    """
    decl = program.field(name)
    padded_shape = tuple(n + 2 * h for n, h in zip(decl.shape, decl.halo))
    array = np.zeros(padded_shape, dtype=np.float32)
    hx, hy, _ = decl.halo
    nx, ny, _ = decl.shape
    array[hx : hx + nx, hy : hy + ny, :] = columns
    refresh_xy_halo(program, name, array)
    return array
