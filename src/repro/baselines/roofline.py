"""Roofline machinery for Figure 7.

A roofline plots performance (FLOP/s) against arithmetic intensity
(FLOP/byte), bounded by ``min(peak_flops, bandwidth * intensity)``.  The WSE
has two relevant bandwidth ceilings — local memory and the fabric — so every
WSE benchmark appears twice (Section 6.3); the A100 appears with its HBM
ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wse.machine import WseMachineSpec


@dataclass(frozen=True)
class RooflineCeiling:
    """One machine's roofline: a peak and a bandwidth slope."""

    name: str
    peak_flops: float
    bandwidth: float

    def attainable(self, intensity: float) -> float:
        """Attainable FLOP/s at the given arithmetic intensity."""
        return min(self.peak_flops, self.bandwidth * intensity)

    def ridge_point(self) -> float:
        """Intensity at which the machine turns compute bound."""
        return self.peak_flops / self.bandwidth


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on a roofline."""

    label: str
    arithmetic_intensity: float
    performance: float

    def is_compute_bound(self, ceiling: RooflineCeiling) -> bool:
        return self.arithmetic_intensity >= ceiling.ridge_point()


def wse_memory_ceiling(machine: WseMachineSpec) -> RooflineCeiling:
    return RooflineCeiling(
        name=f"{machine.name} memory BW",
        peak_flops=machine.peak_flops,
        bandwidth=machine.memory_bandwidth,
    )


def wse_fabric_ceiling(machine: WseMachineSpec) -> RooflineCeiling:
    return RooflineCeiling(
        name=f"{machine.name} fabric BW",
        peak_flops=machine.peak_flops,
        bandwidth=machine.fabric_bandwidth,
    )


def a100_ceiling() -> RooflineCeiling:
    from repro.baselines.gpu_model import A100

    return RooflineCeiling(
        name="A100 DRAM BW",
        peak_flops=A100.peak_flops,
        bandwidth=A100.memory_bandwidth,
    )


def memory_intensity(flops_per_point: int, arrays_touched: int) -> float:
    """Arithmetic intensity assuming every access hits PE-local memory.

    Each point reads/writes ``arrays_touched`` FP32 values from local SRAM.
    """
    return flops_per_point / (4.0 * arrays_touched)


def fabric_intensity(flops_per_point: int, communicated_values: float) -> float:
    """Arithmetic intensity assuming all data arrives over the fabric.

    ``communicated_values`` is the number of remote FP32 values a grid point
    consumes per time step (remote stencil points divided by the column reuse).
    """
    return flops_per_point / (4.0 * max(communicated_values, 1e-9))
