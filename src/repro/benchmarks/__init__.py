"""The five benchmarks of the paper's evaluation (Section 6), plus the two
boundary-condition workloads.

=================  ==========  ======================  =========  ==========
Benchmark          Front-end   Stencil                 Z extent   Iterations
=================  ==========  ======================  =========  ==========
Jacobian           Flang       3-D 6/7-point           900        100,000
Diffusion          Devito      3-D 13-point (r=2)      704        512
Acoustic           Devito      3-D 13-point, 2nd time  604        512
25-point Seismic   Cerebras    3-D 25-point (r=4)      450        100,000
UVKBE              PSyclone    4 fields, 2 applies     600        1
Advection          Flang       upwind, periodic        900        100,000
ReflectiveHeat     Devito      3-D 13-point, reflect   704        512
=================  ==========  ======================  =========  ==========
"""

from repro.benchmarks.definitions import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    BOUNDARY_BENCHMARKS,
    Benchmark,
    ProblemSize,
    acoustic_benchmark,
    advection_benchmark,
    benchmark_by_name,
    diffusion_benchmark,
    jacobian_benchmark,
    reflective_heat_benchmark,
    seismic_benchmark,
    uvkbe_benchmark,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARKS",
    "BOUNDARY_BENCHMARKS",
    "Benchmark",
    "ProblemSize",
    "acoustic_benchmark",
    "advection_benchmark",
    "benchmark_by_name",
    "diffusion_benchmark",
    "jacobian_benchmark",
    "reflective_heat_benchmark",
    "seismic_benchmark",
    "uvkbe_benchmark",
]
