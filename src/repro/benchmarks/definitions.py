"""Definitions of the evaluation benchmarks.

Each benchmark is expressed in its paper front-end (Flang / Devito /
PSyclone / hand-written CSL translated to the stencil dialect) and lowers to
the shared :class:`~repro.frontends.common.StencilProgram`.  The problem
sizes are the paper's: small 100×100, medium 500×500, large 750×994, with
the benchmark-specific z extents and iteration counts of Section 6.

``BENCHMARKS`` holds exactly the paper's five kernels (every figure and
table is computed over them); ``BOUNDARY_BENCHMARKS`` adds the two
boundary-condition workloads — periodic advection and reflective heat
diffusion — that exercise the non-Dirichlet halo modes end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.frontends.common import (
    BoundaryCondition,
    Constant,
    FieldAccess,
    StencilEquation,
    StencilProgram,
)
from repro.frontends.devito_like import Eq, Grid, Operator, TimeFunction
from repro.frontends.flang_like import parse_fortran_stencil
from repro.frontends.psyclone_like import (
    AccessMode,
    AlgorithmLayer,
    FieldArgument,
    Kernel,
    KernelMetadata,
)


@dataclass(frozen=True)
class ProblemSize:
    """An (x, y) problem size from the paper's evaluation."""

    name: str
    nx: int
    ny: int


#: The three problem sizes of Section 6.
SMALL = ProblemSize("small", 100, 100)
MEDIUM = ProblemSize("medium", 500, 500)
LARGE = ProblemSize("large", 750, 994)
PROBLEM_SIZES = (SMALL, MEDIUM, LARGE)


@dataclass(frozen=True)
class Benchmark:
    """One evaluation benchmark."""

    name: str
    frontend: str
    z_dim: int
    iterations: int
    #: builds the stencil program for a given interior size.
    factory: Callable[[int, int, int, int], StencilProgram]
    #: FP32 operations per grid point per time step (used by the roofline).
    flops_per_point: int
    #: stencil points (for reporting).
    stencil_points: int
    #: boundary mode the workload is defined with (for reporting; the
    #: authoritative condition lives on the built StencilProgram).
    boundary: str = "dirichlet"

    def program(
        self,
        nx: int | None = None,
        ny: int | None = None,
        nz: int | None = None,
        time_steps: int | None = None,
    ) -> StencilProgram:
        """Instantiate the stencil program (defaults: large size, paper z)."""
        return self.factory(
            nx if nx is not None else LARGE.nx,
            ny if ny is not None else LARGE.ny,
            nz if nz is not None else self.z_dim,
            time_steps if time_steps is not None else self.iterations,
        )


# --------------------------------------------------------------------------- #
# Jacobian (Flang front-end): Laplace's equation for diffusion in 3-D.
# --------------------------------------------------------------------------- #


def _jacobian_factory(nx: int, ny: int, nz: int, steps: int) -> StencilProgram:
    update = (
        "v(k,j,i) = (u(k,j,i) + u(k,j,i+1) + u(k,j,i-1) + u(k,j+1,i)"
        " + u(k,j-1,i) + u(k+1,j,i) + u(k-1,j,i)) * 0.14285714"
    )
    source = f"""
    do i = 1, {nx}
      do j = 1, {ny}
        do k = 1, {nz}
          {update}
        enddo
      enddo
    enddo
    """
    return parse_fortran_stencil(
        source, name="jacobian", time_steps=steps, halo=(1, 1, 1)
    )


# --------------------------------------------------------------------------- #
# Diffusion (Devito front-end): heat equation with a 13-point stencil.
# --------------------------------------------------------------------------- #


def _diffusion_like_program(
    nx: int, ny: int, nz: int, steps: int, name: str, boundary=None
) -> StencilProgram:
    """The 13-point heat kernel, shared by Diffusion and ReflectiveHeat so
    the two differ in the boundary condition only."""
    grid = Grid(
        shape=(nx, ny, nz),
        halo=(2, 2, 2),
        boundary=boundary if boundary is not None else BoundaryCondition.dirichlet(),
    )
    u = TimeFunction("u", grid, space_order=2)
    v = TimeFunction("v", grid, space_order=2)
    # 4th-order Laplacian coefficients (r = 2): centre, distance-1, distance-2.
    alpha = 0.1
    laplacian = u.laplace_high_order(2, [-2.5, 4.0 / 3.0, -1.0 / 12.0])
    update = u.center + laplacian * Constant(alpha)
    operator = Operator([Eq(v, update)], name=name, time_steps=steps)
    return operator.to_stencil_program()


def _diffusion_factory(nx: int, ny: int, nz: int, steps: int) -> StencilProgram:
    return _diffusion_like_program(nx, ny, nz, steps, name="diffusion")


# --------------------------------------------------------------------------- #
# Acoustic (Devito front-end): isotropic acoustic wave equation, 2nd order in
# time (leap-frog: the previous wavefield is overwritten with the new one).
# --------------------------------------------------------------------------- #


def _acoustic_factory(nx: int, ny: int, nz: int, steps: int) -> StencilProgram:
    grid = Grid(shape=(nx, ny, nz), halo=(2, 2, 2))
    u = TimeFunction("u", grid, space_order=2)
    u_prev = TimeFunction("u_prev", grid, space_order=2)
    velocity = 0.18
    laplacian = u.laplace_high_order(2, [-2.5, 4.0 / 3.0, -1.0 / 12.0])
    update = (
        u.center * Constant(2.0)
        + u_prev.center * Constant(-1.0)
        + laplacian * Constant(velocity)
    )
    operator = Operator(
        [Eq(u_prev, update)], name="acoustic", time_steps=steps
    )
    return operator.to_stencil_program()


# --------------------------------------------------------------------------- #
# 25-point Seismic (translated from the hand-written Cerebras kernel):
# an 8th-order star stencil, 1st order in time.
# --------------------------------------------------------------------------- #

#: 8th-order central-difference coefficients (centre + distances 1..4).
SEISMIC_COEFFICIENTS = [
    -2.847222222,
    1.6,
    -0.2,
    0.02539682540,
    -0.001785714286,
]


def _seismic_factory(nx: int, ny: int, nz: int, steps: int) -> StencilProgram:
    grid = Grid(shape=(nx, ny, nz), halo=(4, 4, 4))
    u = TimeFunction("u", grid, space_order=4)
    v = TimeFunction("v", grid, space_order=4)
    laplacian = u.laplace_high_order(4, SEISMIC_COEFFICIENTS)
    update = u.center + laplacian * Constant(0.001)
    operator = Operator([Eq(v, update)], name="seismic25", time_steps=steps)
    return operator.to_stencil_program()


# --------------------------------------------------------------------------- #
# UVKBE (PSyclone front-end): four fields, two of which are communicated,
# and two consecutive stencil applies (fused by stencil-inlining).
# --------------------------------------------------------------------------- #


def _uvkbe_factory(nx: int, ny: int, nz: int, steps: int) -> StencilProgram:
    ke_metadata = KernelMetadata(
        "kinetic_energy_kernel",
        [
            FieldArgument("u", AccessMode.READ, stencil_extent=1),
            FieldArgument("v", AccessMode.READ, stencil_extent=1),
            FieldArgument("ke", AccessMode.WRITE),
        ],
    )
    ke_kernel = Kernel(
        ke_metadata,
        {
            "ke": lambda access: (
                (access("u", 1, 0, 0) + access("u", 0, 0, 0)) * Constant(0.25)
                + (access("v", 0, 1, 0) + access("v", 0, 0, 0)) * Constant(0.25)
            )
        },
    )
    momentum_metadata = KernelMetadata(
        "momentum_update_kernel",
        [
            FieldArgument("ke", AccessMode.READ),
            FieldArgument("out", AccessMode.READWRITE),
        ],
    )
    momentum_kernel = Kernel(
        momentum_metadata,
        {
            "out": lambda access: (
                access("ke", 0, 0, 0) * Constant(0.9)
                + access("out", 0, 0, 0) * Constant(0.1)
                + access("out", 0, 0, 1) * Constant(0.05)
            )
        },
    )
    algorithm = AlgorithmLayer("uvkbe", (nx, ny, nz), time_steps=steps)
    algorithm.invoke(ke_kernel, momentum_kernel)
    return algorithm.to_stencil_program()


# --------------------------------------------------------------------------- #
# Advection (Flang front-end, periodic boundary): first-order upwind
# transport on a torus, selected with the `!$repro boundary(...)` directive.
# --------------------------------------------------------------------------- #

#: Courant number of the upwind update (CFL-stable: 0 < c <= 1).
ADVECTION_COURANT = 0.45


def _advection_factory(nx: int, ny: int, nz: int, steps: int) -> StencilProgram:
    update = (
        f"u(k,j,i) = u(k,j,i) - {ADVECTION_COURANT} * (u(k,j,i) - u(k,j,i-1))"
    )
    source = f"""
    !$repro boundary(periodic)
    do i = 1, {nx}
      do j = 1, {ny}
        do k = 1, {nz}
          {update}
        enddo
      enddo
    enddo
    """
    return parse_fortran_stencil(
        source, name="advection", time_steps=steps, halo=(1, 1, 1)
    )


# --------------------------------------------------------------------------- #
# Reflective heat diffusion (Devito front-end): the 13-point diffusion
# kernel on an insulated (zero-flux) domain via Grid(boundary=reflect).
# --------------------------------------------------------------------------- #


def _reflective_heat_factory(nx: int, ny: int, nz: int, steps: int) -> StencilProgram:
    return _diffusion_like_program(
        nx, ny, nz, steps,
        name="reflective_heat",
        boundary=BoundaryCondition.reflect(),
    )


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


jacobian_benchmark = Benchmark(
    name="Jacobian",
    frontend="Flang",
    z_dim=900,
    iterations=100_000,
    factory=_jacobian_factory,
    flops_per_point=8,
    stencil_points=7,
)

diffusion_benchmark = Benchmark(
    name="Diffusion",
    frontend="Devito",
    z_dim=704,
    iterations=512,
    factory=_diffusion_factory,
    flops_per_point=25,
    stencil_points=13,
)

acoustic_benchmark = Benchmark(
    name="Acoustic",
    frontend="Devito",
    z_dim=604,
    iterations=512,
    factory=_acoustic_factory,
    flops_per_point=29,
    stencil_points=14,
)

seismic_benchmark = Benchmark(
    name="Seismic",
    frontend="Cerebras",
    z_dim=450,
    iterations=100_000,
    factory=_seismic_factory,
    flops_per_point=49,
    stencil_points=25,
)

uvkbe_benchmark = Benchmark(
    name="UVKBE",
    frontend="PSyclone",
    z_dim=600,
    iterations=1,
    factory=_uvkbe_factory,
    flops_per_point=10,
    stencil_points=7,
)

advection_benchmark = Benchmark(
    name="Advection",
    frontend="Flang",
    z_dim=900,
    iterations=100_000,
    factory=_advection_factory,
    flops_per_point=3,
    stencil_points=2,
    boundary="periodic",
)

reflective_heat_benchmark = Benchmark(
    name="ReflectiveHeat",
    frontend="Devito",
    z_dim=704,
    iterations=512,
    factory=_reflective_heat_factory,
    flops_per_point=25,
    stencil_points=13,
    boundary="reflect",
)

#: the paper's five kernels — every figure and table runs over exactly these.
BENCHMARKS: tuple[Benchmark, ...] = (
    jacobian_benchmark,
    diffusion_benchmark,
    seismic_benchmark,
    uvkbe_benchmark,
    acoustic_benchmark,
)

#: the boundary-condition workloads (periodic / reflective halo modes).
BOUNDARY_BENCHMARKS: tuple[Benchmark, ...] = (
    advection_benchmark,
    reflective_heat_benchmark,
)

#: every registered workload, paper kernels first.
ALL_BENCHMARKS: tuple[Benchmark, ...] = BENCHMARKS + BOUNDARY_BENCHMARKS


def benchmark_by_name(name: str) -> Benchmark:
    for benchmark in ALL_BENCHMARKS:
        if benchmark.name.lower() == name.lower():
            return benchmark
    raise KeyError(f"unknown benchmark '{name}'")
