"""repro.csl — the CSL text front-door.

Parses handwritten CSL source (the grammar subset
:mod:`repro.backend.csl_printer` emits, shared via :mod:`repro.csl.surface`)
into the same :class:`~repro.wse.interpreter.ProgramImage` the compilation
pipeline produces, so handwritten kernels run on all five executors and can
be diff-tested field by field against generated code.

Entry points:

* :func:`parse_csl_program` — one program file → ``ProgramImage``
* :func:`parse_csl_sources` — a ``{filename: text}`` dict (the inverse of
  ``print_csl_sources``) → :class:`ParsedCsl` with layout metadata stitched
  onto the program module
* :func:`parse_csl_dir` — read every ``*.csl`` under a directory and parse
* ``python -m repro.csl parse|dump|diff`` — the CLI (see ``__main__``)
"""

from __future__ import annotations

import os

from repro.csl import ast, lower, parser, surface
from repro.csl.canonical import canonical_json_text, canonical_program_image
from repro.csl.diff import DiffReport, FieldDiff, diff_images
from repro.csl.lexer import (
    CslDiagnosticError,
    CslSyntaxError,
    SourceLocation,
    tokenize,
)
from repro.csl.lower import CslLoweringError, attach_layout, lower_module
from repro.dialects import csl as csl_dialect
from repro.wse.interpreter import ProgramImage

__all__ = [
    "PARSER_VERSION",
    "CslDiagnosticError",
    "CslSyntaxError",
    "CslLoweringError",
    "SourceLocation",
    "ParsedCsl",
    "parse_csl_program",
    "parse_csl_sources",
    "parse_csl_dir",
    "canonical_program_image",
    "canonical_json_text",
    "diff_images",
    "DiffReport",
    "FieldDiff",
]

#: bumped whenever parsing or lowering changes observable semantics; folded
#: into service run fingerprints so cached CSL runs invalidate correctly.
PARSER_VERSION = 1


class ParsedCsl:
    """The result of parsing a set of CSL sources."""

    def __init__(
        self,
        programs: list[csl_dialect.CslModuleOp],
        layout: csl_dialect.CslModuleOp | None,
    ):
        self.programs = programs
        self.layout = layout

    @property
    def program(self) -> csl_dialect.CslModuleOp:
        if not self.programs:
            raise ValueError("no program module among the parsed CSL sources")
        return self.programs[0]

    @property
    def modules(self) -> list[csl_dialect.CslModuleOp]:
        modules: list[csl_dialect.CslModuleOp] = list(self.programs)
        if self.layout is not None:
            modules.append(self.layout)
        return modules

    def image(self, index: int = 0) -> ProgramImage:
        return ProgramImage(self.programs[index])


def parse_csl_program(
    text: str, file: str = "<csl>", name: str | None = None
) -> ProgramImage:
    """Parse one CSL program source into a ProgramImage."""
    module = parser.parse_module(text, file, name)
    return ProgramImage(lower.lower_program(module))


def parse_csl_sources(sources: dict[str, str]) -> ParsedCsl:
    """Parse a ``{filename: text}`` source set (inverse of
    ``print_csl_sources``): layout metadata — fabric extent, hardware target
    — is stitched onto the program modules it tiles."""
    programs: list[csl_dialect.CslModuleOp] = []
    layout: csl_dialect.CslModuleOp | None = None
    tile_files: dict[str, csl_dialect.CslModuleOp] = {}
    for filename in sorted(sources):
        module = parser.parse_module(sources[filename], filename)
        lowered = lower.lower_module(module)
        if lowered.kind == csl_dialect.ModuleKind.LAYOUT:
            layout = lowered
        else:
            programs.append(lowered)
            tile_files[os.path.basename(filename)] = lowered
    if layout is not None:
        tiled = {
            os.path.basename(op.program_file)
            for op in layout.ops
            if isinstance(op, csl_dialect.SetTileCodeOp)
        }
        for program in programs:
            basename = f"{program.sym_name}.csl"
            if not tiled or basename in tiled or len(programs) == 1:
                lower.attach_layout(program, layout)
    return ParsedCsl(programs, layout)


def parse_csl_dir(directory: str) -> ParsedCsl:
    """Read and parse every ``*.csl`` file directly under ``directory``."""
    sources: dict[str, str] = {}
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".csl"):
            path = os.path.join(directory, entry)
            with open(path, "r", encoding="utf-8") as handle:
                sources[entry] = handle.read()
    if not sources:
        raise FileNotFoundError(f"no .csl files found under '{directory}'")
    return parse_csl_sources(sources)
