"""``python -m repro.csl`` — the CSL front-door command line.

Three verbs:

* ``parse FILE [FILE ...]`` (or ``--dir DIR``) — parse and lower the
  sources, printing a one-line summary per module; any diagnostic goes to
  stderr as ``file:line:col: message`` and exits 1;
* ``dump`` — re-print the parsed modules through the backend printer (the
  print→parse fixpoint), or ``--canonical`` for the scheduling-insensitive
  canonical JSON of the program image;
* ``diff --csl DIR --benchmark NAME`` — compile the named benchmark with
  the same grid, parse the handwritten directory, and compare both images
  field by field on the requested executors; exits 1 on divergence.
"""

from __future__ import annotations

import argparse
import sys

from repro.csl import (
    CslDiagnosticError,
    ParsedCsl,
    canonical_json_text,
    diff_images,
    parse_csl_dir,
    parse_csl_sources,
)
from repro.wse.interpreter import ProgramImage


def _parse_grid(text: str) -> tuple[int, int]:
    try:
        width_text, height_text = text.lower().split("x", 1)
        return int(width_text), int(height_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid grid {text!r}: expected WIDTHxHEIGHT, e.g. 4x4"
        ) from None


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "files", nargs="*", metavar="FILE", help="CSL source files"
    )
    parser.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="parse every *.csl directly under DIR instead of naming files",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.csl",
        description="Parse, re-print and diff handwritten CSL kernels.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    parse_parser = subparsers.add_parser(
        "parse", help="parse sources and print a per-module summary"
    )
    _add_source_arguments(parse_parser)

    dump_parser = subparsers.add_parser(
        "dump", help="re-print parsed sources through the backend printer"
    )
    _add_source_arguments(dump_parser)
    dump_parser.add_argument(
        "--canonical",
        action="store_true",
        help="print the canonical JSON of the program image instead of CSL",
    )

    diff_parser = subparsers.add_parser(
        "diff",
        help="field-by-field diff of handwritten CSL against a compiled "
        "benchmark",
    )
    diff_parser.add_argument(
        "--csl", required=True, metavar="DIR", help="handwritten source dir"
    )
    diff_parser.add_argument(
        "--benchmark", required=True, metavar="NAME", help="benchmark name"
    )
    diff_parser.add_argument(
        "--grid", type=_parse_grid, default=(4, 4), metavar="WxH"
    )
    diff_parser.add_argument("--nz", type=int, default=8)
    diff_parser.add_argument("--time-steps", type=int, default=2)
    diff_parser.add_argument("--num-chunks", type=int, default=1)
    diff_parser.add_argument(
        "--boundary",
        default=None,
        metavar="MODE",
        help="'periodic', 'reflect', 'dirichlet' or 'dirichlet:VALUE'",
    )
    diff_parser.add_argument(
        "--executors",
        default="reference,vectorized",
        metavar="A,B",
        help="comma-separated executor names (default reference,vectorized)",
    )
    diff_parser.add_argument("--seed", type=int, default=13)
    diff_parser.add_argument(
        "--fields",
        default=None,
        metavar="F,G",
        help="comma-separated field names (default: all shared buffers)",
    )
    return parser


def _load_sources(args: argparse.Namespace) -> ParsedCsl:
    if args.dir is not None and args.files:
        raise ValueError("name files or pass --dir, not both")
    if args.dir is not None:
        return parse_csl_dir(args.dir)
    if not args.files:
        raise ValueError("name at least one CSL file or pass --dir DIR")
    sources: dict[str, str] = {}
    for path in args.files:
        with open(path, "r", encoding="utf-8") as handle:
            sources[path] = handle.read()
    return parse_csl_sources(sources)


def _run_parse(args: argparse.Namespace, out) -> int:
    parsed = _load_sources(args)
    for module in parsed.modules:
        kind = getattr(module.kind, "value", module.kind)
        if kind == "program":
            image = ProgramImage(module)
            print(
                f"{module.sym_name}: program, grid "
                f"{image.width}x{image.height}, "
                f"{len(image.buffers)} buffers, "
                f"{len(image.callables)} callables, entry {image.entry}",
                file=out,
            )
        else:
            print(f"{module.sym_name}: layout", file=out)
    return 0


def _run_dump(args: argparse.Namespace, out) -> int:
    parsed = _load_sources(args)
    if args.canonical:
        print(canonical_json_text(parsed.image()), file=out)
        return 0
    from repro.backend.csl_printer import print_csl_sources

    for file_name, text in sorted(print_csl_sources(parsed.modules).items()):
        print(f"// --- {file_name} ---", file=out)
        print(text, file=out)
    return 0


def _run_diff(args: argparse.Namespace, out) -> int:
    from repro.backend.csl_printer import print_csl_sources
    from repro.benchmarks.definitions import benchmark_by_name
    from repro.frontends.common import BoundaryCondition
    from repro.transforms.pipeline import (
        PipelineOptions,
        compile_stencil_program,
    )

    width, height = args.grid
    benchmark = benchmark_by_name(args.benchmark)
    program = benchmark.program(
        nx=width, ny=height, nz=args.nz, time_steps=args.time_steps
    )
    options = PipelineOptions(
        grid_width=width,
        grid_height=height,
        num_chunks=args.num_chunks,
        boundary=(
            BoundaryCondition.parse(args.boundary)
            if args.boundary is not None
            else None
        ),
    )
    result = compile_stencil_program(program, options)
    generated = parse_csl_sources(print_csl_sources(result.csl_modules))
    handwritten = parse_csl_dir(args.csl)
    fields = (
        tuple(args.fields.split(",")) if args.fields is not None else None
    )
    report = diff_images(
        generated.image(),
        handwritten.image(),
        fields=fields,
        executors=tuple(args.executors.split(",")),
        seed=args.seed,
        label_a=f"generated:{benchmark.name}",
        label_b=f"handwritten:{args.csl}",
    )
    print(report.format(), file=out)
    return 0 if report.agreed else 1


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "parse":
            return _run_parse(args, out)
        if args.command == "dump":
            return _run_dump(args, out)
        if args.command == "diff":
            return _run_diff(args, out)
    except CslDiagnosticError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
