"""AST for the supported CSL grammar subset.

Pure data: every node carries the :class:`~repro.csl.lexer.SourceLocation` of
its introducing token so lowering diagnostics can point back into the text.
The shapes mirror what :mod:`repro.backend.csl_printer` emits — this is the
grammar the printer and parser agree on via :mod:`repro.csl.surface`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.csl.lexer import SourceLocation

# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #


@dataclass
class Expr:
    loc: SourceLocation


@dataclass
class NumberLit(Expr):
    value: int | float


@dataclass
class NameRef(Expr):
    name: str


@dataclass
class BinaryExpr(Expr):
    op: str  # "+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!="
    lhs: Expr
    rhs: Expr


@dataclass
class GetDsdExpr(Expr):
    """``@get_dsd(mem1d_dsd, .{ .tensor_access = |i|{len} -> buf[off + i * s] })``"""

    buffer: str
    length: int
    offset: int
    stride: int


@dataclass
class IncrementDsdExpr(Expr):
    """``@increment_dsd_offset(base, off [+ runtime], f32)``"""

    base: str
    offset: int
    runtime: str | None


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #


@dataclass
class Stmt:
    loc: SourceLocation


@dataclass
class ConstStmt(Stmt):
    name: str
    expr: Expr


@dataclass
class AssignStmt(Stmt):
    name: str
    expr: Expr


@dataclass
class BuiltinCallStmt(Stmt):
    """A DSD compute builtin statement, e.g. ``@fmacs(d, a, s, c);``."""

    builtin: str
    args: list[Expr]


@dataclass
class ActivateStmt(Stmt):
    """``@activate(@get_local_task_id(id));``"""

    task_id: int


@dataclass
class CallStmt(Stmt):
    callee: str


@dataclass
class CommsCallStmt(Stmt):
    """``stencil_comms.communicate(&dsd, .{ ... });`` — the struct carries the
    full exchange description (see surface.COMMS_CALL_REQUIRED_FIELDS)."""

    buffer: str
    num_chunks: int
    chunk_size: int
    src_offset: int
    src_len: int
    pattern: int
    recv_buffer: str
    directions: list[tuple[int, int]]
    coefficients: list[float] | None
    recv: str | None
    done: str


@dataclass
class UnblockStmt(Stmt):
    receiver: str


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_body: list[Stmt]
    else_body: list[Stmt]


@dataclass
class ReturnStmt(Stmt):
    pass


# --------------------------------------------------------------------------- #
# Declarations
# --------------------------------------------------------------------------- #


@dataclass
class Decl:
    loc: SourceLocation


@dataclass
class ParamDecl(Decl):
    name: str
    type_name: str
    default: int | float | None


@dataclass
class ImportDecl(Decl):
    name: str
    module: str
    fields: dict[str, int | float | str]


@dataclass
class VarDecl(Decl):
    name: str
    type_name: str
    init: int | float


@dataclass
class ZerosDecl(Decl):
    """``var buf = @zeros([n]f32);``"""

    name: str
    size: int


@dataclass
class CallableDecl(Decl):
    """A ``fn`` or ``task`` definition; task binding arrives separately."""

    name: str
    is_task: bool
    params: list[tuple[str, str]]  # (name, type)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class BindDecl(Decl):
    """``comptime { @bind_local_task(@get_local_task_id(id), name); }``"""

    task_id: int
    task_name: str


@dataclass
class ExportDecl(Decl):
    sym_name: str


@dataclass
class RpcDecl(Decl):
    import_name: str


@dataclass
class SetRectangleDecl(Decl):
    width: int
    height: int


@dataclass
class SetTileCodeDecl(Decl):
    program_file: str
    params: dict[str, int | float | str]


@dataclass
class Module:
    """One parsed CSL source file."""

    name: str
    kind: str  # "program" | "layout"
    file: str
    decls: list[Decl] = field(default_factory=list)
