"""Scheduling-insensitive canonical form of a ProgramImage.

Two csl-ir programs are semantically equal when they declare the same module
surface (params, buffers, variables, imports, layout metadata) and every
callable performs the same *effectful* statements over the same operand value
trees.  This form deliberately ignores how pure SSA ops are interleaved —
`const` ordering, duplicated DSD definitions and invisible ``LoadVarOp``
placement are all spelling, not meaning — which is exactly the freedom a
human rewriting a generated kernel exercises.

Used by the print→parse fixpoint tests (generated module == reparse of its
own printout) and the ``repro.csl diff``/``dump --canonical`` CLI verbs.
"""

from __future__ import annotations

import json
from typing import Any

from repro.csl import surface
from repro.dialects import arith, csl, scf
from repro.ir.attributes import FloatAttr, IntAttr, StringAttr
from repro.ir.operation import Block, Operation
from repro.ir.value import SSAValue
from repro.wse.interpreter import ProgramImage

__all__ = ["canonical_program_image", "canonical_json_text"]


def canonical_program_image(image: ProgramImage) -> dict[str, Any]:
    """The canonical (JSON-serialisable) form of one program image."""
    module = image.module
    target = module.attributes.get(surface.ATTR_TARGET)
    boundary = image.boundary
    imports = []
    for op in module.ops:
        if isinstance(op, csl.ImportModuleOp):
            imports.append(
                [
                    op.module,
                    {
                        key: _attr_value(value)
                        for key, value in sorted(op.fields.items())
                    },
                ]
            )
    imports.sort(key=lambda entry: entry[0])
    callables = {
        name: _canonical_callable(op) for name, op in sorted(image.callables.items())
    }
    return {
        "width": image.width,
        "height": image.height,
        "target": target.data if isinstance(target, StringAttr) else None,
        "boundary": [boundary.kind, float(boundary.value)],
        "entry": image.entry,
        "params": dict(sorted(image.params.items())),
        "buffers": dict(sorted(image.buffers.items())),
        "variables": dict(sorted(image.variables.items())),
        "imports": imports,
        "callables": callables,
    }


def canonical_json_text(image: ProgramImage) -> str:
    """The canonical form as deterministic JSON text."""
    return json.dumps(canonical_program_image(image), sort_keys=True, indent=2)


# --------------------------------------------------------------------------- #
# Callables
# --------------------------------------------------------------------------- #


def _canonical_callable(op: Operation) -> dict[str, Any]:
    block: Block = op.regions[0].blocks[0]
    producers: dict[int, Operation] = {}
    _collect_producers(block, producers)
    args = {id(argument): index for index, argument in enumerate(block.args)}
    entry: dict[str, Any] = {
        "kind": "task" if isinstance(op, csl.TaskOp) else "fn",
        "args": len(block.args),
        "body": _statements(block, producers, args),
    }
    if isinstance(op, csl.TaskOp):
        entry["task_id"] = op.task_id
        entry["task_kind"] = op.kind
    return entry


def _collect_producers(block: Block, producers: dict[int, Operation]) -> None:
    for op in block.ops:
        for result in op.results:
            producers[id(result)] = op
        for region in op.regions:
            for inner in region.blocks:
                _collect_producers(inner, producers)


def _statements(
    block: Block, producers: dict[int, Operation], args: dict[int, int]
) -> list[Any]:
    statements: list[Any] = []
    for op in block.ops:
        statement = _statement(op, producers, args)
        if statement is not None:
            statements.append(statement)
    return statements


def _statement(
    op: Operation, producers: dict[int, Operation], args: dict[int, int]
) -> Any:
    def tree(value: SSAValue) -> Any:
        return _value_tree(value, producers, args)

    if isinstance(op, csl.StoreVarOp):
        return ["store", op.var, tree(op.value)]
    if isinstance(op, csl._DsdBuiltinOp):
        return ["builtin", op.builtin_name, [tree(v) for v in op.operands]]
    if isinstance(op, csl.CallOp):
        return ["call", op.callee]
    if isinstance(op, csl.ActivateOp):
        return ["activate", op.task_id, op.task_name]
    if isinstance(op, csl.CommsExchangeOp):
        exchange: dict[str, Any] = {
            "buffer": tree(op.buffer),
            "num_chunks": op.num_chunks,
            "pattern": op.pattern,
            "recv": op.recv_callback,
            "done": op.done_callback,
            "directions": [list(d) for d in op.directions],
            "coefficients": (
                list(op.coefficients) if op.coefficients is not None else None
            ),
        }
        for key in ("src_offset", "src_len", "chunk_size"):
            attr = op.attributes.get(key)
            exchange[key] = attr.value if isinstance(attr, IntAttr) else None
        recv_buffer = op.attributes.get("recv_buffer")
        exchange["recv_buffer"] = (
            recv_buffer.string_value if recv_buffer is not None else None
        )
        return ["exchange", exchange]
    if isinstance(op, csl.UnblockCmdStreamOp):
        return ["unblock"]
    if isinstance(op, scf.IfOp):
        return [
            "if",
            tree(op.condition),
            _statements(op.then_region.blocks[0], producers, args),
            _statements(op.else_region.blocks[0], producers, args),
        ]
    if isinstance(op, csl.ReturnOp):
        return ["return"]
    # pure SSA ops (constants, loads, dsd definitions, arithmetic) surface
    # only through the value trees of the effectful statements above
    return None


def _value_tree(
    value: SSAValue, producers: dict[int, Operation], args: dict[int, int]
) -> Any:
    if id(value) in args:
        return ["arg", args[id(value)]]
    op = producers.get(id(value))
    if op is None:
        return ["unknown"]

    def tree(inner: SSAValue) -> Any:
        return _value_tree(inner, producers, args)

    if isinstance(op, (csl.ConstantOp, arith.ConstantOp)):
        v = op.value
        return ["float", float(v)] if isinstance(v, float) else ["int", int(v)]
    if isinstance(op, csl.LoadVarOp):
        return ["var", op.var]
    if isinstance(op, csl.GetMemDsdOp):
        buffer_attr = op.attributes.get("buffer")
        buffer = (
            buffer_attr.data
            if isinstance(buffer_attr, StringAttr)
            else tree(op.operands[0])
        )
        return ["dsd", buffer, op.offset, op.length, op.stride]
    if isinstance(op, csl.IncrementDsdOffsetOp):
        entry = ["incr", tree(op.operands[0]), op.offset]
        if len(op.operands) > 1:
            entry.append(tree(op.operands[1]))
        return entry
    if isinstance(op, arith.CmpiOp):
        return [
            "cmp",
            surface.CMP_PREDICATE_SYMBOLS[op.predicate],
            tree(op.lhs),
            tree(op.rhs),
        ]
    symbol = surface.BINARY_OP_SYMBOLS.get(type(op))
    if symbol is not None:
        return ["bin", symbol, tree(op.operands[0]), tree(op.operands[1])]
    if isinstance(op, csl.ImportModuleOp):
        return ["import", op.module]
    return ["opaque", op.name]


def _attr_value(attribute: Any) -> Any:
    if isinstance(attribute, IntAttr):
        return ["i", attribute.value]
    if isinstance(attribute, FloatAttr):
        return ["f", attribute.value]
    if isinstance(attribute, StringAttr):
        return ["s", attribute.data]
    return ["?", str(attribute)]
