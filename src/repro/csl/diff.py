"""Field-by-field diff harness: handwritten vs generated kernels.

Runs two program images — typically one parsed from handwritten CSL text and
one produced by the compilation pipeline — under identical seeded inputs on
one or more executors, then compares every requested field byte for byte.
This turns the paper's generated-vs-handwritten claim into an executable
regression test: agreement is ``max_abs_diff == 0.0`` and equal SHA-256
digests, not a chart.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.wse.interpreter import ProgramImage

__all__ = ["FieldDiff", "DiffReport", "diff_images"]


@dataclass(frozen=True)
class FieldDiff:
    """One (executor, field) comparison."""

    executor: str
    fieldname: str
    digest_a: str
    digest_b: str
    max_abs_diff: float

    @property
    def identical(self) -> bool:
        return self.digest_a == self.digest_b


@dataclass
class DiffReport:
    """Every comparison of one diff run, plus the inputs that drove it."""

    label_a: str
    label_b: str
    seed: int
    entries: list[FieldDiff] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        return bool(self.entries) and all(e.identical for e in self.entries)

    def format(self) -> str:
        width = max(
            [len(e.fieldname) for e in self.entries] + [len("field")], default=5
        )
        lines = [
            f"diff: {self.label_a} vs {self.label_b} (seed {self.seed})",
            f"{'executor':<12} {'field':<{width}} {'max|diff|':>12}  verdict",
        ]
        for entry in self.entries:
            verdict = (
                "byte-identical"
                if entry.identical
                else f"DIVERGED ({entry.digest_a[:12]} != {entry.digest_b[:12]})"
            )
            lines.append(
                f"{entry.executor:<12} {entry.fieldname:<{width}} "
                f"{entry.max_abs_diff:>12.3e}  {verdict}"
            )
        lines.append(
            "result: "
            + ("FIELD-BY-FIELD AGREEMENT" if self.agreed else "DIVERGENCE DETECTED")
        )
        return "\n".join(lines)


def _digest(columns: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(columns).tobytes()).hexdigest()


def diff_images(
    image_a: ProgramImage,
    image_b: ProgramImage,
    *,
    fields: tuple[str, ...] | None = None,
    executors: tuple[str, ...] = ("reference", "vectorized"),
    seed: int = 13,
    label_a: str = "a",
    label_b: str = "b",
) -> DiffReport:
    """Run both images on every executor and compare fields byte for byte.

    ``fields`` defaults to the buffers both images declare with equal sizes.
    Both simulations load identical seeded columns into every compared field
    before launch, so any divergence is the program's doing.
    """
    from repro.wse.simulator import WseSimulator

    if image_a.width != image_b.width or image_a.height != image_b.height:
        raise ValueError(
            f"cannot diff images on different grids: "
            f"{image_a.width}x{image_a.height} vs {image_b.width}x{image_b.height}"
        )
    if fields is None:
        fields = tuple(
            sorted(
                name
                for name, size in image_a.buffers.items()
                if image_b.buffers.get(name) == size
            )
        )
    for name in fields:
        if image_a.buffers.get(name) != image_b.buffers.get(name):
            raise ValueError(
                f"field '{name}' differs between images: "
                f"{image_a.buffers.get(name)} vs {image_b.buffers.get(name)} elements"
            )

    report = DiffReport(label_a=label_a, label_b=label_b, seed=seed)
    for executor in executors:
        rng = np.random.default_rng(seed)
        inputs = {
            name: rng.uniform(
                -1.0,
                1.0,
                size=(image_a.width, image_a.height, image_a.buffers[name]),
            ).astype(np.float32)
            for name in fields
        }
        outputs: dict[str, dict[str, np.ndarray]] = {}
        for key, image in (("a", image_a), ("b", image_b)):
            simulator = WseSimulator(image, executor=executor)
            for name in fields:
                simulator.load_field(name, inputs[name])
            simulator.execute()
            outputs[key] = {name: simulator.read_field(name) for name in fields}
        for name in fields:
            columns_a = outputs["a"][name]
            columns_b = outputs["b"][name]
            report.entries.append(
                FieldDiff(
                    executor=executor,
                    fieldname=name,
                    digest_a=_digest(columns_a),
                    digest_b=_digest(columns_b),
                    max_abs_diff=float(
                        np.max(np.abs(columns_a - columns_b), initial=0.0)
                    ),
                )
            )
    return report
