"""Lexer for the supported CSL grammar subset.

Produces a flat token stream with precise ``line:col`` positions (1-based,
like every compiler the user has ever pasted output from).  All diagnostics in
the frontend — lexing, parsing and lowering — derive from
:class:`CslDiagnosticError`, which formats as ``file:line:col: message (at
'token')`` so a failing handwritten kernel points at the offending source.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CslDiagnosticError",
    "CslSyntaxError",
    "SourceLocation",
    "Token",
    "tokenize",
]


@dataclass(frozen=True)
class SourceLocation:
    """A position inside one CSL source file."""

    file: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.col}"


class CslDiagnosticError(Exception):
    """Base of every CSL frontend diagnostic; carries a source location."""

    def __init__(self, message: str, loc: SourceLocation, token: str | None = None):
        text = f"{loc}: {message}"
        if token is not None:
            text += f" (at '{token}')"
        super().__init__(text)
        self.reason = message
        self.loc = loc
        self.token = token


class CslSyntaxError(CslDiagnosticError):
    """A lexical or grammatical error in CSL source text."""


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # "ident" | "builtin" | "number" | "string" | "punct" | "eof"
    text: str
    loc: SourceLocation

    def is_punct(self, text: str) -> bool:
        return self.kind == "punct" and self.text == text


#: multi-character punctuators, longest-match first
_PUNCT2 = ("->", "+=", "<=", ">=", "==", "!=")
_PUNCT1 = set("{}()[];:,.=<>+-*/&|")

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")


def tokenize(text: str, file: str = "<csl>") -> list[Token]:
    """Lex CSL source into tokens; raises :class:`CslSyntaxError` with the
    exact ``file:line:col`` of any character the grammar subset rejects."""
    tokens: list[Token] = []
    line, col = 1, 1
    i, n = 0, len(text)

    def loc() -> SourceLocation:
        return SourceLocation(file, line, col)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "/" and text[i : i + 2] == "//":
            while i < n and text[i] != "\n":
                advance(1)
            continue
        start = loc()
        if ch in _IDENT_START:
            j = i
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token("ident", text[i:j], start))
            advance(j - i)
            continue
        if ch == "@":
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            if j == i + 1:
                raise CslSyntaxError("'@' must introduce a builtin name", start, "@")
            tokens.append(Token("builtin", text[i:j], start))
            advance(j - i)
            continue
        if ch in _DIGITS:
            j = i
            while j < n and text[j] in _DIGITS:
                j += 1
            if j < n and text[j] == ".":
                j += 1
                while j < n and text[j] in _DIGITS:
                    j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k >= n or text[k] not in _DIGITS:
                    raise CslSyntaxError(
                        "malformed number literal exponent", start, text[i : j + 1]
                    )
                j = k
                while j < n and text[j] in _DIGITS:
                    j += 1
            tokens.append(Token("number", text[i:j], start))
            advance(j - i)
            continue
        if ch == '"':
            j = i + 1
            while j < n and text[j] not in '"\n':
                j += 1
            if j >= n or text[j] != '"':
                raise CslSyntaxError("unterminated string literal", start, '"')
            tokens.append(Token("string", text[i + 1 : j], start))
            advance(j - i + 1)
            continue
        two = text[i : i + 2]
        if two in _PUNCT2:
            tokens.append(Token("punct", two, start))
            advance(2)
            continue
        if ch in _PUNCT1:
            tokens.append(Token("punct", ch, start))
            advance(1)
            continue
        raise CslSyntaxError("unexpected character", start, ch)

    tokens.append(Token("eof", "", SourceLocation(file, line, col)))
    return tokens


def number_value(token: Token) -> int | float:
    """The numeric value of a ``number`` token (int unless '.'/exponent)."""
    if "." in token.text or "e" in token.text or "E" in token.text:
        return float(token.text)
    return int(token.text)
