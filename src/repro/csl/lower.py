"""Lowering from the CSL AST into csl-ir modules and a ProgramImage.

This is the inverse of :mod:`repro.backend.csl_printer`: the AST produced by
:mod:`repro.csl.parser` is rebuilt into the same op shapes the compilation
pipeline generates, so a parsed module drops into the existing
:class:`~repro.wse.interpreter.ProgramImage` →
:class:`~repro.wse.plan.ExecutionPlan` → executor machinery unchanged —
handwritten CSL runs on all five backends exactly like generated CSL.

Semantic errors (unknown buffers, unbound task ids, undefined names) raise
:class:`CslLoweringError` with the ``file:line:col`` of the offending node.
"""

from __future__ import annotations

from repro.csl import ast, surface
from repro.csl.lexer import CslDiagnosticError, SourceLocation
from repro.dialects import arith, csl, scf
from repro.ir.attributes import (
    Attribute,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
)
from repro.ir.operation import Block, Operation, Region
from repro.ir.types import MemRefType, f32, i16, i32
from repro.ir.value import SSAValue
from repro.wse.interpreter import ProgramImage

__all__ = ["CslLoweringError", "lower_module", "lower_program", "attach_layout"]


class CslLoweringError(CslDiagnosticError):
    """A semantic error found while lowering parsed CSL to csl-ir."""


_TYPE_BY_NAME: dict[str, Attribute] = {
    "i16": i16,
    "i32": i32,
    "u16": i16,
    "u32": i32,
    "f32": f32,
}


def lower_module(module: ast.Module) -> csl.CslModuleOp:
    """Lower one parsed module (program or layout) to a csl-ir module."""
    if module.kind == "layout":
        return _lower_layout(module)
    return lower_program(module)


# --------------------------------------------------------------------------- #
# Layout modules
# --------------------------------------------------------------------------- #


def _lower_layout(module: ast.Module) -> csl.CslModuleOp:
    ops: list[Operation] = []
    width = height = None
    for decl in module.decls:
        if isinstance(decl, ast.ImportDecl):
            fields = {
                key: surface.value_attr(value) for key, value in decl.fields.items()
            }
            ops.append(csl.ImportModuleOp(decl.module, fields))
        elif isinstance(decl, ast.SetRectangleDecl):
            width, height = decl.width, decl.height
            ops.append(csl.SetRectangleOp(decl.width, decl.height))
        elif isinstance(decl, ast.SetTileCodeDecl):
            params = {
                key: surface.value_attr(value) for key, value in decl.params.items()
            }
            ops.append(csl.SetTileCodeOp(decl.program_file, params))
        elif isinstance(decl, ast.ParamDecl):
            # `param width : u16;` scaffolding carries no payload
            continue
        else:
            raise CslLoweringError(
                f"declaration not supported in a layout module", decl.loc
            )
    layout = csl.CslModuleOp(csl.ModuleKind.LAYOUT, module.name, ops)
    if width is not None:
        layout.attributes[surface.ATTR_WIDTH] = IntAttr(width)
        layout.attributes[surface.ATTR_HEIGHT] = IntAttr(height)
    return layout


# --------------------------------------------------------------------------- #
# Program modules
# --------------------------------------------------------------------------- #


class _ProgramLowerer:
    def __init__(self, module: ast.Module):
        self.module = module
        # first pass: names and task bindings (forward references are legal)
        self.binds: dict[str, int] = {}
        self.tasks_by_id: dict[int, str] = {}
        self.callable_names: set[str] = set()
        self.buffer_sizes: dict[str, int] = {}
        self.var_names: set[str] = set()
        self.param_names: set[str] = set()
        for decl in module.decls:
            if isinstance(decl, ast.BindDecl):
                self.binds[decl.task_name] = decl.task_id
                self.tasks_by_id[decl.task_id] = decl.task_name
            elif isinstance(decl, ast.CallableDecl):
                self.callable_names.add(decl.name)
            elif isinstance(decl, ast.ZerosDecl):
                self.buffer_sizes[decl.name] = decl.size
            elif isinstance(decl, ast.VarDecl):
                self.var_names.add(decl.name)
            elif isinstance(decl, ast.ParamDecl):
                self.param_names.add(decl.name)
        # module-scope SSA values (import structs, buffer results)
        self.imports: dict[str, csl.ImportModuleOp] = {}
        self.buffers: dict[str, csl.ZerosOp] = {}
        self.comms_import: ast.ImportDecl | None = None

    # -------------------------------------------------------------- #

    def lower(self) -> csl.CslModuleOp:
        ops: list[Operation] = []
        exported_fns: list[str] = []
        for decl in self.module.decls:
            if isinstance(decl, ast.ParamDecl):
                ops.append(
                    csl.ParamOp(
                        decl.name,
                        _TYPE_BY_NAME[decl.type_name],
                        decl.default,
                    )
                )
            elif isinstance(decl, ast.ImportDecl):
                fields = {
                    key: surface.value_attr(value)
                    for key, value in decl.fields.items()
                }
                import_op = csl.ImportModuleOp(decl.module, fields)
                self.imports[decl.name] = import_op
                if decl.module == surface.COMMS_MODULE:
                    self.comms_import = decl
                ops.append(import_op)
            elif isinstance(decl, ast.VarDecl):
                ops.append(
                    csl.VariableOp(decl.name, _TYPE_BY_NAME[decl.type_name], decl.init)
                )
            elif isinstance(decl, ast.ZerosDecl):
                zeros = csl.ZerosOp(MemRefType([decl.size], f32), decl.name)
                self.buffers[decl.name] = zeros
                ops.append(zeros)
            elif isinstance(decl, ast.CallableDecl):
                ops.append(self.lower_callable(decl))
            elif isinstance(decl, ast.BindDecl):
                if decl.task_name not in self.callable_names:
                    raise CslLoweringError(
                        f"@bind_local_task of undefined task '{decl.task_name}'",
                        decl.loc,
                        decl.task_name,
                    )
                # the binding is folded into the TaskOp itself
                continue
            elif isinstance(decl, ast.ExportDecl):
                kind = "fn" if decl.sym_name in self.callable_names else "var"
                ops.append(csl.ExportOp(decl.sym_name, kind=kind))
                if kind == "fn":
                    exported_fns.append(decl.sym_name)
            elif isinstance(decl, ast.RpcDecl):
                import_op = self.imports.get(decl.import_name)
                if import_op is None:
                    raise CslLoweringError(
                        f"@rpc references undefined import '{decl.import_name}'",
                        decl.loc,
                        decl.import_name,
                    )
                ops.append(csl.RpcOp(import_op.result))
            else:
                raise CslLoweringError(
                    "declaration not supported in a program module", decl.loc
                )

        program = csl.CslModuleOp(csl.ModuleKind.PROGRAM, self.module.name, ops)

        # boundary metadata rides the comms-library import fields
        if self.comms_import is not None:
            fields = self.comms_import.fields
            kind = fields.get(surface.COMMS_IMPORT_BOUNDARY)
            if isinstance(kind, str):
                program.attributes[surface.ATTR_BOUNDARY] = StringAttr(kind)
                value = fields.get(surface.COMMS_IMPORT_BOUNDARY_VALUE, 0.0)
                if kind == "dirichlet":
                    program.attributes[surface.ATTR_BOUNDARY_VALUE] = FloatAttr(
                        float(value)
                    )

        # a handwritten module may export its entry point under another name
        if "f_main" not in self.callable_names and len(exported_fns) == 1:
            program.attributes[surface.ATTR_ENTRY] = StringAttr(exported_fns[0])
        return program

    # -------------------------------------------------------------- #

    def lower_callable(self, decl: ast.CallableDecl) -> Operation:
        arg_types = [_TYPE_BY_NAME.get(type_name, i16) for _, type_name in decl.params]
        if decl.is_task:
            task_id = self.binds.get(decl.name)
            if task_id is None:
                raise CslLoweringError(
                    f"task '{decl.name}' has no @bind_local_task binding",
                    decl.loc,
                    decl.name,
                )
            op: Operation = csl.TaskOp(
                decl.name, csl.TaskKind.LOCAL, task_id, arg_types=arg_types
            )
        else:
            op = csl.FuncOp(decl.name, arg_types=arg_types)
        block = op.regions[0].blocks[0]
        env: dict[str, SSAValue] = {
            name: block.args[index] for index, (name, _) in enumerate(decl.params)
        }
        ops = self.lower_statements(decl.body, env)
        for inner in ops:
            block.add_op(inner)
        return op

    def lower_statements(
        self, statements: list[ast.Stmt], env: dict[str, SSAValue]
    ) -> list[Operation]:
        ops: list[Operation] = []
        for stmt in statements:
            self.lower_statement(stmt, env, ops)
        return ops

    def lower_statement(
        self, stmt: ast.Stmt, env: dict[str, SSAValue], ops: list[Operation]
    ) -> None:
        if isinstance(stmt, ast.ConstStmt):
            value = self.lower_expression(stmt.expr, env, ops)
            if stmt.name in env:
                raise CslLoweringError(
                    f"redefinition of const '{stmt.name}'", stmt.loc, stmt.name
                )
            env[stmt.name] = value
        elif isinstance(stmt, ast.AssignStmt):
            if stmt.name not in self.var_names:
                raise CslLoweringError(
                    f"assignment to '{stmt.name}', which is not a module var",
                    stmt.loc,
                    stmt.name,
                )
            value = self.lower_operand(stmt.expr, env, ops)
            ops.append(csl.StoreVarOp(stmt.name, value))
        elif isinstance(stmt, ast.BuiltinCallStmt):
            op_cls = surface.DSD_BUILTINS[stmt.builtin]
            operands = [self.lower_operand(arg, env, ops) for arg in stmt.args]
            ops.append(op_cls(*operands))
        elif isinstance(stmt, ast.ActivateStmt):
            task_name = self.tasks_by_id.get(stmt.task_id)
            if task_name is None:
                raise CslLoweringError(
                    f"@activate of task id {stmt.task_id}, which is never bound",
                    stmt.loc,
                    str(stmt.task_id),
                )
            ops.append(csl.ActivateOp(task_name, stmt.task_id))
        elif isinstance(stmt, ast.CallStmt):
            if stmt.callee not in self.callable_names:
                raise CslLoweringError(
                    f"call of undefined function '{stmt.callee}'",
                    stmt.loc,
                    stmt.callee,
                )
            ops.append(csl.CallOp(stmt.callee))
        elif isinstance(stmt, ast.CommsCallStmt):
            ops.append(self.lower_communicate(stmt, env, ops))
        elif isinstance(stmt, ast.UnblockStmt):
            import_op = self.imports.get(stmt.receiver)
            ops.append(
                csl.UnblockCmdStreamOp(
                    import_op.result if import_op is not None else None
                )
            )
        elif isinstance(stmt, ast.IfStmt):
            condition = self.lower_operand(stmt.condition, env, ops)
            then_ops = self.lower_statements(stmt.then_body, dict(env))
            else_ops = self.lower_statements(stmt.else_body, dict(env))
            ops.append(
                scf.IfOp(
                    condition,
                    then_region=Region([Block(ops=then_ops)]),
                    else_region=Region([Block(ops=else_ops)]),
                )
            )
        elif isinstance(stmt, ast.ReturnStmt):
            ops.append(csl.ReturnOp())
        else:
            raise CslLoweringError("unsupported statement", stmt.loc)

    def lower_communicate(
        self, stmt: ast.CommsCallStmt, env: dict[str, SSAValue], ops: list[Operation]
    ) -> csl.CommsExchangeOp:
        buffer = env.get(stmt.buffer)
        if buffer is None:
            raise CslLoweringError(
                f"communicate references undefined DSD '{stmt.buffer}'",
                stmt.loc,
                stmt.buffer,
            )
        if stmt.recv_buffer not in self.buffer_sizes:
            raise CslLoweringError(
                f"communicate '.recv_buffer' references unknown buffer "
                f"'{stmt.recv_buffer}'",
                stmt.loc,
                stmt.recv_buffer,
            )
        for name in (stmt.recv, stmt.done):
            if name is not None and name not in self.callable_names:
                raise CslLoweringError(
                    f"communicate callback '{name}' is not a task or function",
                    stmt.loc,
                    name,
                )
        exchange = csl.CommsExchangeOp(
            buffer,
            num_chunks=stmt.num_chunks,
            recv_callback=stmt.recv or "",
            done_callback=stmt.done,
            directions=stmt.directions,
            pattern=stmt.pattern,
            coefficients=stmt.coefficients,
        )
        # the metadata the plan lowering and interpreter fallback read
        exchange.attributes["recv_buffer"] = SymbolRefAttr(stmt.recv_buffer)
        exchange.attributes["src_offset"] = IntAttr(stmt.src_offset)
        exchange.attributes["src_len"] = IntAttr(stmt.src_len)
        exchange.attributes["chunk_size"] = IntAttr(stmt.chunk_size)
        return exchange

    # -------------------------------------------------------------- #

    def lower_expression(
        self, expr: ast.Expr, env: dict[str, SSAValue], ops: list[Operation]
    ) -> SSAValue:
        if isinstance(expr, ast.GetDsdExpr):
            zeros = self.buffers.get(expr.buffer)
            if zeros is None:
                raise CslLoweringError(
                    f"@get_dsd references unknown buffer '{expr.buffer}'",
                    expr.loc,
                    expr.buffer,
                )
            dsd = csl.GetMemDsdOp(
                zeros.result, expr.length, offset=expr.offset, stride=expr.stride
            )
            dsd.attributes["buffer"] = StringAttr(expr.buffer)
            ops.append(dsd)
            return dsd.result
        if isinstance(expr, ast.IncrementDsdExpr):
            base = env.get(expr.base)
            if base is None:
                raise CslLoweringError(
                    f"@increment_dsd_offset references undefined DSD '{expr.base}'",
                    expr.loc,
                    expr.base,
                )
            shift = csl.IncrementDsdOffsetOp(base, expr.offset)
            if expr.runtime is not None:
                runtime = self.lower_name(expr.runtime, expr.loc, env, ops)
                shift.add_operand(runtime)
            ops.append(shift)
            return shift.result
        if isinstance(expr, ast.BinaryExpr):
            lhs = self.lower_operand(expr.lhs, env, ops)
            rhs = self.lower_operand(expr.rhs, env, ops)
            if expr.op in surface.CMP_SYMBOL_PREDICATES:
                cmp = arith.CmpiOp(surface.CMP_SYMBOL_PREDICATES[expr.op], lhs, rhs)
                ops.append(cmp)
                return cmp.results[0]
            op_cls = surface.BINARY_SYMBOL_OPS.get(expr.op)
            if op_cls is None:
                raise CslLoweringError(
                    f"unsupported binary operator '{expr.op}'", expr.loc, expr.op
                )
            binary = op_cls(lhs, rhs)
            ops.append(binary)
            return binary.results[0]
        return self.lower_operand(expr, env, ops)

    def lower_operand(
        self, expr: ast.Expr, env: dict[str, SSAValue], ops: list[Operation]
    ) -> SSAValue:
        if isinstance(expr, ast.NumberLit):
            result_type = f32 if isinstance(expr.value, float) else i32
            constant = arith.ConstantOp(expr.value, result_type)
            ops.append(constant)
            return constant.results[0]
        if isinstance(expr, ast.NameRef):
            return self.lower_name(expr.name, expr.loc, env, ops)
        raise CslLoweringError("expected a name or number operand", expr.loc)

    def lower_name(
        self,
        name: str,
        loc: SourceLocation,
        env: dict[str, SSAValue],
        ops: list[Operation],
    ) -> SSAValue:
        if name in env:
            return env[name]
        if name in self.var_names:
            load = csl.LoadVarOp(name, i32)
            ops.append(load)
            return load.result
        raise CslLoweringError(f"use of undefined name '{name}'", loc, name)


def lower_program(module: ast.Module) -> csl.CslModuleOp:
    """Lower a parsed program module to csl-ir."""
    if module.kind != "program":
        raise CslLoweringError(
            "expected a program module, got a layout module",
            SourceLocation(module.file, 1, 1),
        )
    return _ProgramLowerer(module).lower()


def attach_layout(
    program: csl.CslModuleOp, layout: csl.CslModuleOp
) -> None:
    """Stitch layout metadata onto a program module.

    The fabric extent lives in the layout's ``@set_rectangle`` and the
    hardware target in the ``@set_tile_code`` params; the program module
    carries them as attributes so :class:`ProgramImage` and the simulator
    see the same shape a pipeline-generated module would.
    """
    for key in (surface.ATTR_WIDTH, surface.ATTR_HEIGHT):
        attr = layout.attributes.get(key)
        if isinstance(attr, IntAttr):
            program.attributes[key] = IntAttr(attr.value)
    for op in layout.ops:
        if isinstance(op, csl.SetTileCodeOp):
            target = op.params.get(surface.TILE_PARAM_TARGET)
            if isinstance(target, StringAttr):
                program.attributes[surface.ATTR_TARGET] = StringAttr(target.data)
            break


def build_image(program: csl.CslModuleOp) -> ProgramImage:
    """Wrap a lowered program module in the shared ProgramImage."""
    return ProgramImage(program)
