"""Recursive-descent parser for the supported CSL grammar subset.

The grammar is exactly the surface :mod:`repro.backend.csl_printer` emits
(shared spellings live in :mod:`repro.csl.surface`): module-scope params,
imports, variables, ``@zeros`` buffers, ``fn``/``task`` definitions with
``comptime`` bind/export/rpc blocks, and straight-line statement bodies with
single-operator expressions, DSD builtins, the extended
``stencil_comms.communicate`` call and ``if``/``else``.  Layout files add the
``layout { @set_rectangle / while / @set_tile_code }`` metaprogram.

Every rejection raises :class:`~repro.csl.lexer.CslSyntaxError` carrying the
``file:line:col`` of the offending token.
"""

from __future__ import annotations

from repro.csl import ast, surface
from repro.csl.lexer import (
    CslSyntaxError,
    SourceLocation,
    Token,
    number_value,
    tokenize,
)

__all__ = ["parse_module"]

#: struct values: scalars, ``&name`` references or (nested) positional lists
StructValue = "int | float | str | tuple | list"


class _Ref:
    """An ``&name`` reference inside a struct literal."""

    def __init__(self, name: str):
        self.name = name


class Parser:
    def __init__(self, tokens: list[Token], file: str):
        self.tokens = tokens
        self.file = file
        self.pos = 0
        # stack of '{' locations for the unterminated-block diagnostic
        self.open_blocks: list[SourceLocation] = []

    # ------------------------------------------------------------------ #
    # Stream helpers
    # ------------------------------------------------------------------ #

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str, token: Token | None = None) -> CslSyntaxError:
        token = token if token is not None else self.peek()
        if token.kind == "eof" and self.open_blocks:
            opened = self.open_blocks[-1]
            return CslSyntaxError(
                f"unexpected end of file: block opened at "
                f"{opened.line}:{opened.col} was never closed",
                token.loc,
                "{",
            )
        shown = token.text if token.kind != "eof" else "<eof>"
        return CslSyntaxError(message, token.loc, shown)

    def expect_punct(self, text: str) -> Token:
        token = self.peek()
        if not token.is_punct(text):
            raise self.error(f"expected '{text}'")
        self.next()
        if text == "{":
            self.open_blocks.append(token.loc)
        elif text == "}" and self.open_blocks:
            self.open_blocks.pop()
        return token

    def expect_ident(self, text: str | None = None) -> Token:
        token = self.peek()
        if token.kind != "ident" or (text is not None and token.text != text):
            expected = f"'{text}'" if text is not None else "an identifier"
            raise self.error(f"expected {expected}")
        return self.next()

    def expect_number(self) -> tuple[Token, int | float]:
        negative = False
        if self.peek().is_punct("-"):
            self.next()
            negative = True
        token = self.peek()
        if token.kind != "number":
            raise self.error("expected a number")
        self.next()
        value = number_value(token)
        return token, (-value if negative else value)

    def expect_int(self, what: str) -> int:
        token, value = self.expect_number()
        if not isinstance(value, int):
            raise self.error(f"{what} must be an integer", token)
        return value

    def expect_string(self) -> str:
        token = self.peek()
        if token.kind != "string":
            raise self.error("expected a string literal")
        self.next()
        return token.text

    def expect_builtin(self, name: str) -> Token:
        token = self.peek()
        if token.kind != "builtin" or token.text != name:
            raise self.error(f"expected '{name}'")
        return self.next()

    def check_known_builtin(self, token: Token) -> None:
        if token.text not in surface.KNOWN_BUILTINS:
            raise CslSyntaxError(
                f"unknown builtin '{token.text}'", token.loc, token.text
            )

    # ------------------------------------------------------------------ #
    # Module
    # ------------------------------------------------------------------ #

    def parse_module(self, name: str) -> ast.Module:
        decls: list[ast.Decl] = []
        kind = "program"
        while self.peek().kind != "eof":
            token = self.peek()
            if token.kind == "ident" and token.text == "layout":
                kind = "layout"
                decls.extend(self.parse_layout_block())
            else:
                decls.append(self.parse_decl())
        return ast.Module(name=name, kind=kind, file=self.file, decls=decls)

    def parse_decl(self) -> ast.Decl:
        token = self.peek()
        if token.kind != "ident":
            raise self.error("expected a declaration")
        keyword = token.text
        if keyword == "param":
            return self.parse_param()
        if keyword == "const":
            return self.parse_import()
        if keyword == "var":
            return self.parse_var()
        if keyword == "fn":
            return self.parse_callable(is_task=False)
        if keyword == "task":
            return self.parse_callable(is_task=True)
        if keyword == "comptime":
            return self.parse_comptime()
        raise self.error("expected a declaration")

    def parse_param(self) -> ast.ParamDecl:
        loc = self.expect_ident("param").loc
        name = self.expect_ident().text
        self.expect_punct(":")
        type_token = self.expect_ident()
        if type_token.text not in surface.SCALAR_TYPE_NAMES:
            raise CslSyntaxError(
                f"unsupported param type '{type_token.text}'",
                type_token.loc,
                type_token.text,
            )
        default: int | float | None = None
        if self.peek().is_punct("="):
            self.next()
            _, default = self.expect_number()
        self.expect_punct(";")
        return ast.ParamDecl(loc, name, type_token.text, default)

    def parse_import(self) -> ast.ImportDecl:
        loc = self.expect_ident("const").loc
        name = self.expect_ident().text
        self.expect_punct("=")
        builtin = self.expect_builtin(surface.BUILTIN_IMPORT_MODULE)
        self.expect_punct("(")
        module = self.expect_string()
        fields: dict[str, int | float | str] = {}
        if self.peek().is_punct(","):
            self.next()
            raw = self.parse_struct()
            if not isinstance(raw, dict):
                raise CslSyntaxError(
                    "import fields must be a named struct", builtin.loc, ".{"
                )
            for key, value in raw.items():
                if isinstance(value, (_Ref, list)):
                    raise CslSyntaxError(
                        f"import field '.{key}' must be a scalar",
                        builtin.loc,
                        key,
                    )
                fields[key] = value
        self.expect_punct(")")
        self.expect_punct(";")
        return ast.ImportDecl(loc, name, module, fields)

    def parse_var(self) -> ast.Decl:
        loc = self.expect_ident("var").loc
        name = self.expect_ident().text
        if self.peek().is_punct("="):
            # var buf = @zeros([n]f32);
            self.next()
            zeros = self.expect_builtin(surface.BUILTIN_ZEROS)
            self.expect_punct("(")
            self.expect_punct("[")
            size_token = self.peek()
            size = self.expect_int("buffer size")
            if size < 1:
                raise CslSyntaxError(
                    "buffer size must be positive", size_token.loc, size_token.text
                )
            self.expect_punct("]")
            element = self.expect_ident()
            if element.text != "f32":
                raise CslSyntaxError(
                    f"unsupported buffer element type '{element.text}'",
                    element.loc,
                    element.text,
                )
            self.expect_punct(")")
            self.expect_punct(";")
            del zeros
            return ast.ZerosDecl(loc, name, size)
        self.expect_punct(":")
        type_token = self.expect_ident()
        if type_token.text not in surface.SCALAR_TYPE_NAMES:
            raise CslSyntaxError(
                f"unsupported variable type '{type_token.text}'",
                type_token.loc,
                type_token.text,
            )
        self.expect_punct("=")
        _, init = self.expect_number()
        self.expect_punct(";")
        return ast.VarDecl(loc, name, type_token.text, init)

    def parse_callable(self, is_task: bool) -> ast.CallableDecl:
        loc = self.next().loc  # 'fn' | 'task'
        name = self.expect_ident().text
        self.expect_punct("(")
        params: list[tuple[str, str]] = []
        while not self.peek().is_punct(")"):
            if params:
                self.expect_punct(",")
            arg_name = self.expect_ident().text
            self.expect_punct(":")
            arg_type = self.expect_ident().text
            params.append((arg_name, arg_type))
        self.expect_punct(")")
        self.expect_ident("void")
        self.expect_punct("{")
        body = self.parse_statements()
        self.expect_punct("}")
        return ast.CallableDecl(loc, name, is_task, params, body)

    def parse_comptime(self) -> ast.Decl:
        loc = self.expect_ident("comptime").loc
        self.expect_punct("{")
        token = self.peek()
        if token.kind != "builtin":
            raise self.error("expected a comptime builtin call")
        self.check_known_builtin(token)
        if token.text == surface.BUILTIN_BIND_LOCAL_TASK:
            self.next()
            self.expect_punct("(")
            self.expect_builtin(surface.BUILTIN_GET_LOCAL_TASK_ID)
            self.expect_punct("(")
            task_id = self.expect_int("task id")
            self.expect_punct(")")
            self.expect_punct(",")
            task_name = self.expect_ident().text
            self.expect_punct(")")
            self.expect_punct(";")
            decl: ast.Decl = ast.BindDecl(loc, task_id, task_name)
        elif token.text == surface.BUILTIN_EXPORT_SYMBOL:
            self.next()
            self.expect_punct("(")
            sym = self.expect_ident().text
            self.expect_punct(",")
            self.expect_string()
            self.expect_punct(")")
            self.expect_punct(";")
            decl = ast.ExportDecl(loc, sym)
        elif token.text == surface.BUILTIN_RPC:
            self.next()
            self.expect_punct("(")
            self.expect_builtin(surface.BUILTIN_GET_DATA_TASK_ID)
            self.expect_punct("(")
            import_name = self.expect_ident().text
            self.expect_punct(".")
            self.expect_ident()  # the launch color member, e.g. LAUNCH
            self.expect_punct(")")
            self.expect_punct(")")
            self.expect_punct(";")
            decl = ast.RpcDecl(loc, import_name)
        else:
            raise CslSyntaxError(
                f"unsupported comptime builtin '{token.text}'",
                token.loc,
                token.text,
            )
        self.expect_punct("}")
        return decl

    # ------------------------------------------------------------------ #
    # Layout metaprogram
    # ------------------------------------------------------------------ #

    def parse_layout_block(self) -> list[ast.Decl]:
        self.expect_ident("layout")
        self.expect_punct("{")
        decls = self.parse_layout_statements()
        self.expect_punct("}")
        return decls

    def parse_layout_statements(self) -> list[ast.Decl]:
        decls: list[ast.Decl] = []
        while not self.peek().is_punct("}"):
            token = self.peek()
            if token.kind == "builtin":
                self.check_known_builtin(token)
                if token.text == surface.BUILTIN_SET_RECTANGLE:
                    self.next()
                    self.expect_punct("(")
                    width = self.expect_int("rectangle width")
                    self.expect_punct(",")
                    height = self.expect_int("rectangle height")
                    self.expect_punct(")")
                    self.expect_punct(";")
                    decls.append(ast.SetRectangleDecl(token.loc, width, height))
                    continue
                if token.text == surface.BUILTIN_SET_TILE_CODE:
                    self.next()
                    self.expect_punct("(")
                    self._skip_tile_coordinate()
                    self.expect_punct(",")
                    self._skip_tile_coordinate()
                    self.expect_punct(",")
                    program_file = self.expect_string()
                    params: dict[str, int | float | str] = {}
                    if self.peek().is_punct(","):
                        self.next()
                        raw = self.parse_struct()
                        if not isinstance(raw, dict):
                            raise CslSyntaxError(
                                "tile params must be a named struct",
                                token.loc,
                                ".{",
                            )
                        for key, value in raw.items():
                            if isinstance(value, (_Ref, list)):
                                raise CslSyntaxError(
                                    f"tile param '.{key}' must be a scalar",
                                    token.loc,
                                    key,
                                )
                            params[key] = value
                    self.expect_punct(")")
                    self.expect_punct(";")
                    decls.append(ast.SetTileCodeDecl(token.loc, program_file, params))
                    continue
                raise CslSyntaxError(
                    f"unsupported layout builtin '{token.text}'",
                    token.loc,
                    token.text,
                )
            if token.kind == "ident" and token.text == "var":
                # loop counter scaffolding: var x : u16 = 0;
                self.next()
                self.expect_ident()
                self.expect_punct(":")
                self.expect_ident()
                self.expect_punct("=")
                self.expect_number()
                self.expect_punct(";")
                continue
            if token.kind == "ident" and token.text == "while":
                # while (x < W) : (x += 1) { ... }
                self.next()
                self.expect_punct("(")
                self.expect_ident()
                self.expect_punct("<")
                self._skip_tile_coordinate()
                self.expect_punct(")")
                self.expect_punct(":")
                self.expect_punct("(")
                self.expect_ident()
                self.expect_punct("+=")
                self.expect_number()
                self.expect_punct(")")
                self.expect_punct("{")
                decls.extend(self.parse_layout_statements())
                self.expect_punct("}")
                continue
            raise self.error("expected a layout statement")
        return decls

    def _skip_tile_coordinate(self) -> None:
        """A tile coordinate: a loop counter name or a literal."""
        token = self.peek()
        if token.kind == "ident":
            self.next()
        else:
            self.expect_number()

    # ------------------------------------------------------------------ #
    # Struct literals
    # ------------------------------------------------------------------ #

    def parse_struct(self):
        """``.{ ... }`` — returns a dict (named fields) or a list (positional)."""
        self.expect_punct(".")
        self.expect_punct("{")
        if self.peek().is_punct("}"):
            self.expect_punct("}")
            return {}
        # named struct iff the first element is `.name =`
        if self.peek().is_punct(".") and self.peek(1).kind == "ident":
            fields: dict[str, object] = {}
            while True:
                self.expect_punct(".")
                key_token = self.expect_ident()
                if key_token.text in fields:
                    raise CslSyntaxError(
                        f"duplicate struct field '.{key_token.text}'",
                        key_token.loc,
                        key_token.text,
                    )
                self.expect_punct("=")
                fields[key_token.text] = self.parse_struct_value()
                if self.peek().is_punct(","):
                    self.next()
                    continue
                break
            self.expect_punct("}")
            return fields
        values: list[object] = []
        while True:
            values.append(self.parse_struct_value())
            if self.peek().is_punct(","):
                self.next()
                continue
            break
        self.expect_punct("}")
        return values

    def parse_struct_value(self):
        token = self.peek()
        if token.kind == "string":
            return self.expect_string()
        if token.is_punct("&"):
            self.next()
            return _Ref(self.expect_ident().text)
        if token.is_punct(".") and self.peek(1).is_punct("{"):
            return self.parse_struct()
        if token.kind == "number" or token.is_punct("-"):
            _, value = self.expect_number()
            return value
        if token.kind == "ident" and token.text == "null":
            self.next()
            return None
        raise self.error("expected a struct field value")

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #

    def parse_statements(self) -> list[ast.Stmt]:
        statements: list[ast.Stmt] = []
        while not self.peek().is_punct("}"):
            if self.peek().kind == "eof":
                raise self.error("expected a statement")
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "builtin":
            return self.parse_builtin_statement()
        if token.kind != "ident":
            raise self.error("expected a statement")
        keyword = token.text
        if keyword == "const":
            loc = self.next().loc
            name = self.expect_ident().text
            self.expect_punct("=")
            expr = self.parse_expression()
            self.expect_punct(";")
            return ast.ConstStmt(loc, name, expr)
        if keyword == "if":
            return self.parse_if()
        if keyword == "return":
            loc = self.next().loc
            self.expect_punct(";")
            return ast.ReturnStmt(loc)
        # name() | receiver.member(...) | name = operand;
        name_token = self.next()
        if self.peek().is_punct("("):
            self.next()
            self.expect_punct(")")
            self.expect_punct(";")
            return ast.CallStmt(name_token.loc, name_token.text)
        if self.peek().is_punct("."):
            self.next()
            member = self.expect_ident()
            return self.parse_member_call(name_token, member)
        if self.peek().is_punct("="):
            self.next()
            expr = self.parse_operand()
            self.expect_punct(";")
            return ast.AssignStmt(name_token.loc, name_token.text, expr)
        raise self.error("expected '(', '.' or '=' after identifier", name_token)

    def parse_builtin_statement(self) -> ast.Stmt:
        token = self.peek()
        self.check_known_builtin(token)
        if token.text == surface.BUILTIN_ACTIVATE:
            loc = self.next().loc
            self.expect_punct("(")
            self.expect_builtin(surface.BUILTIN_GET_LOCAL_TASK_ID)
            self.expect_punct("(")
            task_id = self.expect_int("task id")
            self.expect_punct(")")
            self.expect_punct(")")
            self.expect_punct(";")
            return ast.ActivateStmt(loc, task_id)
        if token.text in surface.DSD_BUILTINS:
            loc = self.next().loc
            self.expect_punct("(")
            args: list[ast.Expr] = []
            while not self.peek().is_punct(")"):
                if args:
                    self.expect_punct(",")
                args.append(self.parse_operand())
            self.expect_punct(")")
            self.expect_punct(";")
            arity = surface.DSD_BUILTIN_ARITY[token.text]
            if len(args) != arity:
                raise CslSyntaxError(
                    f"{token.text} expects {arity} arguments, got {len(args)}",
                    token.loc,
                    token.text,
                )
            return ast.BuiltinCallStmt(loc, token.text, args)
        raise CslSyntaxError(
            f"builtin '{token.text}' is not valid as a statement",
            token.loc,
            token.text,
        )

    def parse_member_call(self, receiver: Token, member: Token) -> ast.Stmt:
        if member.text == surface.UNBLOCK_MEMBER:
            self.expect_punct("(")
            self.expect_punct(")")
            self.expect_punct(";")
            return ast.UnblockStmt(receiver.loc, receiver.text)
        if member.text == surface.COMMUNICATE_MEMBER:
            return self.parse_communicate(receiver)
        raise CslSyntaxError(
            f"unsupported member call '.{member.text}'", member.loc, member.text
        )

    def parse_communicate(self, receiver: Token) -> ast.CommsCallStmt:
        self.expect_punct("(")
        self.expect_punct("&")
        buffer = self.expect_ident().text
        self.expect_punct(",")
        struct_token = self.peek()
        raw = self.parse_struct()
        self.expect_punct(")")
        self.expect_punct(";")
        if not isinstance(raw, dict):
            raise CslSyntaxError(
                "communicate expects a named struct", struct_token.loc, ".{"
            )
        known = set(surface.COMMS_CALL_REQUIRED_FIELDS) | set(
            surface.COMMS_CALL_OPTIONAL_FIELDS
        )
        for key in raw:
            if key not in known:
                raise CslSyntaxError(
                    f"unknown communicate field '.{key}'", struct_token.loc, key
                )
        for key in surface.COMMS_CALL_REQUIRED_FIELDS:
            if key not in raw:
                raise CslSyntaxError(
                    f"communicate call missing field '.{key}'",
                    struct_token.loc,
                    ".{",
                )

        def int_field(key: str) -> int:
            value = raw[key]
            if not isinstance(value, int):
                raise CslSyntaxError(
                    f"communicate field '.{key}' must be an integer",
                    struct_token.loc,
                    key,
                )
            return value

        def ref_field(key: str) -> str:
            value = raw[key]
            if not isinstance(value, _Ref):
                raise CslSyntaxError(
                    f"communicate field '.{key}' must be a '&name' reference",
                    struct_token.loc,
                    key,
                )
            return value.name

        directions_raw = raw["directions"]
        if not isinstance(directions_raw, list) or not directions_raw:
            raise CslSyntaxError(
                "communicate field '.directions' must be a non-empty list",
                struct_token.loc,
                "directions",
            )
        directions: list[tuple[int, int]] = []
        for entry in directions_raw:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not all(isinstance(c, int) for c in entry)
            ):
                raise CslSyntaxError(
                    "each communicate direction must be a pair of integers",
                    struct_token.loc,
                    "directions",
                )
            directions.append((entry[0], entry[1]))

        coefficients: list[float] | None = None
        if "coefficients" in raw:
            coeffs_raw = raw["coefficients"]
            if not isinstance(coeffs_raw, list) or not all(
                isinstance(c, (int, float)) for c in coeffs_raw
            ):
                raise CslSyntaxError(
                    "communicate field '.coefficients' must be a list of numbers",
                    struct_token.loc,
                    "coefficients",
                )
            coefficients = [float(c) for c in coeffs_raw]

        recv: str | None = None
        if "recv" in raw and raw["recv"] is not None:
            recv = ref_field("recv")

        return ast.CommsCallStmt(
            receiver.loc,
            buffer=buffer,
            num_chunks=int_field("num_chunks"),
            chunk_size=int_field("chunk_size"),
            src_offset=int_field("src_offset"),
            src_len=int_field("src_len"),
            pattern=int_field("pattern"),
            recv_buffer=ref_field("recv_buffer"),
            directions=directions,
            coefficients=coefficients,
            recv=recv,
            done=ref_field("done"),
        )

    def parse_if(self) -> ast.IfStmt:
        loc = self.expect_ident("if").loc
        self.expect_punct("(")
        condition = self.parse_operand()
        self.expect_punct(")")
        self.expect_punct("{")
        then_body = self.parse_statements()
        self.expect_punct("}")
        else_body: list[ast.Stmt] = []
        if self.peek().kind == "ident" and self.peek().text == "else":
            self.next()
            self.expect_punct("{")
            else_body = self.parse_statements()
            self.expect_punct("}")
        return ast.IfStmt(loc, condition, then_body, else_body)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #

    def parse_expression(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "builtin":
            self.check_known_builtin(token)
            if token.text == surface.BUILTIN_GET_DSD:
                return self.parse_get_dsd()
            if token.text == surface.BUILTIN_INCREMENT_DSD_OFFSET:
                return self.parse_increment_dsd()
            raise CslSyntaxError(
                f"builtin '{token.text}' is not valid in an expression",
                token.loc,
                token.text,
            )
        lhs = self.parse_operand()
        op_token = self.peek()
        for symbol in ("<=", ">=", "==", "!=", "<", ">", "+", "-", "*", "/"):
            if op_token.is_punct(symbol):
                self.next()
                rhs = self.parse_operand()
                return ast.BinaryExpr(op_token.loc, symbol, lhs, rhs)
        return lhs

    def parse_operand(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "ident":
            self.next()
            return ast.NameRef(token.loc, token.text)
        if token.kind == "number" or token.is_punct("-"):
            _, value = self.expect_number()
            return ast.NumberLit(token.loc, value)
        raise self.error("expected an operand (name or number)")

    def parse_get_dsd(self) -> ast.GetDsdExpr:
        loc = self.expect_builtin(surface.BUILTIN_GET_DSD).loc
        self.expect_punct("(")
        kind = self.expect_ident()
        if kind.text != surface.DSD_KIND_MEM1D:
            raise CslSyntaxError(
                f"unsupported DSD kind '{kind.text}': only "
                f"{surface.DSD_KIND_MEM1D} is supported",
                kind.loc,
                kind.text,
            )
        self.expect_punct(",")
        self.expect_punct(".")
        self.expect_punct("{")
        self.expect_punct(".")
        self.expect_ident("tensor_access")
        self.expect_punct("=")
        self.expect_punct("|")
        index_var = self.expect_ident().text
        self.expect_punct("|")
        self.expect_punct("{")
        length_token = self.peek()
        length = self.expect_int("DSD length")
        if length < 1:
            raise CslSyntaxError(
                "DSD length must be a positive integer",
                length_token.loc,
                length_token.text,
            )
        self.expect_punct("}")
        self.expect_punct("->")
        buffer = self.expect_ident().text
        self.expect_punct("[")
        offset, stride = self.parse_tensor_access(index_var)
        self.expect_punct("]")
        self.expect_punct("}")
        self.expect_punct(")")
        return ast.GetDsdExpr(loc, buffer, length, offset, stride)

    def parse_tensor_access(self, index_var: str) -> tuple[int, int]:
        """``i`` | ``off + i`` | ``i * s`` | ``off + i * s``."""
        offset = 0
        token = self.peek()
        if token.kind == "number" or token.is_punct("-"):
            _, value = self.expect_number()
            if not isinstance(value, int):
                raise CslSyntaxError(
                    "DSD offset must be an integer", token.loc, token.text
                )
            offset = value
            self.expect_punct("+")
            token = self.peek()
        if token.kind != "ident" or token.text != index_var:
            raise self.error(
                f"unsupported tensor_access pattern: expected index '{index_var}'"
            )
        self.next()
        stride = 1
        if self.peek().is_punct("*"):
            self.next()
            stride_token = self.peek()
            stride = self.expect_int("DSD stride")
            if stride < 1:
                raise CslSyntaxError(
                    "DSD stride must be a positive integer",
                    stride_token.loc,
                    stride_token.text,
                )
        return offset, stride

    def parse_increment_dsd(self) -> ast.IncrementDsdExpr:
        loc = self.expect_builtin(surface.BUILTIN_INCREMENT_DSD_OFFSET).loc
        self.expect_punct("(")
        base = self.expect_ident().text
        self.expect_punct(",")
        offset_token = self.peek()
        if offset_token.kind == "ident":
            # runtime-only shift prints as `0 + name`; accept a bare name too
            self.next()
            offset, runtime = 0, offset_token.text
        else:
            offset = self.expect_int("DSD offset")
            runtime = None
            if self.peek().is_punct("+"):
                self.next()
                runtime = self.expect_ident().text
        self.expect_punct(",")
        element = self.expect_ident()
        if element.text != "f32":
            raise CslSyntaxError(
                f"unsupported DSD element type '{element.text}'",
                element.loc,
                element.text,
            )
        self.expect_punct(")")
        return ast.IncrementDsdExpr(loc, base, offset, runtime)


def parse_module(text: str, file: str = "<csl>", name: str | None = None) -> ast.Module:
    """Parse one CSL source file into an AST module.

    ``name`` defaults to the file stem (mirroring how
    ``print_csl_sources`` derives file names from module names).
    """
    if name is None:
        stem = file.rsplit("/", 1)[-1]
        name = stem[:-4] if stem.endswith(".csl") else stem
    tokens = tokenize(text, file)
    return Parser(tokens, file).parse_module(name)
