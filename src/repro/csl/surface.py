"""The shared CSL surface description.

Single source of truth for the concrete CSL syntax this repo speaks: op
mnemonics, builtin names, comparison/arithmetic spellings, the comms-library
import conventions and the module attributes that carry layout metadata.

Both directions of the toolchain consume these tables —
:mod:`repro.backend.csl_printer` (csl-ir → CSL text) and
:mod:`repro.csl.parser` / :mod:`repro.csl.lower` (CSL text → csl-ir) — so the
printer and the parser cannot drift apart: renaming a builtin or a struct
field here changes what is printed *and* what is accepted, and the print→parse
fixpoint tests in ``tests/csl`` pin the agreement.
"""

from __future__ import annotations

from repro.dialects import arith, csl
from repro.ir.attributes import (
    Attribute,
    FloatAttr,
    IntAttr,
    StringAttr,
)

# --------------------------------------------------------------------------- #
# Imported runtime libraries
# --------------------------------------------------------------------------- #

#: the runtime communications library (paper Section 5.6)
COMMS_MODULE = "stencil_comms.csl"
#: receiver name the printer uses for the comms struct in member calls
COMMS_RECEIVER = "stencil_comms"
#: member called to schedule the chunked halo exchange
COMMUNICATE_MEMBER = "communicate"

#: the host memcpy library and its layout-side parameter module
MEMCPY_MODULE = "<memcpy/memcpy>"
MEMCPY_PARAMS_MODULE = "<memcpy/get_params>"
ROUTES_MODULE = "routes.csl"

#: receiver name for the memcpy struct in member calls
SYS_RECEIVER = "sys_mod"
#: member called to return control to the host
UNBLOCK_MEMBER = "unblock_cmd_stream"

#: fields of the ``@import_module("stencil_comms.csl", .{ ... })`` struct
#: (see transforms/lower_csl_wrapper.py, which stamps them)
COMMS_IMPORT_PATTERN = "pattern"
COMMS_IMPORT_CHUNK_SIZE = "chunkSize"
COMMS_IMPORT_BOUNDARY = "boundary"
COMMS_IMPORT_BOUNDARY_VALUE = "boundaryValue"

#: struct fields of the printed ``stencil_comms.communicate(&dsd, .{ ... })``
#: call.  The printer emits every field the exchange op carries so the text
#: is a lossless encoding of the csl-ir op; the parser requires the same set.
COMMS_CALL_REQUIRED_FIELDS = (
    "num_chunks",
    "chunk_size",
    "src_offset",
    "src_len",
    "pattern",
    "recv_buffer",
    "directions",
    "done",
)
COMMS_CALL_OPTIONAL_FIELDS = ("recv", "coefficients")

# --------------------------------------------------------------------------- #
# Module attributes carrying layout metadata
# --------------------------------------------------------------------------- #

#: program-module attributes stamped by the pipeline wrapper lowering; the
#: parser reconstructs them from the layout module + comms import fields.
ATTR_WIDTH = "width"
ATTR_HEIGHT = "height"
ATTR_TARGET = "target"
ATTR_BOUNDARY = "boundary"
ATTR_BOUNDARY_VALUE = "boundary_value"
ATTR_ENTRY = "entry"

#: ``@set_tile_code`` param key that names the hardware generation
TILE_PARAM_TARGET = "target"

# --------------------------------------------------------------------------- #
# Builtins
# --------------------------------------------------------------------------- #

#: DSD compute builtins, derived from the dialect op classes so the mnemonic
#: lives in exactly one place (``FaddsOp.builtin_name`` etc.)
DSD_BUILTINS: dict[str, type] = {op.builtin_name: op for op in csl.DSD_BUILTIN_OPS}

#: operand arity of each DSD builtin (dest + sources)
DSD_BUILTIN_ARITY: dict[str, int] = {
    csl.FaddsOp.builtin_name: 3,
    csl.FsubsOp.builtin_name: 3,
    csl.FmulsOp.builtin_name: 3,
    csl.FmacsOp.builtin_name: 4,
    csl.FmovsOp.builtin_name: 2,
}

BUILTIN_ACTIVATE = "@activate"
BUILTIN_GET_LOCAL_TASK_ID = "@get_local_task_id"
BUILTIN_GET_DATA_TASK_ID = "@get_data_task_id"
BUILTIN_BIND_LOCAL_TASK = "@bind_local_task"
BUILTIN_EXPORT_SYMBOL = "@export_symbol"
BUILTIN_RPC = "@rpc"
BUILTIN_GET_DSD = "@get_dsd"
BUILTIN_INCREMENT_DSD_OFFSET = "@increment_dsd_offset"
BUILTIN_ZEROS = "@zeros"
BUILTIN_IMPORT_MODULE = "@import_module"
BUILTIN_SET_RECTANGLE = "@set_rectangle"
BUILTIN_SET_TILE_CODE = "@set_tile_code"

#: every builtin the grammar subset accepts; anything else is a diagnostic
KNOWN_BUILTINS = frozenset(DSD_BUILTINS) | {
    BUILTIN_ACTIVATE,
    BUILTIN_GET_LOCAL_TASK_ID,
    BUILTIN_GET_DATA_TASK_ID,
    BUILTIN_BIND_LOCAL_TASK,
    BUILTIN_EXPORT_SYMBOL,
    BUILTIN_RPC,
    BUILTIN_GET_DSD,
    BUILTIN_INCREMENT_DSD_OFFSET,
    BUILTIN_ZEROS,
    BUILTIN_IMPORT_MODULE,
    BUILTIN_SET_RECTANGLE,
    BUILTIN_SET_TILE_CODE,
}

#: the only DSD kind the grammar subset supports
DSD_KIND_MEM1D = csl.DsdKind.MEM1D

# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #

#: csl-ir binary op class → printed symbol (integer and float flavours share
#: the CSL spelling; the parser re-emits the integer flavour, which the
#: interpreter and canonical form treat identically)
BINARY_OP_SYMBOLS: dict[type, str] = {
    arith.AddiOp: "+",
    arith.AddfOp: "+",
    arith.SubiOp: "-",
    arith.SubfOp: "-",
    arith.MuliOp: "*",
    arith.MulfOp: "*",
    arith.DivfOp: "/",
}

#: parse direction: symbol → op class to emit
BINARY_SYMBOL_OPS: dict[str, type] = {
    "+": arith.AddiOp,
    "-": arith.SubiOp,
    "*": arith.MuliOp,
    "/": arith.DivfOp,
}

#: arith.cmpi predicate → printed symbol, and back
CMP_PREDICATE_SYMBOLS: dict[str, str] = {
    "slt": "<",
    "sle": "<=",
    "sgt": ">",
    "sge": ">=",
    "eq": "==",
    "ne": "!=",
}
CMP_SYMBOL_PREDICATES: dict[str, str] = {
    symbol: predicate for predicate, symbol in CMP_PREDICATE_SYMBOLS.items()
}

#: scalar type annotations the grammar subset accepts
SCALAR_TYPE_NAMES = ("i16", "i32", "u16", "u32", "f32")

# --------------------------------------------------------------------------- #
# Attribute ↔ text helpers
# --------------------------------------------------------------------------- #


def attr_text(attribute: Attribute) -> str:
    """Print one attribute as a CSL struct-field value."""
    if isinstance(attribute, IntAttr):
        return str(attribute.value)
    if isinstance(attribute, FloatAttr):
        return repr(attribute.value)
    if isinstance(attribute, StringAttr):
        return f'"{attribute.data}"'
    return str(attribute)


def value_attr(value: int | float | str) -> Attribute:
    """The inverse of :func:`attr_text` for parsed struct-field values."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("CSL struct fields cannot be booleans")
    if isinstance(value, int):
        return IntAttr(value)
    if isinstance(value, float):
        return FloatAttr(value)
    return StringAttr(value)
