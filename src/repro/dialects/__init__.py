"""Dialect definitions.

Upstream (MLIR) dialects reimplemented as needed by the pipeline:
``builtin``, ``arith``, ``func``, ``scf``, ``tensor``, ``memref``, ``linalg``.

Paper dialects: ``stencil``, ``dmp``, ``varith``, ``csl_stencil``,
``csl_wrapper`` and ``csl`` (the csl-ir dialect of Section 4.3).
"""
