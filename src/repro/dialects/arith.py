"""The arith dialect: scalar / elementwise arithmetic with value semantics.

Following the paper, arith operations are rank-polymorphic: after the
tensorize-z pass the very same ``arith.addf`` operates over tensors of values
rather than scalars (Section 5.1).
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import Attribute, DenseArrayAttr, FloatAttr, IntAttr
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Operation
from repro.ir.traits import Pure
from repro.ir.types import IndexType, IntegerType, TensorType, _FloatType
from repro.ir.value import SSAValue


class ConstantOp(Operation):
    """A compile-time constant scalar or dense tensor splat."""

    name = "arith.constant"
    traits = (Pure,)

    def __init__(self, value: int | float, result_type: Attribute):
        if isinstance(result_type, (IntegerType, IndexType)):
            attr: Attribute = IntAttr(int(value))
        else:
            attr = FloatAttr(float(value))
        super().__init__(result_types=[result_type], attributes={"value": attr})

    @property
    def value(self) -> int | float:
        attr = self.attributes["value"]
        assert isinstance(attr, (IntAttr, FloatAttr))
        return attr.value

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if "value" not in self.attributes:
            raise VerifyException("arith.constant requires a 'value' attribute")


class _BinaryOp(Operation):
    """Common base for binary elementwise operations."""

    traits = (Pure,)

    def __init__(self, lhs: SSAValue, rhs: SSAValue, result_type: Attribute | None = None):
        if result_type is None:
            result_type = lhs.type
        super().__init__(operands=[lhs, rhs], result_types=[result_type])

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if len(self.operands) != 2:
            raise VerifyException(f"'{self.name}' expects exactly two operands")


class AddfOp(_BinaryOp):
    name = "arith.addf"
    python_op = "add"


class SubfOp(_BinaryOp):
    name = "arith.subf"
    python_op = "sub"


class MulfOp(_BinaryOp):
    name = "arith.mulf"
    python_op = "mul"


class DivfOp(_BinaryOp):
    name = "arith.divf"
    python_op = "div"


class AddiOp(_BinaryOp):
    name = "arith.addi"
    python_op = "add"


class SubiOp(_BinaryOp):
    name = "arith.subi"
    python_op = "sub"


class MuliOp(_BinaryOp):
    name = "arith.muli"
    python_op = "mul"


class CmpiOp(Operation):
    """Integer comparison producing an i1."""

    name = "arith.cmpi"
    traits = (Pure,)

    PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue):
        from repro.ir.types import i1

        if predicate not in self.PREDICATES:
            raise VerifyException(f"unknown cmpi predicate '{predicate}'")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": IntAttr(self.PREDICATES.index(predicate))},
        )

    @property
    def predicate(self) -> str:
        attr = self.attributes["predicate"]
        assert isinstance(attr, IntAttr)
        return self.PREDICATES[attr.value]

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]

    @property
    def result(self) -> SSAValue:
        return self.results[0]


FLOAT_BINARY_OPS = (AddfOp, SubfOp, MulfOp, DivfOp)
INT_BINARY_OPS = (AddiOp, SubiOp, MuliOp)


def is_float_arith(op: Operation) -> bool:
    return isinstance(op, FLOAT_BINARY_OPS)
