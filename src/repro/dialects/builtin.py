"""The builtin dialect: module container and materialisation casts."""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import Attribute, StringAttr
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Block, Operation, Region
from repro.ir.value import SSAValue


class ModuleOp(Operation):
    """Top-level container for a compilation unit."""

    name = "builtin.module"

    def __init__(self, ops: Sequence[Operation] = (), attributes: dict | None = None):
        super().__init__(
            regions=[Region([Block(ops=ops)])],
            attributes=attributes,
        )

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def ops(self) -> list[Operation]:
        return self.body.ops

    def verify_(self) -> None:
        if len(self.regions) != 1:
            raise VerifyException("builtin.module must have exactly one region")


class UnrealizedConversionCastOp(Operation):
    """Temporary cast bridging two type systems during progressive lowering."""

    name = "builtin.unrealized_conversion_cast"

    def __init__(self, inputs: Sequence[SSAValue], result_types: Sequence[Attribute]):
        super().__init__(operands=inputs, result_types=result_types)

    @staticmethod
    def cast_one(value: SSAValue, result_type: Attribute) -> "UnrealizedConversionCastOp":
        return UnrealizedConversionCastOp([value], [result_type])

    @property
    def input(self) -> SSAValue:
        return self.operands[0]

    @property
    def output(self) -> SSAValue:
        return self.results[0]
