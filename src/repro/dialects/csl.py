"""The csl-ir dialect (paper Section 4.3): a re-implementation of a large
subset of the Cerebras Software Language.

Constructs present in CSL are represented one-to-one so that the backend's
printer (:mod:`repro.backend.csl_printer`) can emit CSL source directly:

* module kinds (*program* vs *layout*), imports and comptime parameters;
* functions, the three task kinds (``data``/``control``/``local``) and task
  activation;
* buffers, Data Structure Descriptors (DSDs) and the DSD arithmetic builtins
  (``@fadds``, ``@fmuls``, ``@fmacs``, ``@fmovs`` ...);
* layout metaprogram operations (``@set_rectangle``, ``@set_tile_code``);
* the chunked stencil-exchange entry point of the runtime communications
  library (Section 5.6).
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
)
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Block, Operation, Region
from repro.ir.traits import IsTerminator
from repro.ir.types import MemRefType, TypeAttribute
from repro.ir.value import SSAValue


# --------------------------------------------------------------------------- #
# Types
# --------------------------------------------------------------------------- #


class ComptimeStructType(TypeAttribute):
    """The comptime struct returned by ``@import_module``."""

    name = "csl.comptime_struct"

    def __init__(self, module_name: str = ""):
        self.module_name = str(module_name)

    def _key(self) -> tuple:
        return (self.module_name,)

    def __str__(self) -> str:
        return f"!csl.comptime_struct<{self.module_name}>"


class DsdKind:
    """The DSD kinds exposed by CSL."""

    MEM1D = "mem1d_dsd"
    MEM4D = "mem4d_dsd"
    FABIN = "fabin_dsd"
    FABOUT = "fabout_dsd"

    ALL = (MEM1D, MEM4D, FABIN, FABOUT)


class DsdType(TypeAttribute):
    """A Data Structure Descriptor: a hardware-supported affine iterator."""

    name = "csl.dsd"

    def __init__(self, kind: str = DsdKind.MEM1D):
        if kind not in DsdKind.ALL:
            raise VerifyException(f"unknown DSD kind '{kind}'")
        self.kind = kind

    def _key(self) -> tuple:
        return (self.kind,)

    def __str__(self) -> str:
        return f"!csl.{self.kind}"


class ColorType(TypeAttribute):
    """A routing color (virtual channel)."""

    name = "csl.color"

    def _key(self) -> tuple:
        return ()

    def __str__(self) -> str:
        return "!csl.color"


class PtrType(TypeAttribute):
    """A pointer to a buffer or function (used for callback arguments)."""

    name = "csl.ptr"

    def __init__(self, pointee: Attribute):
        self.pointee = pointee

    def _key(self) -> tuple:
        return (self.pointee,)

    def __str__(self) -> str:
        return f"!csl.ptr<{self.pointee}>"


# --------------------------------------------------------------------------- #
# Module structure
# --------------------------------------------------------------------------- #


class ModuleKind:
    PROGRAM = "program"
    LAYOUT = "layout"


class CslModuleOp(Operation):
    """A CSL source module, either a PE program or the layout metaprogram."""

    name = "csl.module"

    def __init__(self, kind: str, sym_name: str, ops: Sequence[Operation] = ()):
        if kind not in (ModuleKind.PROGRAM, ModuleKind.LAYOUT):
            raise VerifyException(f"unknown csl module kind '{kind}'")
        super().__init__(
            regions=[Region([Block(ops=ops)])],
            attributes={"kind": StringAttr(kind), "sym_name": StringAttr(sym_name)},
        )

    @property
    def kind(self) -> str:
        attr = self.attributes["kind"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def ops(self) -> list[Operation]:
        return self.body.ops


class ImportModuleOp(Operation):
    """``@import_module("<name>", .{ ... })``."""

    name = "csl.import_module"

    def __init__(self, module: str, fields: dict[str, Attribute] | None = None,
                 field_operands: Sequence[SSAValue] = ()):
        super().__init__(
            operands=field_operands,
            result_types=[ComptimeStructType(module)],
            attributes={
                "module": StringAttr(module),
                "fields": DictionaryAttr(fields or {}),
            },
        )

    @property
    def module(self) -> str:
        attr = self.attributes["module"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def fields(self) -> DictionaryAttr:
        attr = self.attributes["fields"]
        assert isinstance(attr, DictionaryAttr)
        return attr

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class ParamOp(Operation):
    """``param name : type`` — a compile-time parameter of the module."""

    name = "csl.param"

    def __init__(self, param_name: str, result_type: Attribute,
                 default: int | float | None = None):
        attributes: dict[str, Attribute] = {"param_name": StringAttr(param_name)}
        if default is not None:
            attributes["default"] = (
                IntAttr(default) if isinstance(default, int) else FloatAttr(default)
            )
        super().__init__(result_types=[result_type], attributes=attributes)

    @property
    def param_name(self) -> str:
        attr = self.attributes["param_name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def default(self) -> int | float | None:
        attr = self.attributes.get("default")
        if attr is None:
            return None
        assert isinstance(attr, (IntAttr, FloatAttr))
        return attr.value

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class ConstantOp(Operation):
    """``const name = value`` at module scope."""

    name = "csl.constant"

    def __init__(self, value: int | float, result_type: Attribute):
        attr: Attribute = (
            IntAttr(int(value)) if isinstance(value, int) else FloatAttr(float(value))
        )
        super().__init__(result_types=[result_type], attributes={"value": attr})

    @property
    def value(self) -> int | float:
        attr = self.attributes["value"]
        assert isinstance(attr, (IntAttr, FloatAttr))
        return attr.value

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class MemberCallOp(Operation):
    """Call a function member of an imported comptime struct."""

    name = "csl.member_call"

    def __init__(
        self,
        struct: SSAValue,
        field: str,
        arguments: Sequence[SSAValue] = (),
        result_types: Sequence[Attribute] = (),
    ):
        super().__init__(
            operands=[struct, *arguments],
            result_types=list(result_types),
            attributes={"field": StringAttr(field)},
        )

    @property
    def struct(self) -> SSAValue:
        return self.operands[0]

    @property
    def arguments(self) -> tuple[SSAValue, ...]:
        return self.operands[1:]

    @property
    def field(self) -> str:
        attr = self.attributes["field"]
        assert isinstance(attr, StringAttr)
        return attr.data


class MemberAccessOp(Operation):
    """Access a data member of an imported comptime struct."""

    name = "csl.member_access"

    def __init__(self, struct: SSAValue, field: str, result_type: Attribute):
        super().__init__(
            operands=[struct],
            result_types=[result_type],
            attributes={"field": StringAttr(field)},
        )

    @property
    def struct(self) -> SSAValue:
        return self.operands[0]

    @property
    def field(self) -> str:
        attr = self.attributes["field"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def result(self) -> SSAValue:
        return self.results[0]


# --------------------------------------------------------------------------- #
# Functions and tasks
# --------------------------------------------------------------------------- #


class FuncOp(Operation):
    """``fn name(args) ret_type { ... }``."""

    name = "csl.func"

    def __init__(self, sym_name: str, arg_types: Sequence[Attribute] = (),
                 body: Region | None = None):
        if body is None:
            body = Region([Block(arg_types=arg_types)])
        super().__init__(
            regions=[body],
            attributes={"sym_name": StringAttr(sym_name)},
        )

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def args(self):
        return self.body.block.args


class TaskKind:
    DATA = "data"
    CONTROL = "control"
    LOCAL = "local"

    ALL = (DATA, CONTROL, LOCAL)


class TaskOp(Operation):
    """``task name() void { ... }`` bound to a task id.

    The three CSL task kinds are supported: ``data`` tasks listen for data
    wavelets, ``control`` tasks for control wavelets, and ``local`` tasks are
    activated internally (typically as asynchronous-completion callbacks).
    """

    name = "csl.task"

    def __init__(
        self,
        sym_name: str,
        kind: str,
        task_id: int,
        arg_types: Sequence[Attribute] = (),
        body: Region | None = None,
    ):
        if kind not in TaskKind.ALL:
            raise VerifyException(f"unknown task kind '{kind}'")
        if body is None:
            body = Region([Block(arg_types=arg_types)])
        super().__init__(
            regions=[body],
            attributes={
                "sym_name": StringAttr(sym_name),
                "kind": StringAttr(kind),
                "id": IntAttr(task_id),
            },
        )

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def kind(self) -> str:
        attr = self.attributes["kind"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def task_id(self) -> int:
        attr = self.attributes["id"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def body(self) -> Region:
        return self.regions[0]

    def verify_(self) -> None:
        if not (0 <= self.task_id < 64):
            raise VerifyException("csl.task id must be in [0, 64)")


class ReturnOp(Operation):
    """Return from a csl.func or csl.task."""

    name = "csl.return"
    traits = (IsTerminator,)

    def __init__(self, operands: Sequence[SSAValue] = ()):
        super().__init__(operands=operands)


class CallOp(Operation):
    """Direct call of a csl.func by symbol."""

    name = "csl.call"

    def __init__(self, callee: str, arguments: Sequence[SSAValue] = (),
                 result_types: Sequence[Attribute] = ()):
        super().__init__(
            operands=arguments,
            result_types=list(result_types),
            attributes={"callee": SymbolRefAttr(callee)},
        )

    @property
    def callee(self) -> str:
        attr = self.attributes["callee"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.string_value


class ActivateOp(Operation):
    """``@activate(task_id)`` — schedule a local task for execution."""

    name = "csl.activate"

    def __init__(self, task_name: str, task_id: int):
        super().__init__(
            attributes={"task_name": SymbolRefAttr(task_name), "id": IntAttr(task_id)}
        )

    @property
    def task_name(self) -> str:
        attr = self.attributes["task_name"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.string_value

    @property
    def task_id(self) -> int:
        attr = self.attributes["id"]
        assert isinstance(attr, IntAttr)
        return attr.value


class VariableOp(Operation):
    """``var name : type = init`` — a module-scope mutable scalar."""

    name = "csl.variable"

    def __init__(self, sym_name: str, var_type: Attribute, init: int | float = 0):
        attr: Attribute = (
            IntAttr(int(init)) if isinstance(init, int) else FloatAttr(float(init))
        )
        super().__init__(
            attributes={
                "sym_name": StringAttr(sym_name),
                "type": var_type,
                "init": attr,
            }
        )

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def var_type(self) -> Attribute:
        return self.attributes["type"]

    @property
    def init(self) -> int | float:
        attr = self.attributes["init"]
        assert isinstance(attr, (IntAttr, FloatAttr))
        return attr.value


class LoadVarOp(Operation):
    """Read a module-scope variable."""

    name = "csl.load_var"

    def __init__(self, sym_name: str, result_type: Attribute):
        super().__init__(
            result_types=[result_type],
            attributes={"var": SymbolRefAttr(sym_name)},
        )

    @property
    def var(self) -> str:
        attr = self.attributes["var"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.string_value

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class StoreVarOp(Operation):
    """Write a module-scope variable."""

    name = "csl.store_var"

    def __init__(self, sym_name: str, value: SSAValue):
        super().__init__(
            operands=[value],
            attributes={"var": SymbolRefAttr(sym_name)},
        )

    @property
    def var(self) -> str:
        attr = self.attributes["var"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.string_value

    @property
    def value(self) -> SSAValue:
        return self.operands[0]


# --------------------------------------------------------------------------- #
# Buffers and DSDs
# --------------------------------------------------------------------------- #


class ZerosOp(Operation):
    """``var buf = @zeros([n]f32)`` — a zero-initialised PE-local buffer."""

    name = "csl.zeros"

    def __init__(self, buffer_type: MemRefType, sym_name: str | None = None):
        attributes: dict[str, Attribute] = {}
        if sym_name is not None:
            attributes["sym_name"] = StringAttr(sym_name)
        super().__init__(result_types=[buffer_type], attributes=attributes)

    @property
    def buffer_type(self) -> MemRefType:
        result_type = self.results[0].type
        assert isinstance(result_type, MemRefType)
        return result_type

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class GetMemDsdOp(Operation):
    """``@get_dsd(mem1d_dsd, .{ .tensor_access = |i|{n} -> buf[i] })``."""

    name = "csl.get_mem_dsd"

    def __init__(
        self,
        buffer: SSAValue,
        length: int,
        offset: int = 0,
        stride: int = 1,
    ):
        super().__init__(
            operands=[buffer],
            result_types=[DsdType(DsdKind.MEM1D)],
            attributes={
                "length": IntAttr(length),
                "offset": IntAttr(offset),
                "stride": IntAttr(stride),
            },
        )

    @property
    def buffer(self) -> SSAValue:
        return self.operands[0]

    @property
    def length(self) -> int:
        attr = self.attributes["length"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def offset(self) -> int:
        attr = self.attributes["offset"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def stride(self) -> int:
        attr = self.attributes["stride"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if self.length < 1:
            raise VerifyException("csl.get_mem_dsd length must be positive")


class SetDsdBaseAddrOp(Operation):
    """Rebase a DSD onto a different buffer (used for double buffering)."""

    name = "csl.set_dsd_base_addr"

    def __init__(self, dsd: SSAValue, buffer: SSAValue):
        super().__init__(operands=[dsd, buffer], result_types=[DsdType(DsdKind.MEM1D)])

    @property
    def dsd(self) -> SSAValue:
        return self.operands[0]

    @property
    def buffer(self) -> SSAValue:
        return self.operands[1]

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class IncrementDsdOffsetOp(Operation):
    """Shift the start offset of a DSD by a constant (pointer arithmetic)."""

    name = "csl.increment_dsd_offset"

    def __init__(self, dsd: SSAValue, offset: int):
        super().__init__(
            operands=[dsd],
            result_types=[DsdType(DsdKind.MEM1D)],
            attributes={"offset": IntAttr(offset)},
        )

    @property
    def dsd(self) -> SSAValue:
        return self.operands[0]

    @property
    def offset(self) -> int:
        attr = self.attributes["offset"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def result(self) -> SSAValue:
        return self.results[0]


# --------------------------------------------------------------------------- #
# DSD arithmetic builtins
# --------------------------------------------------------------------------- #


class _DsdBuiltinOp(Operation):
    """Common base of the DSD compute builtins (DPS over DSD operands)."""

    #: the CSL builtin name, e.g. ``@fadds``.
    builtin_name = "@builtin"

    def __init__(self, operands: Sequence[SSAValue]):
        super().__init__(operands=operands)

    @property
    def dest(self) -> SSAValue:
        return self.operands[0]

    @property
    def sources(self) -> tuple[SSAValue, ...]:
        return self.operands[1:]


class FaddsOp(_DsdBuiltinOp):
    """``@fadds(dest, src1, src2)`` — FP32 elementwise addition."""

    name = "csl.fadds"
    builtin_name = "@fadds"

    def __init__(self, dest: SSAValue, src1: SSAValue, src2: SSAValue):
        super().__init__([dest, src1, src2])


class FsubsOp(_DsdBuiltinOp):
    """``@fsubs(dest, src1, src2)`` — FP32 elementwise subtraction."""

    name = "csl.fsubs"
    builtin_name = "@fsubs"

    def __init__(self, dest: SSAValue, src1: SSAValue, src2: SSAValue):
        super().__init__([dest, src1, src2])


class FmulsOp(_DsdBuiltinOp):
    """``@fmuls(dest, src1, src2)`` — FP32 elementwise multiplication."""

    name = "csl.fmuls"
    builtin_name = "@fmuls"

    def __init__(self, dest: SSAValue, src1: SSAValue, src2: SSAValue):
        super().__init__([dest, src1, src2])


class FmacsOp(_DsdBuiltinOp):
    """``@fmacs(dest, src0, src1, src2)`` — FP32 fused multiply-accumulate.

    ``dest[i] = src0[i] + src1[i] * src2`` where ``src2`` may be a scalar.
    """

    name = "csl.fmacs"
    builtin_name = "@fmacs"

    def __init__(self, dest: SSAValue, acc: SSAValue, src: SSAValue, coeff: SSAValue):
        super().__init__([dest, acc, src, coeff])


class FmovsOp(_DsdBuiltinOp):
    """``@fmovs(dest, src)`` — FP32 elementwise move / broadcast."""

    name = "csl.fmovs"
    builtin_name = "@fmovs"

    def __init__(self, dest: SSAValue, src: SSAValue):
        super().__init__([dest, src])


DSD_BUILTIN_OPS = (FaddsOp, FsubsOp, FmulsOp, FmacsOp, FmovsOp)


# --------------------------------------------------------------------------- #
# Layout metaprogram operations
# --------------------------------------------------------------------------- #


class GetColorOp(Operation):
    """``@get_color(id)``."""

    name = "csl.get_color"

    def __init__(self, color_id: int):
        super().__init__(
            result_types=[ColorType()], attributes={"id": IntAttr(color_id)}
        )

    @property
    def color_id(self) -> int:
        attr = self.attributes["id"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if not (0 <= self.color_id < 24):
            raise VerifyException("csl.get_color: colors are limited to [0, 24)")


class SetRectangleOp(Operation):
    """``@set_rectangle(width, height)`` in the layout metaprogram."""

    name = "csl.set_rectangle"

    def __init__(self, width: int, height: int):
        super().__init__(attributes={"width": IntAttr(width), "height": IntAttr(height)})

    @property
    def width(self) -> int:
        attr = self.attributes["width"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def height(self) -> int:
        attr = self.attributes["height"]
        assert isinstance(attr, IntAttr)
        return attr.value


class SetTileCodeOp(Operation):
    """``@set_tile_code(x, y, "program.csl", params)``."""

    name = "csl.set_tile_code"

    def __init__(self, program_file: str, params: dict[str, Attribute] | None = None):
        super().__init__(
            attributes={
                "file": StringAttr(program_file),
                "params": DictionaryAttr(params or {}),
            }
        )

    @property
    def program_file(self) -> str:
        attr = self.attributes["file"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def params(self) -> DictionaryAttr:
        attr = self.attributes["params"]
        assert isinstance(attr, DictionaryAttr)
        return attr


class ExportOp(Operation):
    """``@export_symbol`` — make a buffer or function visible to the host."""

    name = "csl.export"

    def __init__(self, sym_name: str, value: SSAValue | None = None, kind: str = "var"):
        super().__init__(
            operands=[value] if value is not None else [],
            attributes={"sym_name": StringAttr(sym_name), "kind": StringAttr(kind)},
        )

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.data


class RpcOp(Operation):
    """Launch the memcpy RPC command stream (host interaction)."""

    name = "csl.rpc"

    def __init__(self, struct: SSAValue):
        super().__init__(operands=[struct])


class UnblockCmdStreamOp(Operation):
    """``memcpy.unblock_cmd_stream()`` — return control to the host."""

    name = "csl.unblock_cmd_stream"

    def __init__(self, struct: SSAValue | None = None):
        super().__init__(operands=[struct] if struct is not None else [])


# --------------------------------------------------------------------------- #
# Runtime communications library entry point (Section 5.6)
# --------------------------------------------------------------------------- #


class CommsExchangeOp(Operation):
    """``stencil_comms.communicate(&buf, num_chunks, &recv_cb, &done_cb)``.

    Schedules the chunked, star-shaped halo exchange implemented by the
    runtime communications library.  ``recv_callback`` is activated for every
    received chunk, ``done_callback`` once the whole exchange has completed.
    Optional per-direction coefficients implement the coefficient-promotion
    optimisation that applies constants to incoming data at zero cost.
    """

    name = "csl.comms_exchange"

    def __init__(
        self,
        buffer: SSAValue,
        num_chunks: int,
        recv_callback: str,
        done_callback: str,
        directions: Sequence[Sequence[int]],
        pattern: int = 1,
        coefficients: Sequence[float] | None = None,
        comms_struct: SSAValue | None = None,
    ):
        attributes: dict[str, Attribute] = {
            "num_chunks": IntAttr(num_chunks),
            "recv_callback": SymbolRefAttr(recv_callback),
            "done_callback": SymbolRefAttr(done_callback),
            "directions": ArrayAttr(
                [DenseArrayAttr(direction) for direction in directions]
            ),
            "pattern": IntAttr(pattern),
        }
        if coefficients is not None:
            attributes["coefficients"] = DenseArrayAttr(coefficients)
        operands = [buffer]
        if comms_struct is not None:
            operands.append(comms_struct)
        super().__init__(operands=operands, attributes=attributes)

    @property
    def buffer(self) -> SSAValue:
        return self.operands[0]

    @property
    def num_chunks(self) -> int:
        attr = self.attributes["num_chunks"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def recv_callback(self) -> str:
        attr = self.attributes["recv_callback"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.string_value

    @property
    def done_callback(self) -> str:
        attr = self.attributes["done_callback"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.string_value

    @property
    def directions(self) -> tuple[tuple[int, ...], ...]:
        attr = self.attributes["directions"]
        assert isinstance(attr, ArrayAttr)
        return tuple(
            tuple(int(c) for c in direction)
            for direction in attr
            if isinstance(direction, DenseArrayAttr)
        )

    @property
    def pattern(self) -> int:
        attr = self.attributes["pattern"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def coefficients(self) -> tuple[float, ...] | None:
        attr = self.attributes.get("coefficients")
        if attr is None:
            return None
        assert isinstance(attr, DenseArrayAttr)
        return tuple(float(v) for v in attr)

    def verify_(self) -> None:
        if self.num_chunks < 1:
            raise VerifyException("csl.comms_exchange num_chunks must be >= 1")
        if not self.directions:
            raise VerifyException("csl.comms_exchange requires at least one direction")
