"""The csl-stencil dialect (paper Section 4.1).

WSE-specific stencil representation that makes communication explicit:

* ``csl_stencil.prefetch`` fetches one piece of remote data into a local
  buffer.
* ``csl_stencil.apply`` carries two regions: the *receive* (chunk) region is
  executed once per incoming chunk of remote data and reduces it into an
  accumulator; the *compute* (done) region runs once after the exchange has
  completed and combines the accumulator with locally-held data.
* ``csl_stencil.access`` reads a neighbour value either from local storage or
  from the communication buffer, depending on the offset.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import ArrayAttr, Attribute, DenseArrayAttr, IntAttr
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Block, Operation, Region
from repro.ir.traits import IsTerminator
from repro.ir.value import SSAValue


class ExchangeDeclAttr(Attribute):
    """A single neighbour exchange, e.g. ``#csl_stencil.exchange<to [1, 0]>``."""

    name = "csl_stencil.exchange"

    def __init__(self, neighbor: Sequence[int], depth: int = 1):
        self.neighbor: tuple[int, ...] = tuple(int(c) for c in neighbor)
        self.depth = int(depth)

    def _key(self) -> tuple:
        return (self.neighbor, self.depth)

    def __str__(self) -> str:
        coords = ", ".join(str(c) for c in self.neighbor)
        return f"#csl_stencil.exchange<to [{coords}]>"


class PrefetchOp(Operation):
    """Fetch remote data required by a subsequent apply into a local buffer."""

    name = "csl_stencil.prefetch"

    def __init__(
        self,
        input_value: SSAValue,
        swaps: Sequence[ExchangeDeclAttr],
        result_type: Attribute,
    ):
        super().__init__(
            operands=[input_value],
            result_types=[result_type],
            attributes={"swaps": ArrayAttr(list(swaps))},
        )

    @property
    def input(self) -> SSAValue:
        return self.operands[0]

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    @property
    def swaps(self) -> tuple[ExchangeDeclAttr, ...]:
        attr = self.attributes["swaps"]
        assert isinstance(attr, ArrayAttr)
        return tuple(a for a in attr if isinstance(a, ExchangeDeclAttr))


class ApplyOp(Operation):
    """Chunked communicate-and-compute stencil apply.

    Operands: the communicated field/temp first, then any additional
    locally-read operands, then the accumulator initial value last.

    Region 0 (*receive region*) arguments: the received-chunk buffer, the
    chunk offset (index) and the accumulator; executed ``num_chunks`` times.

    Region 1 (*compute region*) arguments: the communicated operand, the
    accumulator, then the additional operands; executed once after the
    exchange completes, yielding the apply's result.
    """

    name = "csl_stencil.apply"

    def __init__(
        self,
        communicated: SSAValue,
        accumulator: SSAValue,
        extra_operands: Sequence[SSAValue],
        result_types: Sequence[Attribute],
        receive_region: Region,
        compute_region: Region,
        swaps: Sequence[ExchangeDeclAttr],
        num_chunks: int,
        topo: Attribute | None = None,
    ):
        attributes: dict[str, Attribute] = {
            "swaps": ArrayAttr(list(swaps)),
            "num_chunks": IntAttr(num_chunks),
        }
        if topo is not None:
            attributes["topo"] = topo
        super().__init__(
            operands=[communicated, accumulator, *extra_operands],
            result_types=list(result_types),
            regions=[receive_region, compute_region],
            attributes=attributes,
        )

    @property
    def communicated(self) -> SSAValue:
        return self.operands[0]

    @property
    def accumulator(self) -> SSAValue:
        return self.operands[1]

    @property
    def extra_operands(self) -> tuple[SSAValue, ...]:
        return self.operands[2:]

    @property
    def receive_region(self) -> Region:
        return self.regions[0]

    @property
    def compute_region(self) -> Region:
        return self.regions[1]

    @property
    def swaps(self) -> tuple[ExchangeDeclAttr, ...]:
        attr = self.attributes["swaps"]
        assert isinstance(attr, ArrayAttr)
        return tuple(a for a in attr if isinstance(a, ExchangeDeclAttr))

    @property
    def num_chunks(self) -> int:
        attr = self.attributes["num_chunks"]
        assert isinstance(attr, IntAttr)
        return attr.value

    def verify_(self) -> None:
        if len(self.regions) != 2:
            raise VerifyException("csl_stencil.apply must have exactly two regions")
        if self.num_chunks < 1:
            raise VerifyException("csl_stencil.apply num_chunks must be >= 1")
        receive_block = self.receive_region.block
        if len(receive_block.args) != 3:
            raise VerifyException(
                "csl_stencil.apply receive region must have exactly three "
                "arguments (chunk buffer, offset, accumulator)"
            )
        compute_block = self.compute_region.block
        if len(compute_block.args) < 2:
            raise VerifyException(
                "csl_stencil.apply compute region must have at least two "
                "arguments (communicated operand, accumulator)"
            )
        for region in self.regions:
            terminator = region.block.last_op
            if terminator is not None and not isinstance(terminator, YieldOp):
                raise VerifyException(
                    "csl_stencil.apply regions must terminate with csl_stencil.yield"
                )


class AccessOp(Operation):
    """Access a neighbour value, locally or from the communication buffer."""

    name = "csl_stencil.access"

    def __init__(self, operand: SSAValue, offset: Sequence[int], result_type: Attribute):
        super().__init__(
            operands=[operand],
            result_types=[result_type],
            attributes={"offset": DenseArrayAttr(offset)},
        )

    @property
    def operand(self) -> SSAValue:
        return self.operands[0]

    @property
    def offset(self) -> tuple[int, ...]:
        attr = self.attributes["offset"]
        assert isinstance(attr, DenseArrayAttr)
        return tuple(int(v) for v in attr)

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    @property
    def is_local(self) -> bool:
        """An all-zero offset reads locally-held data."""
        return all(c == 0 for c in self.offset)


class YieldOp(Operation):
    """Terminator of csl_stencil.apply regions."""

    name = "csl_stencil.yield"
    traits = (IsTerminator,)

    def __init__(self, operands: Sequence[SSAValue] = ()):
        super().__init__(operands=operands)
