"""The csl-wrapper dialect (paper Section 4.2).

CSL uses staged compilation: a *layout* metaprogram places PE programs onto
the wafer and passes compile-time parameters; each PE *program* is then
specialised against those parameters.  ``csl_wrapper.module`` packages the
two stages and the program-wide parameters into one operation so they can be
transformed together.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    DictionaryAttr,
    IntAttr,
    StringAttr,
)
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Block, Operation, Region
from repro.ir.traits import IsTerminator
from repro.ir.types import IntegerType, i16
from repro.ir.value import SSAValue


class ParamAttr(Attribute):
    """A named program-wide compile-time parameter with an optional default."""

    name = "csl_wrapper.param"

    def __init__(self, key: str, value: int | None = None):
        self.key = str(key)
        self.value = value if value is None else int(value)

    def _key(self) -> tuple:
        return (self.key, self.value)

    def __str__(self) -> str:
        if self.value is None:
            return f"<{self.key}>"
        return f"<{self.key} = {self.value}>"


class ModuleOp(Operation):
    """Wraps the layout metaprogram and the PE program.

    Region 0 is the *layout* region: its block arguments are
    ``(x, y, width, height)`` followed by one argument per declared parameter;
    it is conceptually executed for every PE coordinate and yields the
    per-PE parameter values via ``csl_wrapper.yield``.

    Region 1 is the *program* region: its block arguments are
    ``(width, height)`` followed by the values yielded by the layout region.
    """

    name = "csl_wrapper.module"

    def __init__(
        self,
        width: int,
        height: int,
        program_name: str,
        params: Sequence[ParamAttr] = (),
        layout_region: Region | None = None,
        program_region: Region | None = None,
        target: str = "wse2",
    ):
        params = list(params)
        if layout_region is None:
            layout_region = Region(
                [Block(arg_types=[i16, i16, i16, i16, *[i16] * len(params)])]
            )
        if program_region is None:
            program_region = Region(
                [Block(arg_types=[i16, i16, *[i16] * len(params)])]
            )
        super().__init__(
            regions=[layout_region, program_region],
            attributes={
                "width": IntAttr(width),
                "height": IntAttr(height),
                "program_name": StringAttr(program_name),
                "params": ArrayAttr(params),
                "target": StringAttr(target),
            },
        )

    @property
    def width(self) -> int:
        attr = self.attributes["width"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def height(self) -> int:
        attr = self.attributes["height"]
        assert isinstance(attr, IntAttr)
        return attr.value

    @property
    def program_name(self) -> str:
        attr = self.attributes["program_name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def target(self) -> str:
        attr = self.attributes["target"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def params(self) -> tuple[ParamAttr, ...]:
        attr = self.attributes["params"]
        assert isinstance(attr, ArrayAttr)
        return tuple(p for p in attr if isinstance(p, ParamAttr))

    def param_value(self, key: str) -> int | None:
        for param in self.params:
            if param.key == key:
                return param.value
        return None

    @property
    def layout_region(self) -> Region:
        return self.regions[0]

    @property
    def program_region(self) -> Region:
        return self.regions[1]

    def verify_(self) -> None:
        if len(self.regions) != 2:
            raise VerifyException("csl_wrapper.module must have two regions")
        if self.width < 1 or self.height < 1:
            raise VerifyException("csl_wrapper.module: width/height must be positive")


class ImportOp(Operation):
    """Import a CSL library (e.g. ``<memcpy/get_params>`` or the comms lib)."""

    name = "csl_wrapper.import"

    def __init__(self, module: str, fields: dict[str, Attribute] | None = None,
                 result_type: Attribute | None = None):
        from repro.dialects.csl import ComptimeStructType

        super().__init__(
            result_types=[result_type if result_type is not None else ComptimeStructType(module)],
            attributes={
                "module": StringAttr(module),
                "fields": DictionaryAttr(fields or {}),
            },
        )

    @property
    def module(self) -> str:
        attr = self.attributes["module"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class YieldOp(Operation):
    """Terminator of csl_wrapper regions, yielding per-PE parameter values."""

    name = "csl_wrapper.yield"
    traits = (IsTerminator,)

    def __init__(self, operands: Sequence[SSAValue] = (), keys: Sequence[str] = ()):
        super().__init__(
            operands=operands,
            attributes={"keys": ArrayAttr([StringAttr(k) for k in keys])},
        )

    @property
    def keys(self) -> tuple[str, ...]:
        attr = self.attributes["keys"]
        assert isinstance(attr, ArrayAttr)
        return tuple(a.data for a in attr if isinstance(a, StringAttr))
