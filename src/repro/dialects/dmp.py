"""The dmp (distributed-memory parallelism) dialect.

Reused from Bisbas et al. (ASPLOS'24): ``dmp.swap`` marks the halo exchanges
a stencil.apply needs before it can run.  The paper reuses the same abstract
decomposition logic to split stencils across the WSE's 2-D PE grid
(Section 5.1, Listing 3).
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import ArrayAttr, Attribute, IntAttr
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Operation
from repro.ir.value import SSAValue


class RankTopoAttr(Attribute):
    """The shape of the processing-element / rank grid (e.g. ``254x254``)."""

    name = "dmp.topo"

    def __init__(self, shape: Sequence[int]):
        self.shape: tuple[int, ...] = tuple(int(dim) for dim in shape)

    def _key(self) -> tuple:
        return (self.shape,)

    def __str__(self) -> str:
        return "#dmp.topo<" + "x".join(str(d) for d in self.shape) + ">"


class GridSlice2dAttr(Attribute):
    """Decomposition strategy: slice the first two dimensions over a 2-D grid."""

    name = "dmp.grid_slice_2d"

    def __init__(self, topology: RankTopoAttr, diagonals: bool = False):
        self.topology = topology
        self.diagonals = bool(diagonals)

    def _key(self) -> tuple:
        return (self.topology, self.diagonals)

    def __str__(self) -> str:
        return f"#dmp.grid_slice_2d<{self.topology}, {str(self.diagonals).lower()}>"


class ExchangeDeclAttr(Attribute):
    """One halo exchange: which neighbour, and how many halo layers deep.

    ``neighbor`` is a unit offset in grid space, e.g. ``(1, 0)`` for the
    eastern neighbour; ``depth`` is the halo width in that direction (the
    stencil radius).
    """

    name = "dmp.exchange"

    def __init__(self, neighbor: Sequence[int], depth: int = 1):
        self.neighbor: tuple[int, ...] = tuple(int(c) for c in neighbor)
        self.depth = int(depth)

    def _key(self) -> tuple:
        return (self.neighbor, self.depth)

    def __str__(self) -> str:
        coords = ", ".join(str(c) for c in self.neighbor)
        return f"#dmp.exchange<to [{coords}] depth {self.depth}>"


class SwapOp(Operation):
    """Exchange halo data with neighbouring ranks/PEs before a stencil apply."""

    name = "dmp.swap"

    def __init__(
        self,
        input_value: SSAValue,
        strategy: GridSlice2dAttr,
        swaps: Sequence[ExchangeDeclAttr],
        result_type: Attribute | None = None,
    ):
        super().__init__(
            operands=[input_value],
            result_types=[result_type if result_type is not None else input_value.type],
            attributes={
                "strategy": strategy,
                "swaps": ArrayAttr(list(swaps)),
            },
        )

    @property
    def input(self) -> SSAValue:
        return self.operands[0]

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    @property
    def strategy(self) -> GridSlice2dAttr:
        attr = self.attributes["strategy"]
        assert isinstance(attr, GridSlice2dAttr)
        return attr

    @property
    def swaps(self) -> tuple[ExchangeDeclAttr, ...]:
        attr = self.attributes["swaps"]
        assert isinstance(attr, ArrayAttr)
        return tuple(a for a in attr if isinstance(a, ExchangeDeclAttr))

    def verify_(self) -> None:
        if "strategy" not in self.attributes or "swaps" not in self.attributes:
            raise VerifyException("dmp.swap requires 'strategy' and 'swaps' attributes")
