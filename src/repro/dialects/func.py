"""The func dialect: functions, calls and returns."""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import Attribute, StringAttr, SymbolRefAttr
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Block, Operation, Region
from repro.ir.traits import IsTerminator
from repro.ir.types import FunctionType
from repro.ir.value import SSAValue


class FuncOp(Operation):
    """A named function with a single-region body."""

    name = "func.func"

    def __init__(
        self,
        sym_name: str,
        function_type: FunctionType,
        region: Region | None = None,
        *,
        visibility: str = "public",
    ):
        if region is None:
            region = Region([Block(arg_types=function_type.inputs)])
        super().__init__(
            regions=[region],
            attributes={
                "sym_name": StringAttr(sym_name),
                "function_type": function_type,
                "sym_visibility": StringAttr(visibility),
            },
        )

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def function_type(self) -> FunctionType:
        attr = self.attributes["function_type"]
        assert isinstance(attr, FunctionType)
        return attr

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def args(self):
        return self.body.block.args

    def verify_(self) -> None:
        if "sym_name" not in self.attributes:
            raise VerifyException("func.func requires a 'sym_name'")
        block = self.body.blocks[0] if self.body.blocks else None
        if block is not None and len(block.args) != len(self.function_type.inputs):
            raise VerifyException(
                f"func.func '{self.sym_name}': entry block has {len(block.args)} "
                f"arguments but the function type expects "
                f"{len(self.function_type.inputs)}"
            )


class ReturnOp(Operation):
    """Terminator returning values from a function."""

    name = "func.return"
    traits = (IsTerminator,)

    def __init__(self, operands: Sequence[SSAValue] = ()):
        super().__init__(operands=operands)


class CallOp(Operation):
    """A direct call to a named function."""

    name = "func.call"

    def __init__(
        self,
        callee: str,
        arguments: Sequence[SSAValue] = (),
        result_types: Sequence[Attribute] = (),
    ):
        super().__init__(
            operands=arguments,
            result_types=result_types,
            attributes={"callee": SymbolRefAttr(callee)},
        )

    @property
    def callee(self) -> str:
        attr = self.attributes["callee"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.string_value
