"""The linalg dialect (subset): Destination-Passing-Style array arithmetic.

The paper converts elementwise ``arith`` ops over memrefs to ``linalg``
equivalents because CSL's DSD builtins follow DPS form (Section 5.3):
they read inputs from and write results to buffers passed as operands.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import Attribute, FloatAttr
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Operation
from repro.ir.value import SSAValue


class _ElementwiseOp(Operation):
    """Base for DPS elementwise ops: ``ins(...) outs(dest)``."""

    #: number of ``ins`` operands
    num_inputs = 2

    def __init__(self, inputs: Sequence[SSAValue], output: SSAValue):
        inputs = list(inputs)
        if len(inputs) != self.num_inputs:
            raise VerifyException(
                f"'{self.name}' expects {self.num_inputs} inputs, got {len(inputs)}"
            )
        super().__init__(operands=[*inputs, output])

    @property
    def inputs(self) -> tuple[SSAValue, ...]:
        return self.operands[: self.num_inputs]

    @property
    def output(self) -> SSAValue:
        return self.operands[self.num_inputs]


class AddOp(_ElementwiseOp):
    """``outs[i] = ins0[i] + ins1[i]``."""

    name = "linalg.add"
    python_op = "add"


class SubOp(_ElementwiseOp):
    """``outs[i] = ins0[i] - ins1[i]``."""

    name = "linalg.sub"
    python_op = "sub"


class MulOp(_ElementwiseOp):
    """``outs[i] = ins0[i] * ins1[i]``."""

    name = "linalg.mul"
    python_op = "mul"


class DivOp(_ElementwiseOp):
    """``outs[i] = ins0[i] / ins1[i]``."""

    name = "linalg.div"
    python_op = "div"


class FmaOp(Operation):
    """Fused multiply-add: ``outs[i] = ins0[i] * ins1[i] + ins2[i]``.

    Produced by the linalg-fuse-multiply-add optimisation (Section 5.7) and
    lowered to the ``@fmacs`` CSL builtin.
    """

    name = "linalg.fma"

    def __init__(self, a: SSAValue, b: SSAValue, c: SSAValue, output: SSAValue):
        super().__init__(operands=[a, b, c, output])

    @property
    def inputs(self) -> tuple[SSAValue, ...]:
        return self.operands[:3]

    @property
    def output(self) -> SSAValue:
        return self.operands[3]


class FillOp(Operation):
    """Fill a buffer with a scalar value (lowered to ``@fmovs``)."""

    name = "linalg.fill"

    def __init__(self, value: SSAValue, output: SSAValue):
        super().__init__(operands=[value, output])

    @property
    def value(self) -> SSAValue:
        return self.operands[0]

    @property
    def output(self) -> SSAValue:
        return self.operands[1]


class ScaleOp(Operation):
    """Multiply a buffer by a scalar: ``outs[i] = ins[i] * scalar``.

    Lowered to the scalar-operand form of ``@fmuls``.
    """

    name = "linalg.scale"

    def __init__(self, input_: SSAValue, scalar: SSAValue, output: SSAValue):
        super().__init__(operands=[input_, scalar, output])

    @property
    def input(self) -> SSAValue:
        return self.operands[0]

    @property
    def scalar(self) -> SSAValue:
        return self.operands[1]

    @property
    def output(self) -> SSAValue:
        return self.operands[2]


ELEMENTWISE_OPS = (AddOp, SubOp, MulOp, DivOp)
