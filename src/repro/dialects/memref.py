"""The memref dialect (subset): reference-semantics buffers.

After bufferization (Section 5.3), tensors become memrefs; memref
allocation/deallocation is later lowered to csl-ir buffer declarations and
DSD views in group 5.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import Attribute, DenseArrayAttr, StringAttr
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Operation
from repro.ir.types import MemRefType
from repro.ir.value import SSAValue


class AllocOp(Operation):
    """Allocate a buffer in PE-local memory."""

    name = "memref.alloc"

    def __init__(self, result_type: MemRefType):
        super().__init__(result_types=[result_type])

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if not isinstance(self.results[0].type, MemRefType):
            raise VerifyException("memref.alloc must produce a memref")


class DeallocOp(Operation):
    """Free a buffer previously allocated with memref.alloc."""

    name = "memref.dealloc"

    def __init__(self, buffer: SSAValue):
        super().__init__(operands=[buffer])

    @property
    def buffer(self) -> SSAValue:
        return self.operands[0]


class GlobalOp(Operation):
    """A module-level named buffer (one per stencil field per PE)."""

    name = "memref.global"

    def __init__(self, sym_name: str, buffer_type: MemRefType):
        super().__init__(
            attributes={
                "sym_name": StringAttr(sym_name),
                "type": buffer_type,
            }
        )

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def buffer_type(self) -> MemRefType:
        attr = self.attributes["type"]
        assert isinstance(attr, MemRefType)
        return attr


class GetGlobalOp(Operation):
    """Access a module-level named buffer."""

    name = "memref.get_global"

    def __init__(self, sym_name: str, result_type: MemRefType):
        super().__init__(
            result_types=[result_type],
            attributes={"name": StringAttr(sym_name)},
        )

    @property
    def global_name(self) -> str:
        attr = self.attributes["name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class SubviewOp(Operation):
    """A strided view into a buffer (lowered to a DSD in group 5).

    The offset is either static (an attribute) or dynamic (an SSA operand,
    used for chunk-offset addressing in the receive tasks).
    """

    name = "memref.subview"

    def __init__(
        self,
        source: SSAValue,
        offset: "SSAValue | int",
        size: int,
        result_type: MemRefType,
        stride: int = 1,
    ):
        operands = [source]
        attributes: dict[str, Attribute] = {
            "static_size": DenseArrayAttr([size]),
            "static_stride": DenseArrayAttr([stride]),
        }
        if isinstance(offset, int):
            attributes["static_offset"] = DenseArrayAttr([offset])
        else:
            operands.append(offset)
        super().__init__(
            operands=operands,
            result_types=[result_type],
            attributes=attributes,
        )

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def has_dynamic_offset(self) -> bool:
        return "static_offset" not in self.attributes

    @property
    def dynamic_offset(self) -> SSAValue:
        assert self.has_dynamic_offset
        return self.operands[1]

    @property
    def offset(self) -> "SSAValue | int":
        if self.has_dynamic_offset:
            return self.operands[1]
        attr = self.attributes["static_offset"]
        assert isinstance(attr, DenseArrayAttr)
        return int(attr[0])

    @property
    def size(self) -> int:
        attr = self.attributes["static_size"]
        assert isinstance(attr, DenseArrayAttr)
        return int(attr[0])

    @property
    def stride(self) -> int:
        attr = self.attributes["static_stride"]
        assert isinstance(attr, DenseArrayAttr)
        return int(attr[0])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class CopyOp(Operation):
    """Copy the contents of one buffer into another of the same shape."""

    name = "memref.copy"

    def __init__(self, source: SSAValue, dest: SSAValue):
        super().__init__(operands=[source, dest])

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def dest(self) -> SSAValue:
        return self.operands[1]
