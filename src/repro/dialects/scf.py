"""The scf dialect: structured control flow (for loops, yields, if).

The benchmarks wrap their stencil sequence in an ``scf.for`` time-step loop;
group-4 transformations (Section 5.4) convert this loop into a control-flow
task graph of CSL functions.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import Attribute
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Block, Operation, Region
from repro.ir.traits import IsTerminator
from repro.ir.types import IndexType
from repro.ir.value import BlockArgument, SSAValue


class ForOp(Operation):
    """A counted loop with loop-carried values (``iter_args``).

    Signature: ``scf.for %iv = %lb to %ub step %step iter_args(%args = inits)``.
    The body block's arguments are the induction variable followed by the
    loop-carried values.
    """

    name = "scf.for"

    def __init__(
        self,
        lower_bound: SSAValue,
        upper_bound: SSAValue,
        step: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Region | None = None,
    ):
        iter_args = list(iter_args)
        if body is None:
            body = Region(
                [Block(arg_types=[IndexType(), *[arg.type for arg in iter_args]])]
            )
        super().__init__(
            operands=[lower_bound, upper_bound, step, *iter_args],
            result_types=[arg.type for arg in iter_args],
            regions=[body],
        )

    @property
    def lower_bound(self) -> SSAValue:
        return self.operands[0]

    @property
    def upper_bound(self) -> SSAValue:
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        return self.operands[2]

    @property
    def iter_args(self) -> tuple[SSAValue, ...]:
        return self.operands[3:]

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def induction_variable(self) -> BlockArgument:
        return self.body.block.args[0]

    @property
    def body_iter_args(self) -> list[BlockArgument]:
        return self.body.block.args[1:]

    def verify_(self) -> None:
        block = self.body.block
        if len(block.args) != 1 + len(self.iter_args):
            raise VerifyException(
                "scf.for: body block must have the induction variable plus one "
                "argument per iter_arg"
            )
        if not isinstance(block.args[0].type, IndexType):
            raise VerifyException("scf.for: induction variable must have index type")
        if len(self.results) != len(self.iter_args):
            raise VerifyException(
                "scf.for: result count must match the number of iter_args"
            )


class YieldOp(Operation):
    """Terminator yielding values from an scf region."""

    name = "scf.yield"
    traits = (IsTerminator,)

    def __init__(self, operands: Sequence[SSAValue] = ()):
        super().__init__(operands=operands)


class IfOp(Operation):
    """A two-armed conditional."""

    name = "scf.if"

    def __init__(
        self,
        condition: SSAValue,
        result_types: Sequence[Attribute] = (),
        then_region: Region | None = None,
        else_region: Region | None = None,
    ):
        regions = [
            then_region if then_region is not None else Region([Block()]),
            else_region if else_region is not None else Region([Block()]),
        ]
        super().__init__(
            operands=[condition], result_types=result_types, regions=regions
        )

    @property
    def condition(self) -> SSAValue:
        return self.operands[0]

    @property
    def then_region(self) -> Region:
        return self.regions[0]

    @property
    def else_region(self) -> Region:
        return self.regions[1]
