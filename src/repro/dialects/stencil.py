"""The stencil dialect: architecture-agnostic stencil computations.

This mirrors the xDSL/Open-Earth-Compiler stencil dialect used as the entry
point of the paper's pipeline (Section 3).  A ``stencil.apply`` executes its
body for every grid cell of its output bounds; ``stencil.access`` reads a
neighbouring cell at a constant offset.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import Attribute, DenseArrayAttr
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Block, Operation, Region
from repro.ir.traits import IsTerminator, has_parent
from repro.ir.types import TypeAttribute
from repro.ir.value import SSAValue


class StencilBounds:
    """Half-open per-dimension index bounds ``[lb, ub)`` of a stencil type."""

    def __init__(self, bounds: Sequence[tuple[int, int]]):
        self.bounds: tuple[tuple[int, int], ...] = tuple(
            (int(lb), int(ub)) for lb, ub in bounds
        )

    @property
    def rank(self) -> int:
        return len(self.bounds)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(ub - lb for lb, ub in self.bounds)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StencilBounds) and other.bounds == self.bounds

    def __hash__(self) -> int:
        return hash(self.bounds)

    def __iter__(self):
        return iter(self.bounds)

    def __getitem__(self, index: int) -> tuple[int, int]:
        return self.bounds[index]

    def __str__(self) -> str:
        return "x".join(f"[{lb},{ub}]" for lb, ub in self.bounds)


class _StencilContainerType(TypeAttribute):
    """Common base of stencil field/temp types: bounds plus element type."""

    def __init__(self, bounds: Sequence[tuple[int, int]] | StencilBounds, element_type: Attribute):
        if not isinstance(bounds, StencilBounds):
            bounds = StencilBounds(bounds)
        self.bounds = bounds
        self.element_type = element_type

    @property
    def rank(self) -> int:
        return self.bounds.rank

    @property
    def shape(self) -> tuple[int, ...]:
        return self.bounds.shape

    def _key(self) -> tuple:
        return (self.bounds, self.element_type)


class FieldType(_StencilContainerType):
    """A stencil field: backing storage living across applies (memory-like)."""

    name = "stencil.field"

    def __str__(self) -> str:
        return f"!stencil.field<{self.bounds}x{self.element_type}>"


class TempType(_StencilContainerType):
    """A stencil temporary: value-semantics snapshot consumed by applies."""

    name = "stencil.temp"

    def __str__(self) -> str:
        return f"!stencil.temp<{self.bounds}x{self.element_type}>"


class ApplyOp(Operation):
    """Execute the body for every cell of the output grid.

    The body block has one argument per operand (with the operand's type) and
    is terminated by ``stencil.return``.
    """

    name = "stencil.apply"

    def __init__(
        self,
        operands: Sequence[SSAValue],
        result_types: Sequence[Attribute],
        body: Region | None = None,
    ):
        if body is None:
            body = Region([Block(arg_types=[value.type for value in operands])])
        super().__init__(
            operands=operands, result_types=list(result_types), regions=[body]
        )

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def block(self) -> Block:
        return self.body.block

    def result_bounds(self) -> StencilBounds:
        result_type = self.results[0].type
        assert isinstance(result_type, TempType)
        return result_type.bounds

    def verify_(self) -> None:
        block = self.body.block
        if len(block.args) != len(self.operands):
            raise VerifyException(
                "stencil.apply: body block must have one argument per operand"
            )
        if not self.results:
            raise VerifyException("stencil.apply must produce at least one result")
        for result in self.results:
            if not isinstance(result.type, TempType):
                raise VerifyException("stencil.apply results must be stencil.temp")
        terminator = block.last_op
        if terminator is not None and not isinstance(terminator, ReturnOp):
            raise VerifyException(
                "stencil.apply body must terminate with stencil.return"
            )


class AccessOp(Operation):
    """Read the stencil operand at a constant offset from the current cell."""

    name = "stencil.access"

    def __init__(self, temp: SSAValue, offset: Sequence[int], result_type: Attribute):
        super().__init__(
            operands=[temp],
            result_types=[result_type],
            attributes={"offset": DenseArrayAttr(offset)},
        )

    @property
    def temp(self) -> SSAValue:
        return self.operands[0]

    @property
    def offset(self) -> tuple[int, ...]:
        attr = self.attributes["offset"]
        assert isinstance(attr, DenseArrayAttr)
        return tuple(int(v) for v in attr)

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        operand_type = self.temp.type
        if isinstance(operand_type, (TempType, FieldType)):
            if len(self.offset) != operand_type.rank:
                raise VerifyException(
                    f"stencil.access: offset rank {len(self.offset)} does not match "
                    f"operand rank {operand_type.rank}"
                )


class ReturnOp(Operation):
    """Terminator of a stencil.apply body, yielding the cell's value(s)."""

    name = "stencil.return"
    traits = (IsTerminator, has_parent(ApplyOp))

    def __init__(self, operands: Sequence[SSAValue]):
        super().__init__(operands=operands)


class LoadOp(Operation):
    """Take a value-semantics snapshot of a field."""

    name = "stencil.load"

    def __init__(self, field: SSAValue, result_type: TempType):
        super().__init__(operands=[field], result_types=[result_type])

    @property
    def field(self) -> SSAValue:
        return self.operands[0]

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        # During progressive lowering the field operand may already have been
        # replaced by a PE-local buffer (memref); only reject stencil-typed
        # operands that are not fields.
        if isinstance(self.field.type, TempType):
            raise VerifyException("stencil.load operand must be a stencil.field")
        if not isinstance(self.results[0].type, TempType):
            raise VerifyException("stencil.load result must be a stencil.temp")


class StoreOp(Operation):
    """Write a temp back into a field over the given bounds."""

    name = "stencil.store"

    def __init__(self, temp: SSAValue, field: SSAValue, bounds: StencilBounds | None = None):
        attributes: dict[str, Attribute] = {}
        if bounds is not None:
            flat: list[int] = []
            for lb, ub in bounds:
                flat.extend((lb, ub))
            attributes["bounds"] = DenseArrayAttr(flat)
        super().__init__(operands=[temp, field], attributes=attributes)

    @property
    def temp(self) -> SSAValue:
        return self.operands[0]

    @property
    def field(self) -> SSAValue:
        return self.operands[1]

    @property
    def bounds(self) -> StencilBounds | None:
        attr = self.attributes.get("bounds")
        if attr is None:
            return None
        assert isinstance(attr, DenseArrayAttr)
        flat = list(attr)
        pairs = [(int(flat[i]), int(flat[i + 1])) for i in range(0, len(flat), 2)]
        return StencilBounds(pairs)

    def verify_(self) -> None:
        # As with stencil.load, the field may have been lowered to a buffer.
        if isinstance(self.field.type, TempType):
            raise VerifyException("stencil.store field operand must be a stencil.field")
