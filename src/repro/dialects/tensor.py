"""The tensor dialect (subset): value-semantics container manipulation.

Only the operations required by the csl-stencil chunk-packing region
(Listing 4 of the paper) are provided: ``tensor.empty``,
``tensor.insert_slice`` and ``tensor.extract_slice``.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import Attribute, DenseArrayAttr
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Operation
from repro.ir.traits import Pure
from repro.ir.types import TensorType
from repro.ir.value import SSAValue


class EmptyOp(Operation):
    """Materialise an uninitialised tensor of the given type."""

    name = "tensor.empty"
    traits = (Pure,)

    def __init__(self, result_type: TensorType):
        super().__init__(result_types=[result_type])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class InsertSliceOp(Operation):
    """Insert a source tensor into a destination tensor at a static offset.

    The dynamic ``offset`` operand form (used for chunked packing, where the
    offset is the chunk index times the chunk size) carries the offset as an
    SSA operand instead of a static attribute.
    """

    name = "tensor.insert_slice"
    traits = (Pure,)

    def __init__(
        self,
        source: SSAValue,
        dest: SSAValue,
        offset: SSAValue | int,
        size: int,
    ):
        attributes: dict[str, Attribute] = {"static_size": DenseArrayAttr([size])}
        operands = [source, dest]
        if isinstance(offset, int):
            attributes["static_offset"] = DenseArrayAttr([offset])
        else:
            operands.append(offset)
        super().__init__(
            operands=operands,
            result_types=[dest.type],
            attributes=attributes,
        )

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def dest(self) -> SSAValue:
        return self.operands[1]

    @property
    def has_dynamic_offset(self) -> bool:
        return len(self.operands) > 2

    @property
    def offset(self) -> SSAValue | int:
        if self.has_dynamic_offset:
            return self.operands[2]
        attr = self.attributes["static_offset"]
        assert isinstance(attr, DenseArrayAttr)
        return int(attr[0])

    @property
    def size(self) -> int:
        attr = self.attributes["static_size"]
        assert isinstance(attr, DenseArrayAttr)
        return int(attr[0])

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if not isinstance(self.dest.type, TensorType):
            raise VerifyException("tensor.insert_slice destination must be a tensor")


class ExtractSliceOp(Operation):
    """Extract a 1-D slice from a tensor at a static offset."""

    name = "tensor.extract_slice"
    traits = (Pure,)

    def __init__(self, source: SSAValue, offset: int, size: int, result_type: TensorType):
        super().__init__(
            operands=[source],
            result_types=[result_type],
            attributes={
                "static_offset": DenseArrayAttr([offset]),
                "static_size": DenseArrayAttr([size]),
            },
        )

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def offset(self) -> int:
        attr = self.attributes["static_offset"]
        assert isinstance(attr, DenseArrayAttr)
        return int(attr[0])

    @property
    def size(self) -> int:
        attr = self.attributes["static_size"]
        assert isinstance(attr, DenseArrayAttr)
        return int(attr[0])

    @property
    def result(self) -> SSAValue:
        return self.results[0]
