"""The varith dialect: variadic arithmetic.

``varith.add``/``varith.mul`` fold a chain of binary additions or
multiplications into a single n-ary op (Section 5.7).  This makes it much
simpler to split computation into locally-processed vs remotely-received
parts, and enables ``varith-fuse-repeated-operands`` which turns repeated
additions of the same value into a multiplication by a constant.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import Attribute
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Operation
from repro.ir.traits import Pure
from repro.ir.value import SSAValue


class _VariadicOp(Operation):
    traits = (Pure,)

    def __init__(self, operands: Sequence[SSAValue], result_type: Attribute | None = None):
        operands = list(operands)
        if not operands:
            raise VerifyException(f"'{self.name}' requires at least one operand")
        if result_type is None:
            result_type = operands[0].type
        super().__init__(operands=operands, result_types=[result_type])

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if not self.operands:
            raise VerifyException(f"'{self.name}' requires at least one operand")


class AddOp(_VariadicOp):
    """n-ary addition: ``result = operands[0] + operands[1] + ...``."""

    name = "varith.add"
    python_op = "add"


class MulOp(_VariadicOp):
    """n-ary multiplication: ``result = operands[0] * operands[1] * ...``."""

    name = "varith.mul"
    python_op = "mul"
