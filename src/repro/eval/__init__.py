"""Evaluation harness: one module per table/figure of the paper (Section 6).

Every module exposes a ``compute_*`` function returning plain data rows and a
``format_*`` function rendering them as the text table/series the paper
reports.  ``repro.eval.report`` regenerates everything in one call (used by
``examples/reproduce_paper.py`` and the benchmark suite).
"""

from repro.eval import figure4, figure5, figure6, figure7, table1
from repro.eval.report import full_report

__all__ = ["figure4", "figure5", "figure6", "figure7", "table1", "full_report"]
