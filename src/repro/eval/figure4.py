"""Figure 4: WSE2 vs WSE3 throughput across benchmarks (large problem size).

The paper reports GPts/s for Jacobian (Flang), Diffusion (Devito), Seismic
(Cerebras) and UVKBE (PSyclone) at the 750×994 problem size, run for 100 000,
512, 100 000 and 1 iteration(s) respectively, on both machine generations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks.definitions import (
    LARGE,
    ProblemSize,
    benchmark_by_name,
)
from repro.wse.machine import WSE2, WSE3
from repro.wse.perf_model import estimate_performance

#: the four benchmarks shown in Figure 4 (Acoustic appears in Figure 6).
FIGURE4_BENCHMARKS = ("Jacobian", "Diffusion", "Seismic", "UVKBE")


@dataclass(frozen=True)
class Figure4Row:
    benchmark: str
    frontend: str
    wse2_gpts: float
    wse3_gpts: float
    wse2_tflops: float
    wse3_tflops: float

    @property
    def wse3_speedup(self) -> float:
        return self.wse3_gpts / self.wse2_gpts


def compute_figure4(
    size: ProblemSize = LARGE, executor: str | None = None
) -> list[Figure4Row]:
    rows = []
    for name in FIGURE4_BENCHMARKS:
        benchmark = benchmark_by_name(name)
        wse2 = estimate_performance(benchmark, WSE2, size, executor=executor)
        wse3 = estimate_performance(benchmark, WSE3, size, executor=executor)
        rows.append(
            Figure4Row(
                benchmark=benchmark.name,
                frontend=benchmark.frontend,
                wse2_gpts=wse2.gpts_per_second,
                wse3_gpts=wse3.gpts_per_second,
                wse2_tflops=wse2.tflops,
                wse3_tflops=wse3.tflops,
            )
        )
    return rows


def format_figure4(rows: list[Figure4Row] | None = None) -> str:
    rows = rows if rows is not None else compute_figure4()
    lines = [
        "Figure 4: WSE2 vs WSE3, large problem size (GPts/s)",
        f"{'benchmark':<12} {'frontend':<10} {'WSE2':>12} {'WSE3':>12} {'speedup':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<12} {row.frontend:<10} "
            f"{row.wse2_gpts:>12.1f} {row.wse3_gpts:>12.1f} "
            f"{row.wse3_speedup:>8.2f}x"
        )
    return "\n".join(lines)
