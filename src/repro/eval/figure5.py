"""Figure 5: generated vs hand-written 25-point seismic kernel.

The paper plots, for three problem sizes (100×100, 500×500, 750×994 with
z = 450), the speedup of three configurations relative to the hand-written
WSE2 kernel of Jacquelin et al.: the hand-written kernel itself (1.0), our
generated code on the WSE2, and our generated code on the WSE3.  Section 6.1
reports that the generated WSE2 code outperforms the hand-written kernel by
up to 7.9 % and that the WSE3 code outperforms the WSE2 code by up to 38.1 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks.definitions import PROBLEM_SIZES, ProblemSize, benchmark_by_name
from repro.wse.machine import WSE2, WSE3
from repro.wse.perf_model import (
    cycles_per_step,
    estimate_performance,
    handwritten_seismic_activity,
    measure_pe_activity,
)


@dataclass(frozen=True)
class Figure5Row:
    size: str
    handwritten_wse2_gpts: float
    ours_wse2_gpts: float
    ours_wse3_gpts: float

    @property
    def ours_wse2_speedup(self) -> float:
        return self.ours_wse2_gpts / self.handwritten_wse2_gpts

    @property
    def ours_wse3_speedup(self) -> float:
        return self.ours_wse3_gpts / self.handwritten_wse2_gpts

    @property
    def wse3_over_wse2(self) -> float:
        return self.ours_wse3_gpts / self.ours_wse2_gpts


def compute_figure5(
    sizes: tuple[ProblemSize, ...] = PROBLEM_SIZES, executor: str | None = None
) -> list[Figure5Row]:
    benchmark = benchmark_by_name("Seismic")

    generated_wse2 = measure_pe_activity(
        benchmark, WSE2, num_chunks=1, executor=executor
    )
    generated_wse3 = measure_pe_activity(
        benchmark, WSE3, num_chunks=1, executor=executor
    )
    handwritten = handwritten_seismic_activity(generated_wse2, benchmark.z_dim)

    rows = []
    for size in sizes:
        ours_wse2 = estimate_performance(
            benchmark, WSE2, size, activity=generated_wse2
        )
        ours_wse3 = estimate_performance(
            benchmark, WSE3, size, activity=generated_wse3
        )
        hand_wse2 = estimate_performance(benchmark, WSE2, size, activity=handwritten)
        rows.append(
            Figure5Row(
                size=f"{size.nx}x{size.ny}x{benchmark.z_dim}",
                handwritten_wse2_gpts=hand_wse2.gpts_per_second,
                ours_wse2_gpts=ours_wse2.gpts_per_second,
                ours_wse3_gpts=ours_wse3.gpts_per_second,
            )
        )
    return rows


def format_figure5(rows: list[Figure5Row] | None = None) -> str:
    rows = rows if rows is not None else compute_figure5()
    lines = [
        "Figure 5: 25-point seismic, speedup over the hand-written WSE2 kernel",
        f"{'size':<16} {'hand-written':>13} {'ours WSE2':>11} {'ours WSE3':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row.size:<16} {1.0:>13.3f} {row.ours_wse2_speedup:>11.3f} "
            f"{row.ours_wse3_speedup:>11.3f}"
        )
    return "\n".join(lines)
