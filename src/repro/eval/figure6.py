"""Figure 6: acoustic throughput, WSE3 vs 128×A100 vs 128 CPU nodes.

The paper reports the Devito acoustic benchmark on the WSE3 (large problem
size) against the MPI + OpenACC results on 128 A100 GPUs (Tursa, 1158³) and
MPI + OpenMP on 128 ARCHER2 nodes (1024³) from Bisbas et al.; the WSE3 is
around 14× faster than the GPU cluster and 20× faster than the CPU cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cpu_model import acoustic_on_archer2
from repro.baselines.gpu_model import acoustic_on_tursa
from repro.benchmarks.definitions import LARGE, benchmark_by_name
from repro.wse.machine import WSE3
from repro.wse.perf_model import estimate_performance


@dataclass(frozen=True)
class Figure6Row:
    system: str
    gpts_per_second: float


@dataclass(frozen=True)
class Figure6Result:
    rows: list[Figure6Row]

    @property
    def wse3_vs_gpu(self) -> float:
        return self._value("WSE3") / self._value("128xA100")

    @property
    def wse3_vs_cpu(self) -> float:
        return self._value("WSE3") / self._value("128 x dual EPYC 7742")

    def _value(self, system: str) -> float:
        for row in self.rows:
            if row.system == system:
                return row.gpts_per_second
        raise KeyError(system)


def compute_figure6(executor: str | None = None) -> Figure6Result:
    benchmark = benchmark_by_name("Acoustic")
    wse3 = estimate_performance(benchmark, WSE3, LARGE, executor=executor)
    gpu = acoustic_on_tursa()
    cpu = acoustic_on_archer2()
    rows = [
        Figure6Row("WSE3", wse3.gpts_per_second),
        Figure6Row("128xA100", gpu.gpts_per_second),
        Figure6Row("128 x dual EPYC 7742", cpu.gpts_per_second),
    ]
    return Figure6Result(rows)


def format_figure6(result: Figure6Result | None = None) -> str:
    result = result if result is not None else compute_figure6()
    lines = [
        "Figure 6: Acoustic benchmark throughput (GPts/s)",
        f"{'system':<24} {'GPts/s':>12}",
    ]
    for row in result.rows:
        lines.append(f"{row.system:<24} {row.gpts_per_second:>12.1f}")
    lines.append(
        f"WSE3 speedup: {result.wse3_vs_gpu:.1f}x vs 128 A100, "
        f"{result.wse3_vs_cpu:.1f}x vs 128 CPU nodes"
    )
    return "\n".join(lines)
