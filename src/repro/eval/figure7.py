"""Figure 7: roofline of the five benchmarks on the WSE3 plus Acoustic on A100.

Every WSE benchmark is placed twice — once with its arithmetic intensity
computed against PE-local memory traffic and once against fabric traffic —
under the WSE3's memory-bandwidth and fabric-bandwidth ceilings; the acoustic
benchmark is additionally placed under the A100's DRAM ceiling.  The paper's
finding is that all kernels are compute bound from local memory and all but
the Jacobian are compute bound even from the fabric, whereas the A100 run is
memory bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu_model import acoustic_on_tursa
from repro.baselines.roofline import (
    RooflineCeiling,
    RooflinePoint,
    a100_ceiling,
    fabric_intensity,
    memory_intensity,
    wse_fabric_ceiling,
    wse_memory_ceiling,
)
from repro.benchmarks.definitions import BENCHMARKS, LARGE, Benchmark
from repro.wse.machine import WSE3
from repro.wse.perf_model import estimate_performance


@dataclass(frozen=True)
class Figure7Data:
    ceilings: list[RooflineCeiling]
    points: list[RooflinePoint]

    def point(self, label: str) -> RooflinePoint:
        for point in self.points:
            if point.label == label:
                return point
        raise KeyError(label)


def _memory_arrays_touched(benchmark: Benchmark) -> int:
    """FP32 values moved through local memory per updated point: the stencil
    reads plus the accumulator update and the result write."""
    return benchmark.stencil_points + 2


def _fabric_values(benchmark: Benchmark) -> float:
    """Remote FP32 values consumed per updated point.

    With the column decomposition a PE receives one value per remote stencil
    point per updated cell of its column.
    """
    remote_points = benchmark.stencil_points - (
        1 + 2 * (4 if benchmark.stencil_points >= 25 else 2 if benchmark.stencil_points >= 13 else 1)
    )
    return max(remote_points, 1)


def compute_figure7(executor: str | None = None) -> Figure7Data:
    ceilings = [wse_memory_ceiling(WSE3), wse_fabric_ceiling(WSE3), a100_ceiling()]
    points: list[RooflinePoint] = []
    for benchmark in BENCHMARKS:
        estimate = estimate_performance(benchmark, WSE3, LARGE, executor=executor)
        flops = estimate.gpts_per_second * 1e9 * benchmark.flops_per_point
        points.append(
            RooflinePoint(
                label=f"{benchmark.name} (memory)",
                arithmetic_intensity=memory_intensity(
                    benchmark.flops_per_point, _memory_arrays_touched(benchmark)
                ),
                performance=flops,
            )
        )
        points.append(
            RooflinePoint(
                label=f"{benchmark.name} (fabric)",
                arithmetic_intensity=fabric_intensity(
                    benchmark.flops_per_point, _fabric_values(benchmark)
                ),
                performance=flops,
            )
        )

    acoustic = next(b for b in BENCHMARKS if b.name == "Acoustic")
    gpu = acoustic_on_tursa()
    points.append(
        RooflinePoint(
            label="Acoustic (A100)",
            arithmetic_intensity=acoustic.flops_per_point / 40.0,
            performance=gpu.gpts_per_second * 1e9 * acoustic.flops_per_point / 128,
        )
    )
    return Figure7Data(ceilings=ceilings, points=points)


def format_figure7(data: Figure7Data | None = None) -> str:
    data = data if data is not None else compute_figure7()
    lines = ["Figure 7: roofline placement (WSE3 + A100)"]
    for ceiling in data.ceilings:
        lines.append(
            f"  ceiling {ceiling.name:<22} peak={ceiling.peak_flops:.3e} FLOP/s "
            f"bw={ceiling.bandwidth:.3e} B/s ridge={ceiling.ridge_point():.3f}"
        )
    lines.append(f"  {'kernel':<22} {'AI [FLOP/B]':>12} {'perf [FLOP/s]':>15} {'bound':>9}")
    wse_memory = data.ceilings[0]
    wse_fabric = data.ceilings[1]
    a100 = data.ceilings[2]
    for point in data.points:
        if "(memory)" in point.label:
            ceiling = wse_memory
        elif "(fabric)" in point.label:
            ceiling = wse_fabric
        else:
            ceiling = a100
        bound = "compute" if point.is_compute_bound(ceiling) else "memory"
        lines.append(
            f"  {point.label:<22} {point.arithmetic_intensity:>12.3f} "
            f"{point.performance:>15.3e} {bound:>9}"
        )
    return "\n".join(lines)
