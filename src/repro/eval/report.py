"""Regenerate every table and figure of the evaluation in one call.

Every figure's calibration compiles run through the process-wide
:class:`~repro.service.service.CompileService`, which memoises compilation
results by content fingerprint — so the configurations shared between
figures (e.g. every WSE3 compile of Figures 6 and 7, or the Seismic compile
shared by Figure 4 and Table 1) are compiled once and served warm
thereafter.  The closing section of the report shows the cache counters.
"""

from __future__ import annotations

from repro.benchmarks.definitions import ALL_BENCHMARKS
from repro.eval.figure4 import format_figure4
from repro.eval.figure5 import format_figure5
from repro.eval.figure6 import format_figure6
from repro.eval.figure7 import format_figure7
from repro.eval.table1 import format_table1
from repro.frontends.common import BoundaryCondition
from repro.service.service import default_service
from repro.wse.executors import (
    available_executors,
    default_executor_name,
    executor_by_name,
)


def format_execution_backends() -> str:
    """The registered execution backends, with the active default marked.

    Every backend replays the same pre-compiled execution plan and is
    pinned bit-identical to the others by the golden equivalence tests, so
    the choice is purely a throughput/deployment decision.
    """
    active = default_executor_name()
    lines = ["Execution backends"]
    for name in available_executors():
        doc = (executor_by_name(name).__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        marker = "*" if name == active else " "
        lines.append(f"  {marker} {name:<12} {summary}")
    lines.append("  (* = active default; select with REPRO_EXECUTOR or "
                 "WseSimulator(executor=...))")
    return "\n".join(lines)


def format_boundary_modes() -> str:
    """The boundary-condition surface: supported modes and what each
    registered workload declares.

    Every mode is implemented by every execution backend (the golden
    equivalence tests pin the backends bit-identical per mode), so the
    support column is uniform by construction.
    """
    backends = ", ".join(available_executors())
    lines = [
        "Boundary conditions",
        f"  supported modes: {', '.join(BoundaryCondition.KINDS)} "
        f"(on backends: {backends})",
        f"  {'workload':<16} {'front-end':>10} {'boundary':>10}",
    ]
    for benchmark in ALL_BENCHMARKS:
        lines.append(
            f"  {benchmark.name:<16} {benchmark.frontend:>10} "
            f"{benchmark.boundary:>10}"
        )
    return "\n".join(lines)


def full_report(include_service_statistics: bool = True) -> str:
    """The complete evaluation as a text report.

    Calibration simulations run on the process-wide default execution
    backend (``REPRO_EXECUTOR``); the header names it so reports produced by
    different backends are distinguishable.
    """
    sections = [
        f"[simulator backend: {default_executor_name()}]",
        format_figure4(),
        format_figure5(),
        format_figure6(),
        format_figure7(),
        format_table1(),
        format_boundary_modes(),
        format_execution_backends(),
    ]
    if include_service_statistics:
        sections.append(default_service().format_statistics())
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - convenience entry point
    print(full_report())


if __name__ == "__main__":  # pragma: no cover
    main()
