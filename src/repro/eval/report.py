"""Regenerate every table and figure of the evaluation in one call.

Every figure's calibration compiles run through the process-wide
:class:`~repro.service.service.CompileService`, which memoises compilation
results by content fingerprint — so the configurations shared between
figures (e.g. every WSE3 compile of Figures 6 and 7, or the Seismic compile
shared by Figure 4 and Table 1) are compiled once and served warm
thereafter.  The closing section of the report shows the cache counters.
"""

from __future__ import annotations

from repro.eval.figure4 import format_figure4
from repro.eval.figure5 import format_figure5
from repro.eval.figure6 import format_figure6
from repro.eval.figure7 import format_figure7
from repro.eval.table1 import format_table1
from repro.service.service import default_service
from repro.wse.executors import default_executor_name


def full_report(include_service_statistics: bool = True) -> str:
    """The complete evaluation as a text report.

    Calibration simulations run on the process-wide default execution
    backend (``REPRO_EXECUTOR``); the header names it so reports produced by
    different backends are distinguishable.
    """
    sections = [
        f"[simulator backend: {default_executor_name()}]",
        format_figure4(),
        format_figure5(),
        format_figure6(),
        format_figure7(),
        format_table1(),
    ]
    if include_service_statistics:
        sections.append(default_service().format_statistics())
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - convenience entry point
    print(full_report())


if __name__ == "__main__":  # pragma: no cover
    main()
