"""Regenerate every table and figure of the evaluation in one call."""

from __future__ import annotations

from repro.eval.figure4 import format_figure4
from repro.eval.figure5 import format_figure5
from repro.eval.figure6 import format_figure6
from repro.eval.figure7 import format_figure7
from repro.eval.table1 import format_table1


def full_report() -> str:
    """The complete evaluation as a text report."""
    sections = [
        format_figure4(),
        format_figure5(),
        format_figure6(),
        format_figure7(),
        format_table1(),
    ]
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - convenience entry point
    print(full_report())


if __name__ == "__main__":  # pragma: no cover
    main()
