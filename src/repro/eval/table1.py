"""Table 1: lines-of-code comparison.

For every benchmark the paper reports the size of the generated CSL kernel,
the size of the entire CSL program (kernel + placement + communication +
host support) and the lines the user writes in the DSL with our approach.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.loc import LocReport, loc_report
from repro.benchmarks.definitions import BENCHMARKS, Benchmark
from repro.service.service import default_service
from repro.transforms.pipeline import PipelineOptions

#: the compile grid used to generate the counted CSL (the generated program
#: is identical for every grid extent; only the layout parameters change).
_LOC_GRID = 9


def _compile_for_loc(benchmark: Benchmark) -> LocReport:
    radius = 4 if benchmark.stencil_points >= 25 else 2
    grid = max(_LOC_GRID, 2 * radius + 1)
    program = benchmark.program(nx=grid, ny=grid, nz=benchmark.z_dim, time_steps=2)
    result = default_service().compile_ir(
        program,
        PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2),
    )
    return loc_report(benchmark, result)


def compute_table1() -> list[LocReport]:
    return [_compile_for_loc(benchmark) for benchmark in BENCHMARKS]


def format_table1(rows: list[LocReport] | None = None) -> str:
    rows = rows if rows is not None else compute_table1()
    lines = [
        "Table 1: Lines of Code",
        f"{'benchmark':<12} {'CSL kernel only':>16} {'CSL entire':>12} {'DSL & ours':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<12} {row.csl_kernel_only:>16} "
            f"{row.csl_entire:>12} {row.dsl_ours:>12}"
        )
    return "\n".join(lines)
