"""The shared schema of benchmark trajectory files (``BENCH_*.json``).

Every benchmark that records a wall-time trajectory writes one
``BENCH_<name>.json`` file **at the repository root** (they are gitignored:
timings are host-specific, and CI uploads them as artifacts instead).  All
files share one record schema so trend tooling can concatenate them:

``{"name": str, "grid": "WxH", "executor": str, "seconds": float,
"speedup": float}``

plus optional fields:

``"cache": "cold" | "warm"`` — whether the measured run paid one-time
setup (``cold``: e.g. the ``compiled`` backend generating its kernel) or
reused it (``warm``); records without the field measured a backend with no
cache distinction.

``"r": int`` — the temporal block depth (delivery rounds fused per kernel
invocation) the run was measured at; absent means unblocked (R = 1).

``"day": "YYYY-MM-DD"`` — the day an *online* observation was recorded
(the ``auto`` dispatcher's opt-in learning rows); one row per
(name, grid, executor, day) keeps the file bounded while still tracking
drift.  Benchmark-written rows carry no day: they replace wholesale.

``speedup`` is relative to the record's baseline executor (1.0 for the
baseline itself); ``executor`` names the execution backend measured, or a
stage label (e.g. ``run-service``) for non-simulator benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path

#: the exact keys every trajectory record must carry.
RECORD_KEYS = ("name", "grid", "executor", "seconds", "speedup")

#: optional keys a record may additionally carry; a tuple enumerates the
#: legal values, a type admits any instance of it.
OPTIONAL_KEYS = {"cache": ("cold", "warm"), "r": int, "day": str}

#: bump when the record shape changes.
TRAJECTORY_SCHEMA_VERSION = 1


def make_record(
    name: str,
    grid: str,
    executor: str,
    seconds: float,
    speedup: float,
    cache: str | None = None,
    r: int | None = None,
    day: str | None = None,
) -> dict:
    """One schema-conforming trajectory record."""
    record = {
        "name": name,
        "grid": grid,
        "executor": executor,
        "seconds": round(float(seconds), 6),
        "speedup": round(float(speedup), 3),
    }
    if cache is not None:
        record["cache"] = cache
    if r is not None:
        record["r"] = int(r)
    if day is not None:
        record["day"] = day
    return record


def write_trajectory(path: str | Path, records: list[dict]) -> Path:
    """Validate and write one ``BENCH_*.json`` trajectory file.

    The file name must match ``BENCH_*.json`` and every record must carry
    exactly the shared keys — a drive-by extra field would silently fork
    the schema the satellite tooling expects.
    """
    path = Path(path)
    if not (path.name.startswith("BENCH_") and path.name.endswith(".json")):
        raise ValueError(
            f"trajectory files are named BENCH_*.json, got {path.name!r}"
        )
    for record in records:
        required = {key for key in record if key not in OPTIONAL_KEYS}
        if tuple(sorted(required)) != tuple(sorted(RECORD_KEYS)):
            raise ValueError(
                f"trajectory record keys {sorted(record)} do not match the "
                f"shared schema {sorted(RECORD_KEYS)}"
            )
        for key, legal in OPTIONAL_KEYS.items():
            if key not in record:
                continue
            if isinstance(legal, tuple):
                if record[key] not in legal:
                    raise ValueError(
                        f"trajectory record {key}={record[key]!r} is not "
                        f"one of {legal}"
                    )
            elif not isinstance(record[key], legal):
                raise ValueError(
                    f"trajectory record {key}={record[key]!r} is not "
                    f"a {legal.__name__}"
                )
    payload = {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "records": records,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def read_trajectory(path: str | Path) -> list[dict]:
    """Read a trajectory file back, validating the schema version."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema_version") != TRAJECTORY_SCHEMA_VERSION:
        raise ValueError(
            f"trajectory schema {data.get('schema_version')!r} does not match "
            f"current version {TRAJECTORY_SCHEMA_VERSION}"
        )
    return data["records"]


def merge_trajectory(path: str | Path, records: list[dict]) -> Path:
    """Merge new records into a trajectory file by
    ``(name, grid, executor, cache, r, day)``.

    Existing records with the same key are replaced, everything else is
    preserved — so independent benchmarks (or a partial rerun of one) each
    refresh their own rows without clobbering the rest of the file (a
    backend's cold and warm measurements are distinct rows, as are rows at
    different temporal block depths; online observations replace only the
    same day's row).  An unreadable or stale-schema file is simply
    rewritten.
    """
    path = Path(path)
    key = lambda record: (
        record["name"],
        record["grid"],
        record["executor"],
        record.get("cache"),
        record.get("r"),
        record.get("day"),
    )
    try:
        existing = read_trajectory(path)
    except (OSError, ValueError, KeyError):
        existing = []
    fresh_keys = {key(record) for record in records}
    merged = [r for r in existing if key(r) not in fresh_keys] + list(records)
    return write_trajectory(path, merged)
