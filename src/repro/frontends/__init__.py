"""Front-ends that emit the stencil dialect.

The paper's central claim is front-end agnosticism: once a DSL emits the
``stencil`` dialect, the pipeline targets the WSE without user-code changes.
We provide three small front-ends mirroring the paper's three:

* :mod:`repro.frontends.devito_like` — a symbolic finite-difference DSL in
  the spirit of Devito;
* :mod:`repro.frontends.flang_like` — a Fortran loop-nest parser in the
  spirit of the Flang stencil-extraction pass;
* :mod:`repro.frontends.psyclone_like` — a kernel-metadata DSL in the spirit
  of PSyclone.

All three lower onto the shared :class:`repro.frontends.common.StencilProgram`
description, from which :func:`repro.frontends.common.build_stencil_module`
emits the stencil-dialect IR.
"""

from repro.frontends.common import (
    Add,
    Constant,
    FieldAccess,
    FieldDecl,
    Mul,
    StencilEquation,
    StencilProgram,
    build_stencil_module,
)

__all__ = [
    "Add",
    "Constant",
    "FieldAccess",
    "FieldDecl",
    "Mul",
    "StencilEquation",
    "StencilProgram",
    "build_stencil_module",
]
