"""Front-end-neutral stencil program description and stencil-dialect emission.

Every front-end lowers its input onto a :class:`StencilProgram`: a set of
3-D fields, a list of stencil equations (expression trees over neighbouring
accesses and constants) and a time-step count.  :func:`build_stencil_module`
then emits the corresponding stencil-dialect IR — the common entry point of
the compilation pipeline (Listing 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.dialects import arith, func, scf, stencil
from repro.dialects.builtin import ModuleOp
from repro.ir import Block, Builder, Region, f32
from repro.ir.types import FunctionType, IndexType
from repro.ir.value import SSAValue


# --------------------------------------------------------------------------- #
# Expression trees
# --------------------------------------------------------------------------- #


class Expression:
    """Base class of stencil expression trees."""

    def __add__(self, other: "ExpressionLike") -> "Add":
        return Add([self, as_expression(other)])

    __radd__ = __add__

    def __mul__(self, other: "ExpressionLike") -> "Mul":
        return Mul([self, as_expression(other)])

    __rmul__ = __mul__

    def __sub__(self, other: "ExpressionLike") -> "Add":
        return Add([self, Mul([as_expression(other), Constant(-1.0)])])

    def accesses(self) -> list["FieldAccess"]:
        """All field accesses in the expression, in evaluation order."""
        raise NotImplementedError

    def canonical(self) -> list:
        """A process-stable, JSON-serialisable form of the expression.

        Used by :mod:`repro.service.fingerprint` to content-address compiled
        artifacts: two structurally identical expressions must canonicalise
        to the same value in every Python process (no ``id()``, no set
        iteration order, no hash randomisation).
        """
        raise NotImplementedError


ExpressionLike = Union["Expression", int, float]


def as_expression(value: ExpressionLike) -> "Expression":
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float)):
        return Constant(float(value))
    raise TypeError(f"cannot convert {value!r} to a stencil expression")


@dataclass
class Constant(Expression):
    """A floating-point literal."""

    value: float

    def accesses(self) -> list["FieldAccess"]:
        return []

    def canonical(self) -> list:
        return ["const", self.value]


@dataclass
class FieldAccess(Expression):
    """Read a field at a constant offset from the current cell."""

    field: str
    offset: tuple[int, int, int]

    def accesses(self) -> list["FieldAccess"]:
        return [self]

    def canonical(self) -> list:
        return ["access", self.field, list(self.offset)]


@dataclass
class Add(Expression):
    """Sum of terms."""

    terms: list[Expression]

    def accesses(self) -> list["FieldAccess"]:
        return [access for term in self.terms for access in term.accesses()]

    def canonical(self) -> list:
        return ["add", [term.canonical() for term in self.terms]]


@dataclass
class Mul(Expression):
    """Product of factors."""

    factors: list[Expression]

    def accesses(self) -> list["FieldAccess"]:
        return [access for factor in self.factors for access in factor.accesses()]

    def canonical(self) -> list:
        return ["mul", [factor.canonical() for factor in self.factors]]


# --------------------------------------------------------------------------- #
# Program description
# --------------------------------------------------------------------------- #


@dataclass
class FieldDecl:
    """A 3-D field: interior size plus halo width in each dimension."""

    name: str
    shape: tuple[int, int, int]
    halo: tuple[int, int, int] = (1, 1, 1)

    def bounds(self) -> list[tuple[int, int]]:
        return [(-h, n + h) for n, h in zip(self.shape, self.halo)]

    def field_type(self) -> stencil.FieldType:
        return stencil.FieldType(self.bounds(), f32)

    def canonical(self) -> list:
        return ["field", self.name, list(self.shape), list(self.halo)]


@dataclass
class StencilEquation:
    """``output[i, j, k] = expression`` evaluated over the interior."""

    output: str
    expression: Expression

    def reads(self) -> list[str]:
        return sorted({access.field for access in self.expression.accesses()})

    def canonical(self) -> list:
        return ["eq", self.output, self.expression.canonical()]


@dataclass
class StencilProgram:
    """A complete stencil program: fields, equations and a time loop."""

    name: str
    fields: list[FieldDecl]
    equations: list[StencilEquation]
    time_steps: int = 1

    def field(self, name: str) -> FieldDecl:
        for decl in self.fields:
            if decl.name == name:
                return decl
        raise KeyError(f"unknown field '{name}'")

    @property
    def interior_shape(self) -> tuple[int, int, int]:
        return self.fields[0].shape

    def canonical(self) -> dict:
        """Process-stable, JSON-serialisable description of the program.

        This is the program half of the artifact fingerprint
        (:mod:`repro.service.fingerprint`); field and equation order are
        preserved because both influence the emitted IR.
        """
        return {
            "name": self.name,
            "fields": [decl.canonical() for decl in self.fields],
            "equations": [equation.canonical() for equation in self.equations],
            "time_steps": self.time_steps,
        }


# --------------------------------------------------------------------------- #
# Stencil dialect emission
# --------------------------------------------------------------------------- #


def build_stencil_module(program: StencilProgram) -> ModuleOp:
    """Emit a stencil-dialect module for the program.

    The emitted structure is the paper's canonical entry form: a function
    whose arguments are the fields, containing an ``scf.for`` time-step loop
    whose body is a sequence of load / apply / store groups, one per equation.
    """
    field_types = [decl.field_type() for decl in program.fields]
    function_type = FunctionType(field_types, [])
    kernel = func.FuncOp(program.name, function_type)
    for decl, arg in zip(program.fields, kernel.args):
        arg.name_hint = decl.name
    field_args: dict[str, SSAValue] = {
        decl.name: arg for decl, arg in zip(program.fields, kernel.args)
    }

    builder = Builder.at_end(kernel.body.block)
    lower = builder.insert(arith.ConstantOp(0, IndexType()))
    upper = builder.insert(arith.ConstantOp(program.time_steps, IndexType()))
    step = builder.insert(arith.ConstantOp(1, IndexType()))

    loop = scf.ForOp(lower.results[0], upper.results[0], step.results[0])
    builder.insert(loop)
    builder.insert(func.ReturnOp())

    loop_builder = Builder.at_end(loop.body.block)
    for equation in program.equations:
        _emit_equation(program, equation, field_args, loop_builder)
    loop_builder.insert(scf.YieldOp())

    return ModuleOp([kernel])


def _emit_equation(
    program: StencilProgram,
    equation: StencilEquation,
    field_args: dict[str, SSAValue],
    builder: Builder,
) -> None:
    read_fields = equation.reads()
    output_decl = program.field(equation.output)

    temps: dict[str, SSAValue] = {}
    for name in read_fields:
        decl = program.field(name)
        temp_type = stencil.TempType(decl.bounds(), f32)
        load = stencil.LoadOp(field_args[name], temp_type)
        builder.insert(load)
        temps[name] = load.results[0]

    result_bounds = [(0, n) for n in output_decl.shape]
    result_type = stencil.TempType(result_bounds, f32)

    apply_op = stencil.ApplyOp(
        operands=[temps[name] for name in read_fields],
        result_types=[result_type],
    )
    builder.insert(apply_op)

    block = apply_op.body.block
    arg_of_field = {name: block.args[i] for i, name in enumerate(read_fields)}
    body_builder = Builder.at_end(block)
    result_value = _emit_expression(equation.expression, arg_of_field, body_builder)
    body_builder.insert(stencil.ReturnOp([result_value]))

    store = stencil.StoreOp(
        apply_op.results[0],
        field_args[equation.output],
        stencil.StencilBounds(result_bounds),
    )
    builder.insert(store)


def _emit_expression(
    expression: Expression,
    arg_of_field: dict[str, SSAValue],
    builder: Builder,
) -> SSAValue:
    if isinstance(expression, Constant):
        op = builder.insert(arith.ConstantOp(expression.value, f32))
        return op.results[0]
    if isinstance(expression, FieldAccess):
        op = builder.insert(
            stencil.AccessOp(arg_of_field[expression.field], expression.offset, f32)
        )
        return op.results[0]
    if isinstance(expression, Add):
        values = [_emit_expression(term, arg_of_field, builder) for term in expression.terms]
        result = values[0]
        for value in values[1:]:
            result = builder.insert(arith.AddfOp(result, value)).results[0]
        return result
    if isinstance(expression, Mul):
        values = [
            _emit_expression(factor, arg_of_field, builder) for factor in expression.factors
        ]
        result = values[0]
        for value in values[1:]:
            result = builder.insert(arith.MulfOp(result, value)).results[0]
        return result
    raise TypeError(f"unsupported expression node {expression!r}")
