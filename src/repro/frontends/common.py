"""Front-end-neutral stencil program description and stencil-dialect emission.

Every front-end lowers its input onto a :class:`StencilProgram`: a set of
3-D fields, a list of stencil equations (expression trees over neighbouring
accesses and constants), a time-step count and a :class:`BoundaryCondition`
deciding what halo reads see beyond the domain edge.
:func:`build_stencil_module` then emits the corresponding stencil-dialect
IR — the common entry point of the compilation pipeline (Listing 2 of the
paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.dialects import arith, func, scf, stencil
from repro.dialects.builtin import ModuleOp
from repro.ir import Block, Builder, Region, f32
from repro.ir.types import FunctionType, IndexType
from repro.ir.value import SSAValue


# --------------------------------------------------------------------------- #
# Expression trees
# --------------------------------------------------------------------------- #


class Expression:
    """Base class of stencil expression trees."""

    def __add__(self, other: "ExpressionLike") -> "Add":
        return Add([self, as_expression(other)])

    __radd__ = __add__

    def __mul__(self, other: "ExpressionLike") -> "Mul":
        return Mul([self, as_expression(other)])

    __rmul__ = __mul__

    def __sub__(self, other: "ExpressionLike") -> "Add":
        return Add([self, Mul([as_expression(other), Constant(-1.0)])])

    def accesses(self) -> list["FieldAccess"]:
        """All field accesses in the expression, in evaluation order."""
        raise NotImplementedError

    def canonical(self) -> list:
        """A process-stable, JSON-serialisable form of the expression.

        Used by :mod:`repro.service.fingerprint` to content-address compiled
        artifacts: two structurally identical expressions must canonicalise
        to the same value in every Python process (no ``id()``, no set
        iteration order, no hash randomisation).
        """
        raise NotImplementedError


ExpressionLike = Union["Expression", int, float]


def as_expression(value: ExpressionLike) -> "Expression":
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float)):
        return Constant(float(value))
    raise TypeError(f"cannot convert {value!r} to a stencil expression")


@dataclass
class Constant(Expression):
    """A floating-point literal."""

    value: float

    def accesses(self) -> list["FieldAccess"]:
        return []

    def canonical(self) -> list:
        return ["const", self.value]


@dataclass
class FieldAccess(Expression):
    """Read a field at a constant offset from the current cell.

    ``function`` optionally records the front-end object that created the
    access (e.g. a Devito-like ``TimeFunction``), so lowering can validate
    grid metadata (boundary agreement, declared orders) across *all*
    accessed functions, not just written ones.  It never participates in
    equality or the canonical form — two structurally identical accesses
    are the same access wherever they came from.
    """

    field: str
    offset: tuple[int, int, int]
    # `field: str` above is only an annotation, so `field` here still
    # resolves to dataclasses.field.
    function: object | None = field(default=None, compare=False, repr=False)

    def accesses(self) -> list["FieldAccess"]:
        return [self]

    def canonical(self) -> list:
        return ["access", self.field, list(self.offset)]


@dataclass
class Add(Expression):
    """Sum of terms."""

    terms: list[Expression]

    def accesses(self) -> list["FieldAccess"]:
        return [access for term in self.terms for access in term.accesses()]

    def canonical(self) -> list:
        return ["add", [term.canonical() for term in self.terms]]


@dataclass
class Mul(Expression):
    """Product of factors."""

    factors: list[Expression]

    def accesses(self) -> list["FieldAccess"]:
        return [access for factor in self.factors for access in factor.accesses()]

    def canonical(self) -> list:
        return ["mul", [factor.canonical() for factor in self.factors]]


# --------------------------------------------------------------------------- #
# Boundary conditions
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class BoundaryCondition:
    """What a halo read sees beyond the edge of the problem domain.

    Three modes, matching the stencil DSLs the paper fronts:

    * ``dirichlet(value)`` — out-of-domain cells hold a fixed ``value``
      (``dirichlet(0.0)`` is the historical default of this reproduction);
    * ``periodic`` — the domain wraps: index ``-1`` reads interior ``n - 1``;
    * ``reflect`` — the domain mirrors at the edge with the edge cell
      repeated (NumPy's ``symmetric`` padding, the zero-flux ghost cell of a
      reflective/Neumann boundary): index ``-1`` reads interior ``0``.

    Boundary modes apply to the fabric-decomposed (x, y) dimensions, where
    the halo is refreshed by the chunked exchange each time step.  The z
    halo lives inside each PE's column: it is *initialised* according to the
    mode when fields are allocated and then stays static (there is no z
    exchange on the fabric).
    """

    kind: str
    value: float = 0.0

    #: the supported modes, in canonical order.
    KINDS = ("dirichlet", "periodic", "reflect")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(
                f"unknown boundary kind {self.kind!r}: expected one of "
                f"{', '.join(self.KINDS)}"
            )
        if self.kind != "dirichlet" and self.value != 0.0:
            raise ValueError(
                f"boundary mode '{self.kind}' takes no value "
                f"(got {self.value!r})"
            )

    # -- constructors ---------------------------------------------------- #

    @classmethod
    def dirichlet(cls, value: float = 0.0) -> "BoundaryCondition":
        return cls("dirichlet", float(value))

    @classmethod
    def periodic(cls) -> "BoundaryCondition":
        return cls("periodic")

    @classmethod
    def reflect(cls) -> "BoundaryCondition":
        return cls("reflect")

    @classmethod
    def parse(cls, spec: "BoundaryCondition | str") -> "BoundaryCondition":
        """Build from a compact spec: ``periodic``, ``reflect``,
        ``dirichlet`` or ``dirichlet:VALUE``."""
        if isinstance(spec, BoundaryCondition):
            return spec
        kind, _, value_text = str(spec).strip().partition(":")
        kind = kind.strip().lower()
        if kind not in cls.KINDS:
            raise ValueError(
                f"unknown boundary kind {kind!r}: expected one of "
                f"{', '.join(cls.KINDS)}"
            )
        if kind == "dirichlet":
            return cls.dirichlet(float(value_text) if value_text.strip() else 0.0)
        if value_text.strip():
            raise ValueError(f"boundary mode '{kind}' takes no value")
        return cls(kind)

    # -- canonical / display --------------------------------------------- #

    @property
    def spec(self) -> str:
        """The compact one-token form accepted by :meth:`parse`."""
        if self.kind == "dirichlet":
            return f"dirichlet:{self.value!r}"
        return self.kind

    def canonical(self) -> list:
        """Process-stable, JSON-serialisable form (for the fingerprint)."""
        return ["boundary", self.kind, self.value]

    # -- halo index semantics -------------------------------------------- #

    def fold(self, index: int, extent: int) -> int | None:
        """Map a (possibly out-of-domain) grid index into ``[0, extent)``.

        Returns the in-domain index the halo read resolves to, or ``None``
        for a Dirichlet boundary (the read sees the constant fill instead).
        Both execution backends share this one definition; the NumPy oracle
        deliberately does *not* — it implements the same semantics
        independently through ``np.pad`` modes, which is what makes its
        agreement with the backends evidence rather than tautology.
        """
        if 0 <= index < extent:
            return index
        if self.kind == "periodic":
            return index % extent
        if self.kind == "reflect":
            period = 2 * extent
            folded = index % period
            return folded if folded < extent else period - 1 - folded
        return None


# --------------------------------------------------------------------------- #
# Program description
# --------------------------------------------------------------------------- #


@dataclass
class FieldDecl:
    """A 3-D field: interior size plus halo width in each dimension."""

    name: str
    shape: tuple[int, int, int]
    halo: tuple[int, int, int] = (1, 1, 1)

    def bounds(self) -> list[tuple[int, int]]:
        return [(-h, n + h) for n, h in zip(self.shape, self.halo)]

    def field_type(self) -> stencil.FieldType:
        return stencil.FieldType(self.bounds(), f32)

    def canonical(self) -> list:
        return ["field", self.name, list(self.shape), list(self.halo)]


@dataclass
class StencilEquation:
    """``output[i, j, k] = expression`` evaluated over the interior."""

    output: str
    expression: Expression

    def reads(self) -> list[str]:
        return sorted({access.field for access in self.expression.accesses()})

    def canonical(self) -> list:
        return ["eq", self.output, self.expression.canonical()]


@dataclass
class StencilProgram:
    """A complete stencil program: fields, equations and a time loop."""

    name: str
    fields: list[FieldDecl]
    equations: list[StencilEquation]
    time_steps: int = 1
    #: halo semantics at the edge of the problem domain.
    boundary: BoundaryCondition = field(
        default_factory=BoundaryCondition.dirichlet
    )

    def field(self, name: str) -> FieldDecl:
        for decl in self.fields:
            if decl.name == name:
                return decl
        raise KeyError(f"unknown field '{name}'")

    @property
    def interior_shape(self) -> tuple[int, int, int]:
        return self.fields[0].shape

    def canonical(self) -> dict:
        """Process-stable, JSON-serialisable description of the program.

        This is the program half of the artifact fingerprint
        (:mod:`repro.service.fingerprint`); field and equation order are
        preserved because both influence the emitted IR.
        """
        return {
            "name": self.name,
            "fields": [decl.canonical() for decl in self.fields],
            "equations": [equation.canonical() for equation in self.equations],
            "time_steps": self.time_steps,
            "boundary": self.boundary.canonical(),
        }


# --------------------------------------------------------------------------- #
# Stencil dialect emission
# --------------------------------------------------------------------------- #


def build_stencil_module(program: StencilProgram) -> ModuleOp:
    """Emit a stencil-dialect module for the program.

    The emitted structure is the paper's canonical entry form: a function
    whose arguments are the fields, containing an ``scf.for`` time-step loop
    whose body is a sequence of load / apply / store groups, one per equation.
    """
    field_types = [decl.field_type() for decl in program.fields]
    function_type = FunctionType(field_types, [])
    kernel = func.FuncOp(program.name, function_type)
    for decl, arg in zip(program.fields, kernel.args):
        arg.name_hint = decl.name
    field_args: dict[str, SSAValue] = {
        decl.name: arg for decl, arg in zip(program.fields, kernel.args)
    }

    builder = Builder.at_end(kernel.body.block)
    lower = builder.insert(arith.ConstantOp(0, IndexType()))
    upper = builder.insert(arith.ConstantOp(program.time_steps, IndexType()))
    step = builder.insert(arith.ConstantOp(1, IndexType()))

    loop = scf.ForOp(lower.results[0], upper.results[0], step.results[0])
    builder.insert(loop)
    builder.insert(func.ReturnOp())

    loop_builder = Builder.at_end(loop.body.block)
    for equation in program.equations:
        _emit_equation(program, equation, field_args, loop_builder)
    loop_builder.insert(scf.YieldOp())

    return ModuleOp([kernel])


def _emit_equation(
    program: StencilProgram,
    equation: StencilEquation,
    field_args: dict[str, SSAValue],
    builder: Builder,
) -> None:
    read_fields = equation.reads()
    output_decl = program.field(equation.output)

    temps: dict[str, SSAValue] = {}
    for name in read_fields:
        decl = program.field(name)
        temp_type = stencil.TempType(decl.bounds(), f32)
        load = stencil.LoadOp(field_args[name], temp_type)
        builder.insert(load)
        temps[name] = load.results[0]

    result_bounds = [(0, n) for n in output_decl.shape]
    result_type = stencil.TempType(result_bounds, f32)

    apply_op = stencil.ApplyOp(
        operands=[temps[name] for name in read_fields],
        result_types=[result_type],
    )
    builder.insert(apply_op)

    block = apply_op.body.block
    arg_of_field = {name: block.args[i] for i, name in enumerate(read_fields)}
    body_builder = Builder.at_end(block)
    result_value = _emit_expression(equation.expression, arg_of_field, body_builder)
    body_builder.insert(stencil.ReturnOp([result_value]))

    store = stencil.StoreOp(
        apply_op.results[0],
        field_args[equation.output],
        stencil.StencilBounds(result_bounds),
    )
    builder.insert(store)


def _emit_expression(
    expression: Expression,
    arg_of_field: dict[str, SSAValue],
    builder: Builder,
) -> SSAValue:
    if isinstance(expression, Constant):
        op = builder.insert(arith.ConstantOp(expression.value, f32))
        return op.results[0]
    if isinstance(expression, FieldAccess):
        op = builder.insert(
            stencil.AccessOp(arg_of_field[expression.field], expression.offset, f32)
        )
        return op.results[0]
    if isinstance(expression, Add):
        values = [_emit_expression(term, arg_of_field, builder) for term in expression.terms]
        result = values[0]
        for value in values[1:]:
            result = builder.insert(arith.AddfOp(result, value)).results[0]
        return result
    if isinstance(expression, Mul):
        values = [
            _emit_expression(factor, arg_of_field, builder) for factor in expression.factors
        ]
        result = values[0]
        for value in values[1:]:
            result = builder.insert(arith.MulfOp(result, value)).results[0]
        return result
    raise TypeError(f"unsupported expression node {expression!r}")
