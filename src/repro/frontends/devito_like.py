"""A symbolic finite-difference front-end in the spirit of Devito.

Users declare a :class:`Grid`, define :class:`TimeFunction` symbols on it and
write update equations with Python operator overloading; ``Operator`` lowers
the equations onto the shared :class:`~repro.frontends.common.StencilProgram`
description (and from there to the stencil dialect), exactly as Devito lowers
SymPy expressions onto the stencil dialect in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontends.common import (
    Add,
    Constant,
    Expression,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
    as_expression,
)


@dataclass
class Grid:
    """A 3-D cartesian grid with uniform halo."""

    shape: tuple[int, int, int]
    halo: tuple[int, int, int] = (1, 1, 1)


class TimeFunction:
    """A field defined on a grid, supporting shifted accesses.

    ``u[dx, dy, dz]`` builds an access at a constant offset; arithmetic on
    those accesses builds the update expression.
    """

    def __init__(self, name: str, grid: Grid, space_order: int = 1):
        self.name = name
        self.grid = grid
        self.space_order = space_order

    def __getitem__(self, offset: tuple[int, int, int]) -> FieldAccess:
        if len(offset) != 3:
            raise ValueError("TimeFunction accesses take a 3-component offset")
        return FieldAccess(self.name, tuple(int(c) for c in offset))

    @property
    def center(self) -> FieldAccess:
        return self[0, 0, 0]

    def dx2(self) -> Expression:
        """Second central difference along x (unit spacing)."""
        return self[1, 0, 0] + self[-1, 0, 0] + self.center * Constant(-2.0)

    def dy2(self) -> Expression:
        return self[0, 1, 0] + self[0, -1, 0] + self.center * Constant(-2.0)

    def dz2(self) -> Expression:
        return self[0, 0, 1] + self[0, 0, -1] + self.center * Constant(-2.0)

    def laplace(self) -> Expression:
        """The 7-point Laplacian."""
        return self.dx2() + self.dy2() + self.dz2()

    def laplace_high_order(self, radius: int, coefficients: list[float]) -> Expression:
        """A star-shaped high-order Laplacian of the given radius.

        ``coefficients[0]`` weights the centre point; ``coefficients[d]``
        weights the two neighbours at distance ``d`` along each axis.
        """
        if len(coefficients) != radius + 1:
            raise ValueError("need one coefficient per distance (plus the centre)")
        terms: list[Expression] = [self.center * Constant(coefficients[0])]
        for distance in range(1, radius + 1):
            weight = Constant(coefficients[distance])
            for axis in range(3):
                offset = [0, 0, 0]
                offset[axis] = distance
                terms.append(self[tuple(offset)] * weight)
                offset[axis] = -distance
                terms.append(self[tuple(offset)] * weight)
        return Add(terms)

    @property
    def halo(self) -> tuple[int, int, int]:
        order = max(1, self.space_order)
        return (order, order, order)


@dataclass
class Eq:
    """An update equation ``target <- expression``."""

    target: TimeFunction
    expression: Expression


class Operator:
    """Collects equations and lowers them to a stencil program."""

    def __init__(self, equations: list[Eq], name: str = "devito_kernel",
                 time_steps: int = 1):
        self.equations = equations
        self.name = name
        self.time_steps = time_steps

    def to_stencil_program(self) -> StencilProgram:
        fields: dict[str, FieldDecl] = {}
        for equation in self.equations:
            target = equation.target
            fields.setdefault(
                target.name,
                FieldDecl(target.name, target.grid.shape, target.halo),
            )
            for access in equation.expression.accesses():
                if access.field not in fields:
                    fields[access.field] = FieldDecl(
                        access.field, target.grid.shape, target.halo
                    )
        program_equations = [
            StencilEquation(equation.target.name, as_expression(equation.expression))
            for equation in self.equations
        ]
        return StencilProgram(
            name=self.name,
            fields=list(fields.values()),
            equations=program_equations,
            time_steps=self.time_steps,
        )
