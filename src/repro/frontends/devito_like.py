"""A symbolic finite-difference front-end in the spirit of Devito.

Users declare a :class:`Grid`, define :class:`TimeFunction` symbols on it and
write update equations with Python operator overloading; ``Operator`` lowers
the equations onto the shared :class:`~repro.frontends.common.StencilProgram`
description (and from there to the stencil dialect), exactly as Devito lowers
SymPy expressions onto the stencil dialect in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontends.common import (
    Add,
    BoundaryCondition,
    Constant,
    Expression,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
    as_expression,
)


@dataclass
class Grid:
    """A 3-D cartesian grid with uniform halo and a boundary condition."""

    shape: tuple[int, int, int]
    halo: tuple[int, int, int] = (1, 1, 1)
    boundary: BoundaryCondition = field(
        default_factory=BoundaryCondition.dirichlet
    )


class TimeFunction:
    """A field defined on a grid, supporting shifted accesses.

    ``u[dx, dy, dz]`` builds an access at a constant offset; arithmetic on
    those accesses builds the update expression.  Each access remembers the
    function that made it (``access.function``), so ``Operator`` can widen
    halos from the offsets a program *actually* uses and check that every
    accessed grid — not just the written ones — agrees on the boundary
    condition.
    """

    def __init__(self, name: str, grid: Grid, space_order: int = 1):
        self.name = name
        self.grid = grid
        self.space_order = space_order

    def __getitem__(self, offset: tuple[int, int, int]) -> FieldAccess:
        if len(offset) != 3:
            raise ValueError("TimeFunction accesses take a 3-component offset")
        return FieldAccess(
            self.name, tuple(int(c) for c in offset), function=self
        )

    @property
    def center(self) -> FieldAccess:
        return self[0, 0, 0]

    def dx2(self) -> Expression:
        """Second central difference along x (unit spacing)."""
        return self[1, 0, 0] + self[-1, 0, 0] + self.center * Constant(-2.0)

    def dy2(self) -> Expression:
        return self[0, 1, 0] + self[0, -1, 0] + self.center * Constant(-2.0)

    def dz2(self) -> Expression:
        return self[0, 0, 1] + self[0, 0, -1] + self.center * Constant(-2.0)

    def laplace(self) -> Expression:
        """The 7-point Laplacian."""
        return self.dx2() + self.dy2() + self.dz2()

    def laplace_high_order(self, radius: int, coefficients: list[float]) -> Expression:
        """A star-shaped high-order Laplacian of the given radius.

        ``coefficients[0]`` weights the centre point; ``coefficients[d]``
        weights the two neighbours at distance ``d`` along each axis.
        """
        if len(coefficients) != radius + 1:
            raise ValueError("need one coefficient per distance (plus the centre)")
        terms: list[Expression] = [self.center * Constant(coefficients[0])]
        for distance in range(1, radius + 1):
            weight = Constant(coefficients[distance])
            for axis in range(3):
                offset = [0, 0, 0]
                offset[axis] = distance
                terms.append(self[tuple(offset)] * weight)
                offset[axis] = -distance
                terms.append(self[tuple(offset)] * weight)
        return Add(terms)

    @property
    def halo(self) -> tuple[int, int, int]:
        """The halo the declared order asks for.  ``Operator`` widens this
        further when an equation accesses the field at a larger offset."""
        order = max(1, self.space_order)
        return (order, order, order)


@dataclass
class Eq:
    """An update equation ``target <- expression``."""

    target: TimeFunction
    expression: Expression


class Operator:
    """Collects equations and lowers them to a stencil program."""

    def __init__(self, equations: list[Eq], name: str = "devito_kernel",
                 time_steps: int = 1):
        self.equations = equations
        self.name = name
        self.time_steps = time_steps

    def to_stencil_program(self) -> StencilProgram:
        # The halo is uniform across fields, and the simulator's column
        # layout requires it — so the program-wide halo is the elementwise
        # max of every grid's declared halo, every target's declared order
        # and every offset actually accessed.  Accesses wider than the
        # declared space order (e.g. laplace_high_order(radius) with
        # radius > space_order) widen it instead of silently
        # under-allocating and reading stale padding.
        halo = [1, 1, 1]
        for equation in self.equations:
            for axis in range(3):
                halo[axis] = max(
                    halo[axis],
                    equation.target.halo[axis],
                    equation.target.grid.halo[axis],
                )
            for access in equation.expression.accesses():
                function = access.function
                if function is not None:
                    for axis in range(3):
                        halo[axis] = max(
                            halo[axis],
                            function.halo[axis],
                            function.grid.halo[axis],
                        )
                for axis, component in enumerate(access.offset):
                    halo[axis] = max(halo[axis], abs(component))
        halo = tuple(halo)

        # Every grid the program touches — written or only read — must agree
        # on the boundary condition and the shape; a read-only function on a
        # conflicting grid would otherwise be silently compiled under the
        # wrong boundary, or truncated to the target's domain.
        boundary: BoundaryCondition | None = None
        shape: tuple[int, int, int] | None = None
        for equation in self.equations:
            functions = [equation.target] + [
                access.function
                for access in equation.expression.accesses()
                if access.function is not None
            ]
            for function in functions:
                if boundary is None:
                    boundary = function.grid.boundary
                elif function.grid.boundary != boundary:
                    raise ValueError(
                        "all grids of one Operator must declare the same "
                        f"boundary condition, got {boundary.spec!r} and "
                        f"{function.grid.boundary.spec!r} (on "
                        f"'{function.name}')"
                    )
                if shape is None:
                    shape = function.grid.shape
                elif function.grid.shape != shape:
                    raise ValueError(
                        "all grids of one Operator must share the same "
                        f"shape, got {shape} and {function.grid.shape} "
                        f"(on '{function.name}')"
                    )

        fields: dict[str, FieldDecl] = {}
        for equation in self.equations:
            target = equation.target
            names = [target.name] + [
                access.field for access in equation.expression.accesses()
            ]
            for name in names:
                if name not in fields:
                    fields[name] = FieldDecl(name, target.grid.shape, halo)
        program_equations = [
            StencilEquation(equation.target.name, as_expression(equation.expression))
            for equation in self.equations
        ]
        return StencilProgram(
            name=self.name,
            fields=list(fields.values()),
            equations=program_equations,
            time_steps=self.time_steps,
            boundary=boundary
            if boundary is not None
            else BoundaryCondition.dirichlet(),
        )
