"""A Fortran loop-nest front-end in the spirit of the Flang stencil pass.

The paper's Flang integration identifies stencils inside Fortran loop nests
and extracts them into the stencil dialect (Brown et al.).  This module does
the same for a small Fortran-like subset: triple ``do`` loops whose body is a
single array assignment over constant-offset accesses, e.g. Listing 1:

.. code-block:: fortran

    do i = 2, 255
      do j = 2, 255
        do k = 2, 511
          data(k,j,i) = (data(k,j,i) + data(k,j,i+1)) * 0.12345
        enddo
      enddo
    enddo

Array references use Fortran's column-major convention ``name(k, j, i)``
(fastest-varying index first); loop variables are mapped onto the (x, y, z)
dimensions of the stencil program as ``i -> x``, ``j -> y``, ``k -> z``.

A boundary condition is selected with an ``!$omp``-style sentinel directive
anywhere in the source — ``!$repro boundary(periodic)``,
``!$repro boundary(reflect)`` or ``!$repro boundary(dirichlet: 1.5)``;
without one the program keeps the Dirichlet-zero default.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.frontends.common import (
    Add,
    BoundaryCondition,
    Constant,
    Expression,
    FieldAccess,
    FieldDecl,
    Mul,
    StencilEquation,
    StencilProgram,
)


class FortranParseError(ValueError):
    """Raised when the Fortran-like input cannot be understood."""


_DO_PATTERN = re.compile(
    r"do\s+(?P<var>\w+)\s*=\s*(?P<lower>-?\d+)\s*,\s*(?P<upper>-?\d+)", re.IGNORECASE
)
_ACCESS_PATTERN = re.compile(r"(?P<name>\w+)\s*\((?P<indices>[^()]*)\)")
#: compiler directive selecting the boundary condition, in the style of
#: ``!$omp`` sentinels (the sentinel must start the comment line):
#: ``!$repro boundary(periodic)``, ``!$repro boundary(reflect)`` or
#: ``!$repro boundary(dirichlet: 1.5)``.
_BOUNDARY_DIRECTIVE = re.compile(
    r"!\$repro\s+boundary\s*\(\s*(?P<kind>\w+)\s*"
    r"(?:[:,]\s*(?P<value>[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?)\s*)?\)\s*$",
    re.IGNORECASE,
)


@dataclass
class _LoopSpec:
    variable: str
    lower: int
    upper: int

    @property
    def extent(self) -> int:
        return self.upper - self.lower + 1


def _parse_index(token: str, loop_variables: dict[str, _LoopSpec]) -> tuple[str, int]:
    """Parse one index expression like ``i``, ``i+1`` or ``k-2``."""
    token = token.strip().replace(" ", "")
    match = re.fullmatch(r"(?P<var>\w+)(?P<offset>[+-]\d+)?", token)
    if not match or match.group("var") not in loop_variables:
        raise FortranParseError(f"unsupported array index expression '{token}'")
    offset = int(match.group("offset") or 0)
    return match.group("var"), offset


class _ExpressionParser:
    """Recursive-descent parser for the right-hand side expressions."""

    def __init__(self, text: str, loop_variables: dict[str, _LoopSpec],
                 index_order: list[str]):
        self.text = text
        self.position = 0
        self.loop_variables = loop_variables
        self.index_order = index_order

    # grammar: expr := term (('+'|'-') term)* ; term := factor ('*' factor)* ;
    # factor := number | access | '(' expr ')'

    def parse(self) -> Expression:
        expression = self._expr()
        self._skip_spaces()
        if self.position != len(self.text):
            raise FortranParseError(
                f"unexpected trailing input: '{self.text[self.position:]}'"
            )
        return expression

    def _skip_spaces(self) -> None:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1

    def _peek(self) -> str:
        self._skip_spaces()
        return self.text[self.position] if self.position < len(self.text) else ""

    def _expr(self) -> Expression:
        terms = [self._term()]
        while self._peek() and self._peek() in "+-":
            operator = self.text[self.position]
            self.position += 1
            term = self._term()
            if operator == "-":
                term = Mul([term, Constant(-1.0)])
            terms.append(term)
        return terms[0] if len(terms) == 1 else Add(terms)

    def _term(self) -> Expression:
        factors = [self._factor()]
        while self._peek() == "*":
            self.position += 1
            factors.append(self._factor())
        return factors[0] if len(factors) == 1 else Mul(factors)

    def _factor(self) -> Expression:
        self._skip_spaces()
        character = self._peek()
        if character == "(":
            self.position += 1
            inner = self._expr()
            if self._peek() != ")":
                raise FortranParseError("missing closing parenthesis")
            self.position += 1
            return inner
        number = re.match(
            r"[-+]?\d+(\.\d*)?([eEdD][-+]?\d+)?", self.text[self.position:].lstrip()
        )
        remaining = self.text[self.position:].lstrip()
        access = _ACCESS_PATTERN.match(remaining)
        if access and not remaining[: access.start("name")]:
            self.position = len(self.text) - len(remaining) + access.end()
            return self._build_access(access)
        if number and number.group():
            consumed = number.group()
            self.position = len(self.text) - len(remaining) + len(consumed)
            return Constant(float(consumed.lower().replace("d", "e")))
        raise FortranParseError(f"cannot parse factor at '{remaining[:20]}'")

    def _build_access(self, match: re.Match) -> FieldAccess:
        name = match.group("name")
        indices = [token for token in match.group("indices").split(",")]
        if len(indices) != 3:
            raise FortranParseError("only rank-3 array accesses are supported")
        offsets: dict[str, int] = {}
        for token in indices:
            variable, offset = _parse_index(token, self.loop_variables)
            offsets[variable] = offset
        # Fortran lists the fastest-varying (innermost, z) index first; the
        # stencil program uses (x, y, z).
        ordered = tuple(offsets[variable] for variable in self.index_order)
        return FieldAccess(name, ordered)


def parse_fortran_stencil(
    source: str, name: str = "flang_kernel", time_steps: int = 1,
    halo: tuple[int, int, int] | None = None,
) -> StencilProgram:
    """Extract a stencil program from a Fortran-like loop nest."""
    lines = [line.strip() for line in source.strip().splitlines() if line.strip()]
    loops: list[_LoopSpec] = []
    assignments: list[str] = []
    boundary = BoundaryCondition.dirichlet()
    boundary_declared = False
    for line in lines:
        if line.startswith("!"):
            # Only a comment *starting* with the sentinel word is a
            # directive; prose that merely mentions one — or a different
            # word sharing the prefix (e.g. '!$reproducibility') — is an
            # ordinary comment.
            if re.match(r"!\$repro\b", line, re.IGNORECASE) is None:
                continue
            directive = _BOUNDARY_DIRECTIVE.match(line)
            if directive is None:
                # The sentinel makes the intent unambiguous: a directive the
                # parser cannot read must not silently degrade to the default.
                raise FortranParseError(
                    f"malformed !$repro directive: '{line}' (expected e.g. "
                    "'!$repro boundary(periodic)' or "
                    "'!$repro boundary(dirichlet: 1.5)')"
                )
            if boundary_declared:
                raise FortranParseError(
                    f"duplicate !$repro boundary directive: '{line}' "
                    f"(boundary already declared as '{boundary.spec}')"
                )
            kind = directive.group("kind").lower()
            value_text = directive.group("value")
            try:
                boundary = BoundaryCondition.parse(
                    f"{kind}:{value_text}" if value_text else kind
                )
            except ValueError as error:
                raise FortranParseError(str(error)) from None
            boundary_declared = True
            continue
        do_match = _DO_PATTERN.match(line)
        if do_match:
            loops.append(
                _LoopSpec(
                    do_match.group("var"),
                    int(do_match.group("lower")),
                    int(do_match.group("upper")),
                )
            )
        elif line.lower().startswith("enddo") or line.lower().startswith("end do"):
            continue
        elif "=" in line:
            assignments.append(line)

    if len(loops) < 3:
        raise FortranParseError("expected a triple loop nest (do i / do j / do k)")
    loop_variables = {loop.variable: loop for loop in loops}
    # Outermost loop is x, middle is y, innermost is z.
    index_order = [loops[0].variable, loops[1].variable, loops[2].variable]
    shape = (loops[0].extent, loops[1].extent, loops[2].extent)

    equations: list[StencilEquation] = []
    field_names: list[str] = []
    max_offset = [1, 1, 1]
    for assignment in assignments:
        left, right = assignment.split("=", 1)
        target_match = _ACCESS_PATTERN.match(left.strip())
        if target_match is None:
            raise FortranParseError(f"cannot parse assignment target '{left}'")
        target_name = target_match.group("name")
        parser = _ExpressionParser(right.strip(), loop_variables, index_order)
        expression = parser.parse()
        equations.append(StencilEquation(target_name, expression))
        for access in expression.accesses():
            if access.field not in field_names:
                field_names.append(access.field)
            for axis in range(3):
                max_offset[axis] = max(max_offset[axis], abs(access.offset[axis]))
        if target_name not in field_names:
            field_names.append(target_name)

    if halo is None:
        halo = tuple(max_offset)
    fields = [FieldDecl(field_name, shape, halo) for field_name in field_names]
    return StencilProgram(
        name=name,
        fields=fields,
        equations=equations,
        time_steps=time_steps,
        boundary=boundary,
    )
