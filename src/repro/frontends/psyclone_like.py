"""A kernel-metadata front-end in the spirit of PSyclone.

PSyclone separates the *algorithm* (which kernels to apply to which fields)
from the *kernel* (the pointwise computation with declared stencil accesses).
This module mirrors that split: a :class:`KernelMetadata` declares the fields
a kernel reads/writes and their stencil extents; a :class:`Kernel` provides
the update expression; an :class:`AlgorithmLayer` strings invocations together
and lowers them onto the shared stencil-program description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.frontends.common import (
    BoundaryCondition,
    Expression,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)


class AccessMode:
    """PSyclone-style access descriptors."""

    READ = "gh_read"
    WRITE = "gh_write"
    READWRITE = "gh_readwrite"


@dataclass
class FieldArgument:
    """One kernel argument: a field, its access mode and stencil extent."""

    name: str
    access: str
    stencil_extent: int = 0


@dataclass
class KernelMetadata:
    """Declarative description of a kernel's data accesses.

    ``boundary`` optionally declares the halo semantics the kernel assumes
    (PSyclone kernels carry such metadata alongside their stencil extents);
    kernels that leave it ``None`` accept whatever the algorithm layer
    resolves.  Kernels combined in one algorithm must agree.
    """

    name: str
    arguments: list[FieldArgument]
    boundary: BoundaryCondition | None = None

    def written_fields(self) -> list[str]:
        return [
            argument.name
            for argument in self.arguments
            if argument.access in (AccessMode.WRITE, AccessMode.READWRITE)
        ]

    def read_fields(self) -> list[str]:
        return [
            argument.name
            for argument in self.arguments
            if argument.access in (AccessMode.READ, AccessMode.READWRITE)
        ]

    def max_extent(self) -> int:
        return max((argument.stencil_extent for argument in self.arguments), default=1)


@dataclass
class Kernel:
    """A kernel: metadata plus the expression builder for each written field.

    ``expressions`` maps a written field name to a callable producing its
    update expression from an access helper
    (``access(field, dx, dy, dz) -> FieldAccess``).
    """

    metadata: KernelMetadata
    expressions: dict[str, Callable[[Callable[..., FieldAccess]], Expression]]

    def build_equations(self) -> list[StencilEquation]:
        def access(field_name: str, dx: int = 0, dy: int = 0, dz: int = 0) -> FieldAccess:
            return FieldAccess(field_name, (dx, dy, dz))

        equations = []
        for output in self.metadata.written_fields():
            builder = self.expressions.get(output)
            if builder is None:
                raise KeyError(
                    f"kernel '{self.metadata.name}' writes '{output}' but provides "
                    "no expression for it"
                )
            equations.append(StencilEquation(output, builder(access)))
        return equations


@dataclass
class Invoke:
    """One ``invoke(...)`` call in the algorithm layer."""

    kernels: Sequence[Kernel]


@dataclass
class AlgorithmLayer:
    """The PSyclone algorithm layer: fields, invokes, and the time loop."""

    name: str
    grid_shape: tuple[int, int, int]
    invokes: list[Invoke] = field(default_factory=list)
    time_steps: int = 1

    def invoke(self, *kernels: Kernel) -> "AlgorithmLayer":
        self.invokes.append(Invoke(list(kernels)))
        return self

    def to_stencil_program(self) -> StencilProgram:
        field_order: list[str] = []
        equations: list[StencilEquation] = []
        boundary: BoundaryCondition | None = None
        # Uniform program halo: the elementwise max of every declared
        # stencil extent and every offset the kernels actually access — a
        # builder reaching past its metadata's extent widens the halo
        # instead of silently under-allocating it and reading stale padding
        # (the same fix the Devito front-end applies at the Operator level).
        halo = [1, 1, 1]
        for invoke in self.invokes:
            for kernel in invoke.kernels:
                declared = kernel.metadata.boundary
                if declared is not None:
                    if boundary is None:
                        boundary = declared
                    elif declared != boundary:
                        raise ValueError(
                            "kernels of one algorithm must agree on the "
                            f"boundary condition: kernel "
                            f"'{kernel.metadata.name}' declares "
                            f"{declared.spec!r} but an earlier kernel "
                            f"declared {boundary.spec!r}"
                        )
                extent = kernel.metadata.max_extent()
                kernel_equations = kernel.build_equations()
                for axis in range(3):
                    halo[axis] = max(halo[axis], extent)
                for equation in kernel_equations:
                    for access in equation.expression.accesses():
                        for axis, component in enumerate(access.offset):
                            halo[axis] = max(halo[axis], abs(component))
                for argument in kernel.metadata.arguments:
                    if argument.name not in field_order:
                        field_order.append(argument.name)
                equations.extend(kernel_equations)
        fields = [
            FieldDecl(name, self.grid_shape, tuple(halo)) for name in field_order
        ]
        return StencilProgram(
            name=self.name,
            fields=fields,
            equations=equations,
            time_steps=self.time_steps,
            boundary=boundary
            if boundary is not None
            else BoundaryCondition.dirichlet(),
        )
