"""SSA-based IR core, modelled after xDSL/MLIR.

The IR is made of :class:`~repro.ir.operation.Operation` objects arranged in
:class:`~repro.ir.operation.Region`/:class:`~repro.ir.operation.Block`
hierarchies.  Operations use and produce :class:`~repro.ir.value.SSAValue`
objects, carry :class:`~repro.ir.attributes.Attribute` metadata and are
verified structurally by :mod:`repro.ir.verifier`.

Transformations are written as :class:`~repro.ir.rewriting.RewritePattern`
instances driven by :class:`~repro.ir.rewriting.PatternRewriteWalker`, or as
whole-module :class:`~repro.ir.pass_manager.ModulePass` passes composed by a
:class:`~repro.ir.pass_manager.PassManager`.
"""

from repro.ir.exceptions import DiagnosticException, VerifyException
from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
    UnitAttr,
)
from repro.ir.types import (
    Float16Type,
    Float32Type,
    Float64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    ShapedType,
    TensorType,
    TypeAttribute,
    f16,
    f32,
    f64,
    i1,
    i16,
    i32,
    i64,
)
from repro.ir.value import BlockArgument, OpResult, SSAValue
from repro.ir.operation import Block, Operation, Region
from repro.ir.builder import Builder, InsertPoint
from repro.ir.printer import Printer, print_module
from repro.ir.rewriting import (
    PatternRewriter,
    PatternRewriteWalker,
    RewritePattern,
)
from repro.ir.pass_manager import ModulePass, PassManager

__all__ = [
    "ArrayAttr",
    "Attribute",
    "Block",
    "BlockArgument",
    "BoolAttr",
    "Builder",
    "DenseArrayAttr",
    "DiagnosticException",
    "DictionaryAttr",
    "Float16Type",
    "Float32Type",
    "Float64Type",
    "FloatAttr",
    "FunctionType",
    "IndexType",
    "InsertPoint",
    "IntAttr",
    "IntegerType",
    "MemRefType",
    "ModulePass",
    "OpResult",
    "Operation",
    "PassManager",
    "PatternRewriteWalker",
    "PatternRewriter",
    "Printer",
    "Region",
    "RewritePattern",
    "SSAValue",
    "ShapedType",
    "StringAttr",
    "SymbolRefAttr",
    "TensorType",
    "TypeAttribute",
    "UnitAttr",
    "VerifyException",
    "f16",
    "f32",
    "f64",
    "i1",
    "i16",
    "i32",
    "i64",
    "print_module",
]
