"""SSA-based IR core, modelled after xDSL/MLIR.

The IR is made of :class:`~repro.ir.operation.Operation` objects arranged in
:class:`~repro.ir.operation.Region`/:class:`~repro.ir.operation.Block`
hierarchies.  Operations use and produce :class:`~repro.ir.value.SSAValue`
objects, carry :class:`~repro.ir.attributes.Attribute` metadata and are
verified structurally by :mod:`repro.ir.verifier`.

Transformations are written as :class:`~repro.ir.rewriting.RewritePattern`
instances driven to a fixpoint by the worklist-based
:class:`~repro.ir.rewriting.GreedyRewriteDriver` (entry point
:func:`~repro.ir.rewriting.apply_patterns_greedily`), or as whole-module
:class:`~repro.ir.pass_manager.ModulePass` passes composed by a
:class:`~repro.ir.pass_manager.PassManager`.
"""

from repro.ir.exceptions import DiagnosticException, VerifyException
from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
    UnitAttr,
)
from repro.ir.types import (
    Float16Type,
    Float32Type,
    Float64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    ShapedType,
    TensorType,
    TypeAttribute,
    f16,
    f32,
    f64,
    i1,
    i16,
    i32,
    i64,
)
from repro.ir.value import BlockArgument, OpResult, SSAValue
from repro.ir.operation import Block, Operation, Region
from repro.ir.builder import Builder, InsertPoint
from repro.ir.printer import Printer, print_module
from repro.ir.rewriting import (
    GreedyRewriteDriver,
    GreedyRewritePatternApplier,
    PatternRewriter,
    PatternRewriteWalker,
    RestartingRewriteWalker,
    RewritePattern,
    TypedPattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
    use_restarting_driver,
)
from repro.ir.pass_manager import (
    ModulePass,
    PassManager,
    PassStatistics,
    PipelineStatistics,
)

__all__ = [
    "ArrayAttr",
    "Attribute",
    "Block",
    "BlockArgument",
    "BoolAttr",
    "Builder",
    "DenseArrayAttr",
    "DiagnosticException",
    "DictionaryAttr",
    "Float16Type",
    "Float32Type",
    "Float64Type",
    "FloatAttr",
    "FunctionType",
    "GreedyRewriteDriver",
    "GreedyRewritePatternApplier",
    "IndexType",
    "InsertPoint",
    "IntAttr",
    "IntegerType",
    "MemRefType",
    "ModulePass",
    "OpResult",
    "Operation",
    "PassManager",
    "PassStatistics",
    "PatternRewriteWalker",
    "PatternRewriter",
    "PipelineStatistics",
    "Printer",
    "Region",
    "RestartingRewriteWalker",
    "RewritePattern",
    "SSAValue",
    "ShapedType",
    "StringAttr",
    "SymbolRefAttr",
    "TensorType",
    "TypeAttribute",
    "TypedPattern",
    "UnitAttr",
    "VerifyException",
    "apply_patterns_greedily",
    "f16",
    "f32",
    "f64",
    "i1",
    "i16",
    "i32",
    "i64",
    "op_rewrite_pattern",
    "print_module",
    "use_restarting_driver",
]
