"""Attribute system for the IR.

Attributes are immutable pieces of compile-time metadata attached to
operations (and, for :class:`~repro.ir.types.TypeAttribute` subclasses, used
as the types of SSA values).  Equality and hashing are structural.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence


class Attribute:
    """Base class of all attributes.

    Subclasses must be immutable after construction and implement
    structural equality through :attr:`_key`.
    """

    #: short name used by the printer, e.g. ``"builtin.int"``.
    name: str = "attribute"

    def _key(self) -> tuple:
        """Return a tuple uniquely identifying this attribute's contents."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return False
        assert isinstance(other, Attribute)
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self._key()})"


class UnitAttr(Attribute):
    """Attribute carrying no data; its presence alone is the information."""

    name = "unit"

    def _key(self) -> tuple:
        return ()


class IntAttr(Attribute):
    """An integer literal attribute."""

    name = "int"

    def __init__(self, value: int):
        self.value = int(value)

    def _key(self) -> tuple:
        return (self.value,)


class BoolAttr(Attribute):
    """A boolean literal attribute."""

    name = "bool"

    def __init__(self, value: bool):
        self.value = bool(value)

    def _key(self) -> tuple:
        return (self.value,)


class FloatAttr(Attribute):
    """A floating-point literal attribute."""

    name = "float"

    def __init__(self, value: float):
        self.value = float(value)

    def _key(self) -> tuple:
        return (self.value,)


class StringAttr(Attribute):
    """A string literal attribute."""

    name = "string"

    def __init__(self, data: str):
        self.data = str(data)

    def _key(self) -> tuple:
        return (self.data,)


class SymbolRefAttr(Attribute):
    """A reference to a symbol (e.g. a function) by name."""

    name = "symbol_ref"

    def __init__(self, root: str, nested: Sequence[str] = ()):
        self.root = str(root)
        self.nested = tuple(str(part) for part in nested)

    @property
    def string_value(self) -> str:
        return ".".join((self.root, *self.nested))

    def _key(self) -> tuple:
        return (self.root, self.nested)


class ArrayAttr(Attribute):
    """An ordered, immutable collection of attributes."""

    name = "array"

    def __init__(self, data: Iterable[Attribute]):
        self.data: tuple[Attribute, ...] = tuple(data)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, index: int) -> Attribute:
        return self.data[index]

    def _key(self) -> tuple:
        return self.data


class DenseArrayAttr(Attribute):
    """A dense array of python scalars (ints or floats).

    Used for things like stencil offsets, shapes, and coefficient vectors
    where wrapping every element in an attribute would be wasteful.
    """

    name = "dense_array"

    def __init__(self, values: Iterable[int | float]):
        self.values: tuple[int | float, ...] = tuple(values)

    def __iter__(self) -> Iterator[int | float]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> int | float:
        return self.values[index]

    def as_tuple(self) -> tuple[int | float, ...]:
        return self.values

    def _key(self) -> tuple:
        return self.values


class DictionaryAttr(Attribute):
    """An immutable string-keyed mapping of attributes."""

    name = "dictionary"

    def __init__(self, data: Mapping[str, Attribute]):
        self.data: dict[str, Attribute] = dict(data)

    def __getitem__(self, key: str) -> Attribute:
        return self.data[key]

    def __contains__(self, key: str) -> bool:
        return key in self.data

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def items(self):
        return self.data.items()

    def _key(self) -> tuple:
        return tuple(sorted(self.data.items(), key=lambda kv: kv[0]))
