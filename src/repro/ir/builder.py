"""IR construction helper maintaining an insertion point."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.ir.operation import Block, Operation, Region


@dataclass
class InsertPoint:
    """A position inside a block where new operations are inserted."""

    block: Block
    index: int

    @staticmethod
    def at_end(block: Block) -> "InsertPoint":
        return InsertPoint(block, len(block.ops))

    @staticmethod
    def at_start(block: Block) -> "InsertPoint":
        return InsertPoint(block, 0)

    @staticmethod
    def before(op: Operation) -> "InsertPoint":
        assert op.parent is not None
        return InsertPoint(op.parent, op.parent.index_of(op))

    @staticmethod
    def after(op: Operation) -> "InsertPoint":
        assert op.parent is not None
        return InsertPoint(op.parent, op.parent.index_of(op) + 1)


class Builder:
    """Inserts operations at a movable insertion point."""

    def __init__(self, insert_point: InsertPoint):
        self.insert_point = insert_point

    @staticmethod
    def at_end(block: Block) -> "Builder":
        return Builder(InsertPoint.at_end(block))

    @staticmethod
    def at_start(block: Block) -> "Builder":
        return Builder(InsertPoint.at_start(block))

    @staticmethod
    def before(op: Operation) -> "Builder":
        return Builder(InsertPoint.before(op))

    @staticmethod
    def after(op: Operation) -> "Builder":
        return Builder(InsertPoint.after(op))

    def insert(self, op: Operation) -> Operation:
        """Insert ``op`` at the insertion point and advance past it."""
        block = self.insert_point.block
        block.insert_op(op, self.insert_point.index)
        self.insert_point = InsertPoint(block, self.insert_point.index + 1)
        return op

    def insert_all(self, ops: Iterable[Operation]) -> list[Operation]:
        return [self.insert(op) for op in ops]


def build_region(arg_types: Sequence = (), ops: Sequence[Operation] = ()) -> Region:
    """Convenience: build a single-block region with the given args and ops."""
    return Region([Block(arg_types=arg_types, ops=ops)])
