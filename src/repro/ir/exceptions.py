"""Exception types raised by the IR core."""


class DiagnosticException(Exception):
    """Base class for all compiler-raised diagnostics."""


class VerifyException(DiagnosticException):
    """Raised when an operation or module fails structural verification."""


class PassFailedException(DiagnosticException):
    """Raised when a compiler pass cannot complete its transformation."""


class InterpretationError(DiagnosticException):
    """Raised when the IR interpreter encounters an unsupported construct."""
