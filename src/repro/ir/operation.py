"""Operations, blocks and regions — the structural backbone of the IR."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.ir.attributes import Attribute
from repro.ir.exceptions import VerifyException
from repro.ir.value import BlockArgument, OpResult, SSAValue, Use


class Operation:
    """A generic SSA operation.

    An operation has a dialect-qualified ``name``, a list of SSA operands, a
    list of SSA results, a dictionary of attributes, and an optional list of
    nested regions.  Dialect operations subclass :class:`Operation`, set the
    class attribute ``name`` and usually provide a convenience constructor
    plus accessor properties.
    """

    name: str = "unregistered"

    #: trait classes attached to the operation type (see :mod:`repro.ir.traits`).
    traits: tuple = ()

    def __init__(
        self,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[Attribute] = (),
        attributes: dict[str, Attribute] | None = None,
        regions: Sequence["Region"] | None = None,
        successors: Sequence["Block"] = (),
    ):
        self._operands: list[SSAValue] = []
        self.results: list[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes: dict[str, Attribute] = dict(attributes or {})
        self.regions: list[Region] = []
        self.successors: list[Block] = list(successors)
        self.parent: Block | None = None
        # Intrusive doubly-linked list maintained by the parent block; gives
        # O(1) insertion, removal and neighbour access.
        self._next_op: Operation | None = None
        self._prev_op: Operation | None = None

        for operand in operands:
            self.add_operand(operand)
        for region in regions or ():
            self.add_region(region)

    # ------------------------------------------------------------------ #
    # Operand management
    # ------------------------------------------------------------------ #

    @property
    def operands(self) -> tuple[SSAValue, ...]:
        return tuple(self._operands)

    def add_operand(self, value: SSAValue) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(Use(self, index))

    def set_operand(self, index: int, new_value: SSAValue) -> None:
        old = self._operands[index]
        old.remove_use(Use(self, index))
        self._operands[index] = new_value
        new_value.add_use(Use(self, index))

    def set_operands(self, new_operands: Sequence[SSAValue]) -> None:
        self.drop_all_operands()
        for value in new_operands:
            self.add_operand(value)

    def drop_all_operands(self) -> None:
        for index, value in enumerate(self._operands):
            value.remove_use(Use(self, index))
        self._operands.clear()

    # ------------------------------------------------------------------ #
    # Region management
    # ------------------------------------------------------------------ #

    def add_region(self, region: "Region") -> None:
        region.parent = self
        self.regions.append(region)

    @property
    def body_block(self) -> "Block":
        """First block of the first region (common single-block case)."""
        return self.regions[0].blocks[0]

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #

    def parent_op(self) -> "Operation | None":
        if self.parent is not None and self.parent.parent is not None:
            return self.parent.parent.parent
        return None

    def parent_of_type(self, op_type: type) -> "Operation | None":
        """Closest ancestor operation of the given type, if any."""
        current = self.parent_op()
        while current is not None:
            if isinstance(current, op_type):
                return current
            current = current.parent_op()
        return None

    def walk(self, *, reverse: bool = False) -> Iterator["Operation"]:
        """Iterate over this operation and all nested operations, pre-order."""
        if not reverse:
            yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops) if not reverse else reversed(list(block.ops)):
                    yield from op.walk(reverse=reverse)
        if reverse:
            yield self

    def walk_type(self, op_type: type) -> Iterator["Operation"]:
        """Iterate over nested operations of the given type."""
        for op in self.walk():
            if isinstance(op, op_type):
                yield op

    def next_op(self) -> "Operation | None":
        """The operation following this one in its block, if any."""
        return self._next_op if self.parent is not None else None

    def prev_op(self) -> "Operation | None":
        return self._prev_op if self.parent is not None else None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def detach(self) -> "Operation":
        """Remove this op from its parent block without dropping operands."""
        if self.parent is not None:
            self.parent._unlink_op(self)
        return self

    def erase(self) -> None:
        """Detach the op and drop its operand uses.

        The op must no longer have any users of its results.
        """
        for result in self.results:
            if result.has_uses:
                raise VerifyException(
                    f"cannot erase '{self.name}': result still has uses"
                )
        self.detach()
        self.drop_all_operands()
        for region in self.regions:
            region.drop_all_references()

    def clone(
        self, value_map: dict[SSAValue, SSAValue] | None = None
    ) -> "Operation":
        """Deep-copy this operation (and nested regions).

        ``value_map`` maps values defined outside the cloned op to their
        replacements; it is extended with the cloned results and block
        arguments so nested uses are remapped consistently.
        """
        value_map = dict(value_map) if value_map is not None else {}
        return self._clone_into(value_map)

    def _clone_into(self, value_map: dict[SSAValue, SSAValue]) -> "Operation":
        new_operands = [value_map.get(operand, operand) for operand in self._operands]
        cloned = object.__new__(type(self))
        Operation.__init__(
            cloned,
            operands=new_operands,
            result_types=[result.type for result in self.results],
            attributes=dict(self.attributes),
            successors=list(self.successors),
        )
        cloned.name = self.name
        for old_result, new_result in zip(self.results, cloned.results):
            value_map[old_result] = new_result
            new_result.name_hint = old_result.name_hint
        for region in self.regions:
            cloned.add_region(region.clone_into(value_map))
        return cloned

    # ------------------------------------------------------------------ #
    # Verification
    # ------------------------------------------------------------------ #

    def verify(self) -> None:
        """Verify this operation and all nested operations."""
        for trait in self.traits:
            trait.verify(self)
        self.verify_()
        for region in self.regions:
            for block in region.blocks:
                for op in block.ops:
                    if op.parent is not block:
                        raise VerifyException(
                            f"operation '{op.name}' has a stale parent pointer"
                        )
                    op.verify()

    def verify_(self) -> None:
        """Operation-specific verification; overridden by dialect ops."""

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def attr(self, key: str, default=None):
        return self.attributes.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} '{self.name}'>"


class UnregisteredOp(Operation):
    """Fallback operation with a dynamic name, used by tests and the parser."""

    def __init__(self, name: str, **kwargs):
        super().__init__(**kwargs)
        self.name = name


class Block:
    """A straight-line sequence of operations with block arguments.

    Operations are stored as an intrusive doubly-linked list so insertion
    next to an existing op, detachment and neighbour queries are all O(1).
    The :attr:`ops` property exposes a cached list snapshot for indexing and
    iteration; treat it as read-only and mutate through the block methods.
    """

    def __init__(
        self,
        arg_types: Sequence[Attribute] = (),
        ops: Sequence[Operation] = (),
    ):
        self.args: list[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self.parent: Region | None = None
        self._first_op: Operation | None = None
        self._last_op: Operation | None = None
        self._num_ops: int = 0
        self._ops_cache: list[Operation] | None = None
        self._index_cache: dict[int, int] | None = None
        for op in ops:
            self.add_op(op)

    # ------------------------------------------------------------------ #
    # Argument management
    # ------------------------------------------------------------------ #

    def insert_arg(self, arg_type: Attribute, index: int) -> BlockArgument:
        arg = BlockArgument(arg_type, self, index)
        self.args.insert(index, arg)
        for i, existing in enumerate(self.args):
            existing.index = i
        return arg

    def add_arg(self, arg_type: Attribute) -> BlockArgument:
        return self.insert_arg(arg_type, len(self.args))

    def erase_arg(self, arg: BlockArgument) -> None:
        if arg.has_uses:
            raise VerifyException("cannot erase a block argument that has uses")
        self.args.remove(arg)
        for i, existing in enumerate(self.args):
            existing.index = i

    # ------------------------------------------------------------------ #
    # Op management
    # ------------------------------------------------------------------ #

    @property
    def ops(self) -> list[Operation]:
        """List snapshot of the block's operations (do not mutate)."""
        if self._ops_cache is None:
            snapshot: list[Operation] = []
            op = self._first_op
            while op is not None:
                snapshot.append(op)
                op = op._next_op
            self._ops_cache = snapshot
        return self._ops_cache

    def _invalidate_caches(self) -> None:
        self._ops_cache = None
        self._index_cache = None

    def index_of(self, op: Operation) -> int:
        """Position of ``op`` in this block; amortised O(1) between mutations."""
        if op.parent is not self:
            raise ValueError(f"operation '{op.name}' is not in this block")
        if self._index_cache is None:
            self._index_cache = {id(o): i for i, o in enumerate(self.ops)}
        return self._index_cache[id(op)]

    @property
    def num_ops(self) -> int:
        return self._num_ops

    def _link_op(
        self,
        op: Operation,
        prev_op: Operation | None,
        next_op: Operation | None,
    ) -> None:
        assert op.parent is None, "op must be detached before insertion"
        op.parent = self
        op._prev_op = prev_op
        op._next_op = next_op
        if prev_op is not None:
            prev_op._next_op = op
        else:
            self._first_op = op
        if next_op is not None:
            next_op._prev_op = op
        else:
            self._last_op = op
        self._num_ops += 1
        self._invalidate_caches()

    def _unlink_op(self, op: Operation) -> None:
        assert op.parent is self
        if op._prev_op is not None:
            op._prev_op._next_op = op._next_op
        else:
            self._first_op = op._next_op
        if op._next_op is not None:
            op._next_op._prev_op = op._prev_op
        else:
            self._last_op = op._prev_op
        op.parent = None
        op._prev_op = None
        op._next_op = None
        self._num_ops -= 1
        self._invalidate_caches()

    def add_op(self, op: Operation) -> None:
        op.detach()
        self._link_op(op, self._last_op, None)

    def add_ops(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.add_op(op)

    def insert_op(self, op: Operation, index: int) -> None:
        op.detach()
        if index >= self._num_ops:
            self._link_op(op, self._last_op, None)
            return
        anchor = self.ops[index]
        self._link_op(op, anchor._prev_op, anchor)

    def insert_op_before(self, new_op: Operation, existing: Operation) -> None:
        assert existing.parent is self
        new_op.detach()
        self._link_op(new_op, existing._prev_op, existing)

    def insert_op_after(self, new_op: Operation, existing: Operation) -> None:
        assert existing.parent is self
        new_op.detach()
        self._link_op(new_op, existing, existing._next_op)

    @property
    def first_op(self) -> Operation | None:
        return self._first_op

    @property
    def last_op(self) -> Operation | None:
        return self._last_op

    def walk(self) -> Iterator[Operation]:
        for op in list(self.ops):
            yield from op.walk()

    def drop_all_references(self) -> None:
        for op in self.ops:
            op.drop_all_operands()
            for region in op.regions:
                region.drop_all_references()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Block args={len(self.args)} ops={len(self.ops)}>"


class Region:
    """A list of blocks owned by an operation."""

    def __init__(self, blocks: Sequence[Block] = ()):
        self.blocks: list[Block] = []
        self.parent: Operation | None = None
        for block in blocks:
            self.add_block(block)

    def add_block(self, block: Block) -> None:
        block.parent = self
        self.blocks.append(block)

    @property
    def block(self) -> Block:
        """The single block of a single-block region."""
        if len(self.blocks) != 1:
            raise VerifyException(
                f"expected a single-block region, found {len(self.blocks)} blocks"
            )
        return self.blocks[0]

    @property
    def ops(self) -> list[Operation]:
        """Ops of the single block of this region."""
        return self.block.ops

    def walk(self) -> Iterator[Operation]:
        for block in self.blocks:
            yield from block.walk()

    def clone_into(self, value_map: dict[SSAValue, SSAValue]) -> "Region":
        new_region = Region()
        for block in self.blocks:
            new_block = Block(arg_types=[arg.type for arg in block.args])
            for old_arg, new_arg in zip(block.args, new_block.args):
                value_map[old_arg] = new_arg
                new_arg.name_hint = old_arg.name_hint
            new_region.add_block(new_block)
        # Second sweep so forward references between blocks resolve.
        for block, new_block in zip(self.blocks, new_region.blocks):
            for op in block.ops:
                new_block.add_op(op._clone_into(value_map))
        return new_region

    def clone(self) -> "Region":
        return self.clone_into({})

    def drop_all_references(self) -> None:
        for block in self.blocks:
            block.drop_all_references()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Region blocks={len(self.blocks)}>"
