"""Module passes and the pass manager that sequences them.

The pass manager instruments every pass it runs: wall time, number of
pattern rewrites applied, and the op-count delta are recorded per pass in a
:class:`PipelineStatistics` object available as ``PassManager.statistics``
after :meth:`PassManager.run`.  Setting the environment variable
``REPRO_PASS_TIMING=1`` prints the per-pass table to stderr after each run.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.exceptions import PassFailedException
from repro.ir.operation import Operation
from repro.ir.rewriting import tally_rewrites


class ModulePass:
    """A whole-module transformation.

    Subclasses set :attr:`name` and implement :meth:`apply`.
    """

    name: str = "unnamed-pass"

    def apply(self, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModulePass {self.name}>"


@dataclass
class PassStatistics:
    """Measurements for one pass execution."""

    name: str
    #: zero-based position of the pass in the pipeline.
    position: int
    #: wall-clock seconds spent in ``apply`` (excludes verification).
    wall_time: float
    #: pattern applications recorded while the pass ran.
    rewrites: int
    ops_before: int
    ops_after: int

    @property
    def op_delta(self) -> int:
        return self.ops_after - self.ops_before


@dataclass
class PipelineStatistics:
    """Per-pass measurements for one :meth:`PassManager.run` invocation."""

    passes: list[PassStatistics] = field(default_factory=list)

    @property
    def total_wall_time(self) -> float:
        return sum(stat.wall_time for stat in self.passes)

    @property
    def total_rewrites(self) -> int:
        return sum(stat.rewrites for stat in self.passes)

    def by_name(self, name: str) -> PassStatistics:
        for stat in self.passes:
            if stat.name == name:
                return stat
        raise KeyError(f"no statistics recorded for pass '{name}'")

    def format_table(self) -> str:
        """Human-readable per-pass table, slowest-agnostic pipeline order."""
        header = f"{'#':>3}  {'pass':<36} {'time (ms)':>10} {'rewrites':>9} {'ops':>11}"
        lines = [header, "-" * len(header)]
        for stat in self.passes:
            ops = f"{stat.ops_before}->{stat.ops_after}"
            lines.append(
                f"{stat.position:>3}  {stat.name:<36} "
                f"{stat.wall_time * 1e3:>10.3f} {stat.rewrites:>9} {ops:>11}"
            )
        lines.append(
            f"{'':>3}  {'total':<36} "
            f"{self.total_wall_time * 1e3:>10.3f} {self.total_rewrites:>9}"
        )
        return "\n".join(lines)


def _timing_enabled() -> bool:
    return os.environ.get("REPRO_PASS_TIMING", "").strip() not in ("", "0")


def _count_ops(module: Operation) -> int:
    return sum(1 for _ in module.walk())


class PassManager:
    """Runs a sequence of :class:`ModulePass` instances over a module.

    Verification runs after each pass by default so a broken rewrite is
    reported at the pass that introduced it.
    """

    def __init__(self, passes: Iterable[ModulePass] = (), *, verify_each: bool = True):
        self.passes: list[ModulePass] = list(passes)
        self.verify_each = verify_each
        #: statistics of the most recent :meth:`run`, if any.
        self.statistics: PipelineStatistics | None = None

    def add(self, pass_: ModulePass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def _failure_context(self, position: int) -> str:
        prefix = ",".join(pass_.name for pass_ in self.passes[:position])
        pass_name = self.passes[position].name
        where = f"pass '{pass_name}' (position {position + 1} of {len(self.passes)})"
        if prefix:
            return f"{where} after pipeline prefix '{prefix}'"
        return f"{where} at the start of the pipeline"

    def run(self, module: Operation) -> PipelineStatistics:
        # Published immediately so a failing run still exposes the statistics
        # of the passes that completed before the failure.
        statistics = self.statistics = PipelineStatistics()
        ops_before = _count_ops(module)
        for position, pass_ in enumerate(self.passes):
            start = time.perf_counter()
            try:
                with tally_rewrites() as tally:
                    pass_.apply(module)
            except PassFailedException as error:
                raise PassFailedException(
                    f"{self._failure_context(position)} failed: {error}"
                ) from error
            except Exception as error:
                raise PassFailedException(
                    f"{self._failure_context(position)} failed: {error}"
                ) from error
            wall_time = time.perf_counter() - start
            ops_after = _count_ops(module)
            statistics.passes.append(
                PassStatistics(
                    name=pass_.name,
                    position=position,
                    wall_time=wall_time,
                    rewrites=tally.count,
                    ops_before=ops_before,
                    ops_after=ops_after,
                )
            )
            ops_before = ops_after
            if self.verify_each:
                try:
                    module.verify()
                except Exception as error:
                    raise PassFailedException(
                        f"module verification after {self._failure_context(position)}"
                        f": {error}"
                    ) from error
        if _timing_enabled():
            print(statistics.format_table(), file=sys.stderr)
        return statistics

    @property
    def pipeline_description(self) -> str:
        """Comma-separated pass names, mirroring ``mlir-opt`` pipelines."""
        return ",".join(pass_.name for pass_ in self.passes)
