"""Module passes and the pass manager that sequences them."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.ir.exceptions import PassFailedException
from repro.ir.operation import Operation


class ModulePass:
    """A whole-module transformation.

    Subclasses set :attr:`name` and implement :meth:`apply`.
    """

    name: str = "unnamed-pass"

    def apply(self, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModulePass {self.name}>"


class PassManager:
    """Runs a sequence of :class:`ModulePass` instances over a module.

    Verification runs after each pass by default so a broken rewrite is
    reported at the pass that introduced it.
    """

    def __init__(self, passes: Iterable[ModulePass] = (), *, verify_each: bool = True):
        self.passes: list[ModulePass] = list(passes)
        self.verify_each = verify_each

    def add(self, pass_: ModulePass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Operation) -> None:
        for pass_ in self.passes:
            try:
                pass_.apply(module)
            except PassFailedException:
                raise
            except Exception as error:
                raise PassFailedException(
                    f"pass '{pass_.name}' failed: {error}"
                ) from error
            if self.verify_each:
                module.verify()

    @property
    def pipeline_description(self) -> str:
        """Comma-separated pass names, mirroring ``mlir-opt`` pipelines."""
        return ",".join(pass_.name for pass_ in self.passes)
