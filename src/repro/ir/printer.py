"""Generic textual printer for IR modules.

The output format follows MLIR's generic form closely enough to be readable
by people familiar with MLIR, while remaining simple:

.. code-block::

    %0 = "arith.constant"() {value = 1.0 : f32} : () -> (f32)
    %1 = "arith.addf"(%0, %0) : (f32, f32) -> (f32)
"""

from __future__ import annotations

import io
from typing import TextIO

from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
    UnitAttr,
)
from repro.ir.operation import Block, Operation, Region
from repro.ir.types import TypeAttribute
from repro.ir.value import SSAValue


class Printer:
    """Prints operations in a generic MLIR-like syntax."""

    def __init__(self, stream: TextIO | None = None, indent_width: int = 2):
        self.stream = stream if stream is not None else io.StringIO()
        self.indent_width = indent_width
        self._value_names: dict[int, str] = {}
        self._next_value_id = 0

    # ------------------------------------------------------------------ #
    # Value naming
    # ------------------------------------------------------------------ #

    def _name_of(self, value: SSAValue) -> str:
        key = id(value)
        if key not in self._value_names:
            if value.name_hint:
                name = f"%{value.name_hint}_{self._next_value_id}"
            else:
                name = f"%{self._next_value_id}"
            self._next_value_id += 1
            self._value_names[key] = name
        return self._value_names[key]

    # ------------------------------------------------------------------ #
    # Attribute printing
    # ------------------------------------------------------------------ #

    def attribute_str(self, attr: Attribute) -> str:
        if isinstance(attr, TypeAttribute):
            return str(attr)
        if isinstance(attr, BoolAttr):
            return "true" if attr.value else "false"
        if isinstance(attr, IntAttr):
            return str(attr.value)
        if isinstance(attr, FloatAttr):
            return repr(attr.value)
        if isinstance(attr, StringAttr):
            return f'"{attr.data}"'
        if isinstance(attr, SymbolRefAttr):
            return "@" + attr.string_value
        if isinstance(attr, UnitAttr):
            return "unit"
        if isinstance(attr, ArrayAttr):
            return "[" + ", ".join(self.attribute_str(a) for a in attr) + "]"
        if isinstance(attr, DenseArrayAttr):
            return "array<" + ", ".join(str(v) for v in attr) + ">"
        if isinstance(attr, DictionaryAttr):
            inner = ", ".join(
                f"{key} = {self.attribute_str(value)}" for key, value in attr.items()
            )
            return "{" + inner + "}"
        # Dialect-specific attributes provide their own __str__.
        return str(attr)

    # ------------------------------------------------------------------ #
    # Operation printing
    # ------------------------------------------------------------------ #

    def print_op(self, op: Operation, indent: int = 0) -> None:
        pad = " " * (indent * self.indent_width)
        parts: list[str] = [pad]

        if op.results:
            names = ", ".join(self._name_of(result) for result in op.results)
            parts.append(f"{names} = ")

        operand_names = ", ".join(self._name_of(operand) for operand in op.operands)
        parts.append(f'"{op.name}"({operand_names})')

        if op.attributes:
            attr_text = ", ".join(
                f"{key} = {self.attribute_str(value)}"
                for key, value in op.attributes.items()
            )
            parts.append(" {" + attr_text + "}")

        if op.regions:
            parts.append(" (")
        self.stream.write("".join(parts))

        for i, region in enumerate(op.regions):
            if i > 0:
                self.stream.write(", ")
            self.print_region(region, indent)
        if op.regions:
            self.stream.write(")")

        operand_types = ", ".join(str(operand.type) for operand in op.operands)
        result_types = ", ".join(str(result.type) for result in op.results)
        self.stream.write(f" : ({operand_types}) -> ({result_types})\n")

    def print_region(self, region: Region, indent: int) -> None:
        self.stream.write("{\n")
        for block in region.blocks:
            self.print_block(block, indent + 1)
        self.stream.write(" " * (indent * self.indent_width) + "}")

    def print_block(self, block: Block, indent: int) -> None:
        pad = " " * (indent * self.indent_width)
        if block.args:
            args = ", ".join(
                f"{self._name_of(arg)} : {arg.type}" for arg in block.args
            )
            self.stream.write(f"{pad}^bb({args}):\n")
        for op in block.ops:
            self.print_op(op, indent)

    def print_module(self, op: Operation) -> str:
        self.print_op(op)
        if isinstance(self.stream, io.StringIO):
            return self.stream.getvalue()
        return ""


def print_module(op: Operation) -> str:
    """Print an operation (typically a module) to a string."""
    return Printer().print_module(op)
