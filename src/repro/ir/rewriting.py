"""Pattern-based IR rewriting infrastructure.

Transformation passes are written as :class:`RewritePattern` subclasses whose
``match_and_rewrite`` method inspects one operation at a time and mutates the
IR through the :class:`PatternRewriter` it is given.  Patterns declare the
operation class they fire on either with the :func:`op_rewrite_pattern`
decorator (which reads the type annotation of the ``op`` parameter) or by
subclassing :class:`TypedPattern`.

Two drivers apply patterns to a fixpoint:

* :class:`GreedyRewriteDriver` — the default **worklist** driver.  It indexes
  patterns by root operation class so each op only runs candidate patterns,
  and the :class:`PatternRewriter` reports newly created / modified / erased
  ops back to the worklist, so work after a rewrite is proportional to the
  rewrite's footprint rather than to the module size.
* :class:`RestartingRewriteWalker` — the legacy driver that restarts a full
  pre-order walk of the module after every rewrite.  Kept as the reference
  implementation for equivalence tests and compile-time benchmarks.

:class:`PatternRewriteWalker` remains as a thin compatibility shim over the
worklist driver; new code should call :func:`apply_patterns_greedily`.
"""

from __future__ import annotations

import functools
import inspect
import types
import typing
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro.ir.builder import InsertPoint
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Block, Operation, Region
from repro.ir.value import SSAValue

# --------------------------------------------------------------------------- #
# Rewrite accounting
# --------------------------------------------------------------------------- #


class RewriteTally:
    """Counts pattern applications inside a :func:`tally_rewrites` scope."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


_ACTIVE_TALLIES: list[RewriteTally] = []


@contextmanager
def tally_rewrites() -> Iterator[RewriteTally]:
    """Count every pattern application performed inside the ``with`` body.

    Used by the pass manager to attribute rewrite counts to passes; scopes
    nest, each rewrite is credited to every active tally.
    """
    tally = RewriteTally()
    _ACTIVE_TALLIES.append(tally)
    try:
        yield tally
    finally:
        _ACTIVE_TALLIES.remove(tally)


def _record_rewrite() -> None:
    for tally in _ACTIVE_TALLIES:
        tally.count += 1


# --------------------------------------------------------------------------- #
# Rewriter
# --------------------------------------------------------------------------- #


class RewriteListener:
    """Callbacks through which a :class:`PatternRewriter` reports mutations.

    The worklist driver implements this interface to keep its worklist in
    sync; a standalone rewriter (``listener=None``) skips all reporting.
    """

    def notify_op_created(self, op: Operation) -> None:
        """``op`` (and its nested ops) was inserted into the IR."""

    def notify_op_modified(self, op: Operation) -> None:
        """``op``'s operands, attributes or operand liveness changed."""

    def notify_op_erased(self, op: Operation) -> None:
        """``op`` was detached from the IR."""


class PatternRewriter:
    """Mutation interface handed to rewrite patterns.

    Tracks whether any modification happened so the driver can decide
    whether more work is needed, and reports the footprint of each mutation
    to the driver's :class:`RewriteListener` so only affected ops are
    revisited.
    """

    def __init__(self, current_op: Operation, listener: RewriteListener | None = None):
        self.current_op = current_op
        self.listener = listener
        self.has_done_action = False

    # ------------------------------------------------------------------ #
    # Listener plumbing
    # ------------------------------------------------------------------ #

    def _created(self, op: Operation) -> None:
        if self.listener is not None:
            self.listener.notify_op_created(op)

    def _modified(self, op: Operation) -> None:
        if self.listener is not None:
            self.listener.notify_op_modified(op)

    def _erased(self, op: Operation) -> None:
        if self.listener is not None:
            self.listener.notify_op_erased(op)

    def _notify_users_of(self, values: Iterable[SSAValue]) -> None:
        if self.listener is None:
            return
        for value in values:
            for use in list(value.uses):
                self.listener.notify_op_modified(use.operation)

    def _notify_definers_of(self, op: Operation) -> None:
        """Operand definers of ``op`` may become dead once ``op`` goes away."""
        if self.listener is None:
            return
        for operand in op.operands:
            owner = operand.owner()
            if isinstance(owner, Operation):
                self.listener.notify_op_modified(owner)

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #

    def insert_op_before_matched_op(self, ops: Operation | Sequence[Operation]) -> None:
        self.insert_op_before(ops, self.current_op)

    def insert_op_after_matched_op(self, ops: Operation | Sequence[Operation]) -> None:
        self.insert_op_after(ops, self.current_op)

    def insert_op_before(
        self, ops: Operation | Sequence[Operation], target: Operation
    ) -> None:
        block = target.parent
        assert block is not None, "target op is not attached to a block"
        for op in _as_list(ops):
            block.insert_op_before(op, target)
            self._created(op)
        self.has_done_action = True

    def insert_op_after(
        self, ops: Operation | Sequence[Operation], target: Operation
    ) -> None:
        block = target.parent
        assert block is not None, "target op is not attached to a block"
        anchor = target
        for op in _as_list(ops):
            block.insert_op_after(op, anchor)
            self._created(op)
            anchor = op
        self.has_done_action = True

    def insert_op_at_end(self, ops: Operation | Sequence[Operation], block: Block) -> None:
        for op in _as_list(ops):
            block.add_op(op)
            self._created(op)
        self.has_done_action = True

    def insert_op_at_start(
        self, ops: Operation | Sequence[Operation], block: Block
    ) -> None:
        for index, op in enumerate(_as_list(ops)):
            block.insert_op(op, index)
            self._created(op)
        self.has_done_action = True

    # ------------------------------------------------------------------ #
    # Replacement / erasure
    # ------------------------------------------------------------------ #

    def replace_matched_op(
        self,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:
        self.replace_op(self.current_op, new_ops, new_results)

    def replace_op(
        self,
        op: Operation,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:
        """Replace ``op`` with ``new_ops``.

        The results of ``op`` are replaced by ``new_results`` if given,
        otherwise by the results of the last new operation.
        """
        ops = _as_list(new_ops)
        block = op.parent
        assert block is not None, "cannot replace a detached op"
        for new_op in ops:
            block.insert_op_before(new_op, op)
            self._created(new_op)

        if new_results is None:
            new_results = list(ops[-1].results) if ops else []
        if len(new_results) != len(op.results):
            raise VerifyException(
                f"replacing '{op.name}': expected {len(op.results)} replacement "
                f"values, got {len(new_results)}"
            )
        for old_result, new_value in zip(op.results, new_results):
            if new_value is None:
                if old_result.has_uses:
                    raise VerifyException(
                        f"replacing '{op.name}': result has uses but no replacement"
                    )
                continue
            self._notify_users_of([old_result])
            old_result.replace_all_uses_with(new_value)
        self._notify_definers_of(op)
        op.erase()
        self._erased(op)
        self.has_done_action = True

    def erase_matched_op(self) -> None:
        self.erase_op(self.current_op)

    def erase_op(self, op: Operation) -> None:
        self._notify_definers_of(op)
        op.erase()
        self._erased(op)
        self.has_done_action = True

    def replace_all_uses_with(self, old: SSAValue, new: SSAValue) -> None:
        self._notify_users_of([old])
        old.replace_all_uses_with(new)
        self.has_done_action = True

    def set_operand(self, op: Operation, index: int, new_value: SSAValue) -> None:
        """Swap one operand of ``op``, notifying the driver."""
        old = op.operands[index]
        owner = old.owner()
        if isinstance(owner, Operation):
            self._modified(owner)
        op.set_operand(index, new_value)
        self._modified(op)
        self.has_done_action = True

    def notify_op_modified(self, op: Operation) -> None:
        """Record an in-place mutation done outside the rewriter's methods."""
        self._modified(op)
        self.has_done_action = True

    # ------------------------------------------------------------------ #
    # Region surgery
    # ------------------------------------------------------------------ #

    def inline_block_before(
        self, block: Block, target: Operation, arg_values: Sequence[SSAValue] = ()
    ) -> None:
        """Move all ops of ``block`` before ``target``, mapping block args."""
        if arg_values:
            if len(arg_values) != len(block.args):
                raise VerifyException(
                    "inline_block_before: argument count mismatch "
                    f"({len(arg_values)} values for {len(block.args)} args)"
                )
            for arg, value in zip(block.args, arg_values):
                self._notify_users_of([arg])
                arg.replace_all_uses_with(value)
        for op in list(block.ops):
            op.detach()
            assert target.parent is not None
            target.parent.insert_op_before(op, target)
            self._created(op)
        self.has_done_action = True

    def move_region_contents_to_new_block(self, region: Region) -> Block:
        """Detach the single block of ``region`` and return it."""
        block = region.block
        region.blocks.remove(block)
        block.parent = None
        self.has_done_action = True
        return block


def _as_list(ops: Operation | Sequence[Operation]) -> list[Operation]:
    if isinstance(ops, Operation):
        return [ops]
    return list(ops)


# --------------------------------------------------------------------------- #
# Patterns
# --------------------------------------------------------------------------- #


def op_rewrite_pattern(method):
    """Restrict a ``match_and_rewrite`` method to the annotated op class.

    The decorated method declares its root operation type through the type
    annotation of its ``op`` parameter::

        class FoldAdd(RewritePattern):
            @op_rewrite_pattern
            def match_and_rewrite(self, op: arith.AddfOp, rewriter):
                ...

    Union annotations (``A | B``) register the pattern for every member.  The
    driver uses the declared types to dispatch: ops of other classes never
    reach the pattern.
    """
    hints = typing.get_type_hints(method)
    parameters = list(inspect.signature(method).parameters)
    if len(parameters) < 3:
        raise TypeError(
            "op_rewrite_pattern expects a method(self, op, rewriter) signature"
        )
    annotation = hints.get(parameters[1])
    if annotation is None:
        raise TypeError(
            "op_rewrite_pattern requires a type annotation on the op parameter"
        )
    op_types = _expand_annotation(annotation)

    @functools.wraps(method)
    def wrapper(self, op: Operation, rewriter: PatternRewriter) -> None:
        if isinstance(op, op_types):
            method(self, op, rewriter)

    wrapper.__root_op_types__ = op_types
    return wrapper


def _expand_annotation(annotation) -> tuple[type[Operation], ...]:
    origin = typing.get_origin(annotation)
    if origin is typing.Union or origin is getattr(types, "UnionType", None):
        members = typing.get_args(annotation)
    else:
        members = (annotation,)
    op_types = []
    for member in members:
        if not (isinstance(member, type) and issubclass(member, Operation)):
            raise TypeError(
                f"op_rewrite_pattern annotation {member!r} is not an Operation class"
            )
        op_types.append(member)
    return tuple(op_types)


class RewritePattern:
    """Base class for rewrite patterns.

    Subclasses override :meth:`match_and_rewrite`; a pattern that does not
    apply to the given op simply returns without calling any rewriter method.
    Decorating ``match_and_rewrite`` with :func:`op_rewrite_pattern` (or
    subclassing :class:`TypedPattern`) declares the root op class, which lets
    the worklist driver skip the pattern for every other op class.
    """

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        raise NotImplementedError

    def root_op_types(self) -> tuple[type[Operation], ...] | None:
        """Op classes this pattern can fire on; ``None`` means any op."""
        return getattr(type(self).match_and_rewrite, "__root_op_types__", None)


class TypedPattern(RewritePattern):
    """A pattern that only fires on a specific operation class."""

    op_type: type[Operation] = Operation

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        if isinstance(op, self.op_type):
            self.rewrite(op, rewriter)

    def root_op_types(self) -> tuple[type[Operation], ...] | None:
        if self.op_type is Operation:
            return None
        return (self.op_type,)

    def rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        raise NotImplementedError


class GreedyRewritePatternApplier(RewritePattern):
    """Applies the first matching pattern from an ordered list."""

    def __init__(self, patterns: Iterable[RewritePattern]):
        self.patterns = list(patterns)

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        for pattern in self.patterns:
            pattern.match_and_rewrite(op, rewriter)
            if rewriter.has_done_action:
                return

    def root_op_types(self) -> tuple[type[Operation], ...] | None:
        union: list[type[Operation]] = []
        for pattern in self.patterns:
            types = pattern.root_op_types()
            if types is None:
                return None
            union.extend(types)
        return tuple(union)


# --------------------------------------------------------------------------- #
# Worklist driver
# --------------------------------------------------------------------------- #


class _Worklist:
    """LIFO worklist of operations with O(1) membership dedup."""

    __slots__ = ("_stack", "_ids")

    def __init__(self) -> None:
        self._stack: list[Operation] = []
        self._ids: set[int] = set()

    def push(self, op: Operation) -> None:
        key = id(op)
        if key not in self._ids:
            self._ids.add(key)
            self._stack.append(op)

    def pop(self) -> Operation | None:
        if not self._stack:
            return None
        op = self._stack.pop()
        self._ids.discard(id(op))
        return op

    def __bool__(self) -> bool:
        return bool(self._stack)

    def __len__(self) -> int:
        return len(self._stack)


def _flatten_patterns(
    patterns: RewritePattern | Iterable[RewritePattern],
) -> list[RewritePattern]:
    if isinstance(patterns, RewritePattern):
        patterns = [patterns]
    flat: list[RewritePattern] = []
    for pattern in patterns:
        if isinstance(pattern, GreedyRewritePatternApplier):
            flat.extend(pattern.patterns)
        else:
            flat.append(pattern)
    return flat


class GreedyRewriteDriver(RewriteListener):
    """Worklist-based greedy pattern driver.

    Seeds a worklist with every op of the module in pre-order, then pops ops
    and applies the first matching candidate pattern.  Rewrites report their
    footprint (created / modified / erased ops) through the
    :class:`RewriteListener` interface, and only those ops (plus the
    neighbours whose liveness they may have changed) are re-enqueued — the
    module is never re-walked.

    Patterns are indexed by their declared root op class; ops only run the
    patterns that can actually fire on them, in registration order, which
    preserves the first-match priority of
    :class:`GreedyRewritePatternApplier`.
    """

    def __init__(
        self,
        patterns: RewritePattern | Iterable[RewritePattern],
        *,
        apply_recursively: bool = True,
        max_rewrites: int = 1_000_000,
    ):
        self.patterns = _flatten_patterns(patterns)
        self.apply_recursively = apply_recursively
        self.max_rewrites = max_rewrites
        self.num_rewrites = 0
        self._pattern_roots = [pattern.root_op_types() for pattern in self.patterns]
        self._dispatch_cache: dict[type, tuple[RewritePattern, ...]] = {}
        self._worklist = _Worklist()

    # -- dispatch ------------------------------------------------------- #

    def _candidates(self, op_class: type) -> tuple[RewritePattern, ...]:
        cached = self._dispatch_cache.get(op_class)
        if cached is None:
            cached = tuple(
                pattern
                for pattern, roots in zip(self.patterns, self._pattern_roots)
                if roots is None or issubclass(op_class, roots)
            )
            self._dispatch_cache[op_class] = cached
        return cached

    # -- listener ------------------------------------------------------- #

    def notify_op_created(self, op: Operation) -> None:
        for nested in reversed(list(op.walk())):
            self._worklist.push(nested)

    def notify_op_modified(self, op: Operation) -> None:
        self._worklist.push(op)

    def notify_op_erased(self, op: Operation) -> None:
        # Popped ops are checked for detachment; nothing to do eagerly.
        pass

    # -- driving -------------------------------------------------------- #

    @staticmethod
    def _is_attached(op: Operation, root: Operation) -> bool:
        """True if ``op`` is still reachable from ``root``.

        Checking ``op.parent`` alone is not enough: erasing an op with
        nested regions detaches only the subtree root, while the inner ops
        keep their parent pointers.
        """
        while op is not root:
            block = op.parent
            if block is None or block.parent is None:
                return False
            op = block.parent.parent
            if op is None:
                return False
        return True

    def rewrite_module(self, root: Operation) -> bool:
        """Apply patterns until no more changes occur.  Returns True if the
        module was modified at all."""
        self.num_rewrites = 0
        worklist = self._worklist = _Worklist()
        for op in reversed(list(root.walk())):
            worklist.push(op)

        changed_any = False
        while (op := worklist.pop()) is not None:
            if not self._is_attached(op, root):
                continue  # erased or detached since it was enqueued
            candidates = self._candidates(type(op))
            if not candidates:
                continue
            rewriter = PatternRewriter(op, listener=self)
            for pattern in candidates:
                pattern.match_and_rewrite(op, rewriter)
                if rewriter.has_done_action:
                    changed_any = True
                    self.num_rewrites += 1
                    _record_rewrite()
                    if self.num_rewrites > self.max_rewrites:
                        raise VerifyException(
                            "pattern rewriting did not converge within "
                            f"{self.max_rewrites} rewrites"
                        )
                    if self.apply_recursively and (
                        op is root or op.parent is not None
                    ):
                        # The root may match again (same or later patterns).
                        worklist.push(op)
                    break
        return changed_any


# --------------------------------------------------------------------------- #
# Legacy restart-the-world driver
# --------------------------------------------------------------------------- #


class RestartingRewriteWalker:
    """Reference driver that restarts a full pre-order walk after every
    rewrite.

    This was the original driver: simple and predictable, but the restart
    makes whole-module rewriting quadratic (or worse) in module size.  It is
    kept as the behavioural reference for the worklist driver — equivalence
    tests and compile-time benchmarks run both and compare.
    """

    def __init__(
        self,
        pattern: RewritePattern,
        *,
        apply_recursively: bool = True,
        max_iterations: int = 10_000,
    ):
        self.pattern = pattern
        self.apply_recursively = apply_recursively
        self.max_iterations = max_iterations

    def rewrite_module(self, module: Operation) -> bool:
        """Apply patterns until no more changes occur.  Returns True if the
        module was modified at all."""
        changed_any = False
        for _ in range(self.max_iterations):
            changed = self._single_sweep(module)
            changed_any |= changed
            if not changed or not self.apply_recursively:
                return changed_any
        raise VerifyException(
            "pattern rewriting did not converge within "
            f"{self.max_iterations} iterations"
        )

    def _single_sweep(self, module: Operation) -> bool:
        for op in list(module.walk()):
            # The op may have been detached by an earlier rewrite this sweep.
            if op is not module and op.parent is None:
                continue
            rewriter = PatternRewriter(op)
            self.pattern.match_and_rewrite(op, rewriter)
            if rewriter.has_done_action:
                _record_rewrite()
                return True
        return False


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #

#: When true, :func:`apply_patterns_greedily` routes through the legacy
#: restarting walker.  Flipped by :func:`use_restarting_driver` so
#: equivalence tests and benchmarks can run the whole pipeline on the
#: reference implementation.
_FORCE_RESTARTING_DRIVER: list[bool] = [False]


@contextmanager
def use_restarting_driver() -> Iterator[None]:
    """Route all :func:`apply_patterns_greedily` calls through the legacy
    restart-the-world driver for the duration of the ``with`` block."""
    _FORCE_RESTARTING_DRIVER.append(True)
    try:
        yield
    finally:
        _FORCE_RESTARTING_DRIVER.pop()


def apply_patterns_greedily(
    module: Operation,
    patterns: RewritePattern | Iterable[RewritePattern],
    *,
    apply_recursively: bool = True,
    max_rewrites: int = 1_000_000,
) -> bool:
    """Apply ``patterns`` over ``module`` to a fixpoint.

    The standard entry point for transformation passes.  Uses the worklist
    driver unless the legacy driver was requested via
    :func:`use_restarting_driver`.
    """
    if _FORCE_RESTARTING_DRIVER[-1]:
        flat = _flatten_patterns(patterns)
        pattern = flat[0] if len(flat) == 1 else GreedyRewritePatternApplier(flat)
        return RestartingRewriteWalker(
            pattern,
            apply_recursively=apply_recursively,
            max_iterations=max_rewrites,
        ).rewrite_module(module)
    return GreedyRewriteDriver(
        patterns,
        apply_recursively=apply_recursively,
        max_rewrites=max_rewrites,
    ).rewrite_module(module)


class PatternRewriteWalker:
    """Deprecated compatibility shim over :class:`GreedyRewriteDriver`.

    Pre-worklist code constructed ``PatternRewriteWalker(pattern)`` and
    called ``rewrite_module``; that entry point keeps working (including the
    ``use_restarting_driver`` escape hatch), but new code should call
    :func:`apply_patterns_greedily` directly.
    """

    def __init__(
        self,
        pattern: RewritePattern,
        *,
        apply_recursively: bool = True,
        max_iterations: int = 10_000,
    ):
        self.pattern = pattern
        self.apply_recursively = apply_recursively
        self.max_iterations = max_iterations

    def rewrite_module(self, module: Operation) -> bool:
        return apply_patterns_greedily(
            module,
            self.pattern,
            apply_recursively=self.apply_recursively,
            max_rewrites=self.max_iterations,
        )
