"""Pattern-based IR rewriting infrastructure.

Transformation passes are written as :class:`RewritePattern` subclasses whose
``match_and_rewrite`` method inspects one operation at a time and mutates the
IR through the :class:`PatternRewriter` it is given.  The
:class:`PatternRewriteWalker` drives patterns over a module until a fixpoint
is reached.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.ir.builder import InsertPoint
from repro.ir.exceptions import VerifyException
from repro.ir.operation import Block, Operation, Region
from repro.ir.value import SSAValue


class PatternRewriter:
    """Mutation interface handed to rewrite patterns.

    Tracks whether any modification happened so the driver can decide
    whether another fixpoint iteration is needed.
    """

    def __init__(self, current_op: Operation):
        self.current_op = current_op
        self.has_done_action = False

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #

    def insert_op_before_matched_op(self, ops: Operation | Sequence[Operation]) -> None:
        self.insert_op_before(ops, self.current_op)

    def insert_op_after_matched_op(self, ops: Operation | Sequence[Operation]) -> None:
        self.insert_op_after(ops, self.current_op)

    def insert_op_before(
        self, ops: Operation | Sequence[Operation], target: Operation
    ) -> None:
        block = target.parent
        assert block is not None, "target op is not attached to a block"
        for op in _as_list(ops):
            block.insert_op_before(op, target)
        self.has_done_action = True

    def insert_op_after(
        self, ops: Operation | Sequence[Operation], target: Operation
    ) -> None:
        block = target.parent
        assert block is not None, "target op is not attached to a block"
        anchor = target
        for op in _as_list(ops):
            block.insert_op_after(op, anchor)
            anchor = op
        self.has_done_action = True

    def insert_op_at_end(self, ops: Operation | Sequence[Operation], block: Block) -> None:
        for op in _as_list(ops):
            block.add_op(op)
        self.has_done_action = True

    def insert_op_at_start(
        self, ops: Operation | Sequence[Operation], block: Block
    ) -> None:
        for index, op in enumerate(_as_list(ops)):
            block.insert_op(op, index)
        self.has_done_action = True

    # ------------------------------------------------------------------ #
    # Replacement / erasure
    # ------------------------------------------------------------------ #

    def replace_matched_op(
        self,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:
        self.replace_op(self.current_op, new_ops, new_results)

    def replace_op(
        self,
        op: Operation,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:
        """Replace ``op`` with ``new_ops``.

        The results of ``op`` are replaced by ``new_results`` if given,
        otherwise by the results of the last new operation.
        """
        ops = _as_list(new_ops)
        block = op.parent
        assert block is not None, "cannot replace a detached op"
        index = block.ops.index(op)
        for offset, new_op in enumerate(ops):
            block.insert_op(new_op, index + offset)

        if new_results is None:
            new_results = list(ops[-1].results) if ops else []
        if len(new_results) != len(op.results):
            raise VerifyException(
                f"replacing '{op.name}': expected {len(op.results)} replacement "
                f"values, got {len(new_results)}"
            )
        for old_result, new_value in zip(op.results, new_results):
            if new_value is None:
                if old_result.has_uses:
                    raise VerifyException(
                        f"replacing '{op.name}': result has uses but no replacement"
                    )
                continue
            old_result.replace_all_uses_with(new_value)
        op.erase()
        self.has_done_action = True

    def erase_matched_op(self) -> None:
        self.erase_op(self.current_op)

    def erase_op(self, op: Operation) -> None:
        op.erase()
        self.has_done_action = True

    def replace_all_uses_with(self, old: SSAValue, new: SSAValue) -> None:
        old.replace_all_uses_with(new)
        self.has_done_action = True

    # ------------------------------------------------------------------ #
    # Region surgery
    # ------------------------------------------------------------------ #

    def inline_block_before(
        self, block: Block, target: Operation, arg_values: Sequence[SSAValue] = ()
    ) -> None:
        """Move all ops of ``block`` before ``target``, mapping block args."""
        if arg_values:
            if len(arg_values) != len(block.args):
                raise VerifyException(
                    "inline_block_before: argument count mismatch "
                    f"({len(arg_values)} values for {len(block.args)} args)"
                )
            for arg, value in zip(block.args, arg_values):
                arg.replace_all_uses_with(value)
        for op in list(block.ops):
            op.detach()
            assert target.parent is not None
            target.parent.insert_op_before(op, target)
        self.has_done_action = True

    def move_region_contents_to_new_block(self, region: Region) -> Block:
        """Detach the single block of ``region`` and return it."""
        block = region.block
        region.blocks.remove(block)
        block.parent = None
        self.has_done_action = True
        return block


def _as_list(ops: Operation | Sequence[Operation]) -> list[Operation]:
    if isinstance(ops, Operation):
        return [ops]
    return list(ops)


class RewritePattern:
    """Base class for rewrite patterns.

    Subclasses override :meth:`match_and_rewrite`; a pattern that does not
    apply to the given op simply returns without calling any rewriter method.
    """

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        raise NotImplementedError


class TypedPattern(RewritePattern):
    """A pattern that only fires on a specific operation class."""

    op_type: type[Operation] = Operation

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        if isinstance(op, self.op_type):
            self.rewrite(op, rewriter)

    def rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        raise NotImplementedError


class GreedyRewritePatternApplier(RewritePattern):
    """Applies the first matching pattern from an ordered list."""

    def __init__(self, patterns: Iterable[RewritePattern]):
        self.patterns = list(patterns)

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        for pattern in self.patterns:
            pattern.match_and_rewrite(op, rewriter)
            if rewriter.has_done_action:
                return


class PatternRewriteWalker:
    """Drives a pattern over all ops of a module until a fixpoint.

    Iterates in pre-order; after any change the walk restarts, up to
    ``max_iterations`` times, which keeps the driver simple and predictable
    for the moderately sized modules used here.
    """

    def __init__(
        self,
        pattern: RewritePattern,
        *,
        apply_recursively: bool = True,
        max_iterations: int = 10_000,
    ):
        self.pattern = pattern
        self.apply_recursively = apply_recursively
        self.max_iterations = max_iterations

    def rewrite_module(self, module: Operation) -> bool:
        """Apply patterns until no more changes occur.  Returns True if the
        module was modified at all."""
        changed_any = False
        for _ in range(self.max_iterations):
            changed = self._single_sweep(module)
            changed_any |= changed
            if not changed or not self.apply_recursively:
                return changed_any
        raise VerifyException(
            "pattern rewriting did not converge within "
            f"{self.max_iterations} iterations"
        )

    def _single_sweep(self, module: Operation) -> bool:
        for op in list(module.walk()):
            # The op may have been detached by an earlier rewrite this sweep.
            if op is not module and op.parent is None:
                continue
            rewriter = PatternRewriter(op)
            self.pattern.match_and_rewrite(op, rewriter)
            if rewriter.has_done_action:
                return True
        return False
