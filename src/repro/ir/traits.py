"""Operation traits: reusable verification/metadata mixins for op classes."""

from __future__ import annotations

from repro.ir.exceptions import VerifyException
from repro.ir.operation import Operation


class OpTrait:
    """Base class for traits; traits are stateless and verified per-op."""

    @classmethod
    def verify(cls, op: Operation) -> None:
        """Check this trait's invariant on the given op."""


class IsTerminator(OpTrait):
    """The operation terminates its block (must be the last op)."""

    @classmethod
    def verify(cls, op: Operation) -> None:
        if op.parent is not None and op.parent.last_op is not op:
            raise VerifyException(
                f"terminator '{op.name}' must be the last operation in its block"
            )


class Pure(OpTrait):
    """The operation has no side effects and may be freely removed/duplicated."""


class HasParent(OpTrait):
    """The operation must be directly nested inside one of the given op types.

    Use :func:`has_parent` to create a specialised subclass.
    """

    parent_types: tuple[type, ...] = ()

    @classmethod
    def verify(cls, op: Operation) -> None:
        if not cls.parent_types:
            return
        parent = op.parent_op()
        if parent is None or not isinstance(parent, cls.parent_types):
            names = ", ".join(t.name for t in cls.parent_types)
            raise VerifyException(
                f"'{op.name}' expects its parent to be one of: {names}"
            )


def has_parent(*parent_types: type) -> type[HasParent]:
    """Create a :class:`HasParent` trait bound to specific parent op types."""

    class _BoundHasParent(HasParent):
        pass

    _BoundHasParent.parent_types = parent_types
    return _BoundHasParent


class IsolatedFromAbove(OpTrait):
    """Regions of this op may not reference SSA values defined outside it."""

    @classmethod
    def verify(cls, op: Operation) -> None:
        inside: set[int] = set()
        for inner in op.walk():
            for result in inner.results:
                inside.add(id(result))
            for region in inner.regions:
                for block in region.blocks:
                    for arg in block.args:
                        inside.add(id(arg))
        for inner in op.walk():
            if inner is op:
                continue
            for operand in inner.operands:
                if id(operand) not in inside:
                    raise VerifyException(
                        f"'{inner.name}' inside isolated op '{op.name}' uses a "
                        "value defined outside of it"
                    )
