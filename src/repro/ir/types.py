"""Type attributes used as the types of SSA values.

The subset implemented mirrors what the paper's pipeline manipulates:
scalars (integers, floats, index), function types, and the two shaped
container types ``tensor`` (value semantics) and ``memref`` (reference
semantics) whose interplay drives the bufferization stage.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.ir.attributes import Attribute


class TypeAttribute(Attribute):
    """Marker base class: attributes usable as SSA value types."""

    name = "type"


class IntegerType(TypeAttribute):
    """A fixed-width signless integer type (``i1``, ``i16``, ``i32``, ...)."""

    name = "integer_type"

    def __init__(self, width: int):
        self.width = int(width)

    def _key(self) -> tuple:
        return (self.width,)

    def __str__(self) -> str:
        return f"i{self.width}"


class IndexType(TypeAttribute):
    """The platform-sized index type used for loop induction variables."""

    name = "index_type"

    def _key(self) -> tuple:
        return ()

    def __str__(self) -> str:
        return "index"


class _FloatType(TypeAttribute):
    """Base class of the floating point types."""

    width: int = 0

    def _key(self) -> tuple:
        return (self.width,)

    def __str__(self) -> str:
        return f"f{self.width}"

    @property
    def bitwidth(self) -> int:
        return self.width


class Float16Type(_FloatType):
    name = "f16_type"
    width = 16


class Float32Type(_FloatType):
    name = "f32_type"
    width = 32


class Float64Type(_FloatType):
    name = "f64_type"
    width = 64


class FunctionType(TypeAttribute):
    """The type of a function: inputs and results."""

    name = "function_type"

    def __init__(self, inputs: Iterable[Attribute], outputs: Iterable[Attribute]):
        self.inputs: tuple[Attribute, ...] = tuple(inputs)
        self.outputs: tuple[Attribute, ...] = tuple(outputs)

    def _key(self) -> tuple:
        return (self.inputs, self.outputs)

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.outputs)
        return f"({ins}) -> ({outs})"


class ShapedType(TypeAttribute):
    """Common base for container types with a static shape and element type."""

    #: sentinel for a dynamic dimension.
    DYNAMIC = -1

    def __init__(self, shape: Sequence[int], element_type: Attribute):
        self.shape: tuple[int, ...] = tuple(int(dim) for dim in shape)
        self.element_type = element_type

    @property
    def rank(self) -> int:
        return len(self.shape)

    def element_count(self) -> int:
        """Total number of elements; dynamic dims count as 1."""
        count = 1
        for dim in self.shape:
            count *= dim if dim != self.DYNAMIC else 1
        return count

    def _key(self) -> tuple:
        return (self.shape, self.element_type)

    def _shape_str(self) -> str:
        dims = "x".join("?" if d == self.DYNAMIC else str(d) for d in self.shape)
        return f"{dims}x{self.element_type}" if dims else str(self.element_type)


class TensorType(ShapedType):
    """Immutable value-semantics container of elements."""

    name = "tensor_type"

    def __str__(self) -> str:
        return f"tensor<{self._shape_str()}>"


class MemRefType(ShapedType):
    """Mutable reference-semantics buffer of elements."""

    name = "memref_type"

    def __str__(self) -> str:
        return f"memref<{self._shape_str()}>"


#: Singleton-ish convenience instances.  Types are structurally compared, so
#: fresh instances compare equal to these; the constants just read better.
i1 = IntegerType(1)
i16 = IntegerType(16)
i32 = IntegerType(32)
i64 = IntegerType(64)
f16 = Float16Type()
f32 = Float32Type()
f64 = Float64Type()


def element_bytes(element_type: Attribute) -> int:
    """Size in bytes of a scalar element of the given type."""
    if isinstance(element_type, IntegerType):
        return max(1, element_type.width // 8)
    if isinstance(element_type, _FloatType):
        return element_type.width // 8
    if isinstance(element_type, IndexType):
        return 8
    raise ValueError(f"cannot compute byte size of {element_type}")
