"""SSA values and their def-use chains."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.ir.attributes import Attribute

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.operation import Block, Operation


class Use:
    """A single use of an SSA value: an operation and an operand index."""

    __slots__ = ("operation", "index")

    def __init__(self, operation: "Operation", index: int):
        self.operation = operation
        self.index = index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Use)
            and other.operation is self.operation
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash((id(self.operation), self.index))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Use({self.operation.name}, {self.index})"


class SSAValue:
    """Base class for values defined by operations or block arguments."""

    def __init__(self, value_type: Attribute):
        self.type = value_type
        self.uses: set[Use] = set()
        #: optional human-readable name used by the printer.
        self.name_hint: str | None = None

    def add_use(self, use: Use) -> None:
        self.uses.add(use)

    def remove_use(self, use: Use) -> None:
        self.uses.discard(use)

    @property
    def has_uses(self) -> bool:
        return bool(self.uses)

    def users(self) -> Iterable["Operation"]:
        """Operations that use this value (deduplicated, unordered)."""
        seen: set[int] = set()
        for use in self.uses:
            if id(use.operation) not in seen:
                seen.add(id(use.operation))
                yield use.operation

    def replace_all_uses_with(self, new_value: "SSAValue") -> None:
        """Rewrite every use of this value to use ``new_value`` instead."""
        if new_value is self:
            return
        for use in list(self.uses):
            use.operation.set_operand(use.index, new_value)

    def owner(self) -> "Operation | Block | None":
        """The operation or block that defines this value."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        hint = self.name_hint or "?"
        return f"<{type(self).__name__} %{hint} : {self.type}>"


class OpResult(SSAValue):
    """A value produced as one of the results of an operation."""

    def __init__(self, value_type: Attribute, op: "Operation", index: int):
        super().__init__(value_type)
        self.op = op
        self.index = index

    def owner(self) -> "Operation":
        return self.op


class BlockArgument(SSAValue):
    """A value defined as an argument of a block."""

    def __init__(self, value_type: Attribute, block: "Block", index: int):
        super().__init__(value_type)
        self.block = block
        self.index = index

    def owner(self) -> "Block":
        return self.block
