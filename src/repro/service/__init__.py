"""The compilation service: content-addressed caching and batched compiles.

Layered on top of the one-shot ``compile_stencil_program``:

* :mod:`repro.service.fingerprint` — canonical, process-stable content hash
  of a (program, options, pipeline-version) triple;
* :mod:`repro.service.cache` — two-tier artifact cache (in-memory LRU over
  an on-disk store) keyed by fingerprint;
* :mod:`repro.service.service` — :class:`CompileService`, which serves
  cache hits and fans cache misses out over a process pool;
* :mod:`repro.service.run` — :class:`RunService`, end-to-end run jobs
  (compile → simulate → field digests) content-addressed by run
  fingerprints that fold in the executor, seed, round budget and
  execution-plan version;
* :mod:`repro.service.queue` — :class:`JobQueue`, the async run-queue
  daemon: persistent SQLite-backed jobs with an explicit lifecycle state
  machine, a crash-isolated worker pool and named resumable experiments;
* :mod:`repro.service.cli` — ``python -m repro.service`` batch front door
  (``compile`` / ``run`` / ``queue`` / ``stats`` / ``purge``).
"""

from repro.service.cache import (
    ArtifactCache,
    CacheStatistics,
    CompiledArtifact,
    DiskArtifactCache,
    InMemoryArtifactCache,
    REPRO_CACHE_DIR_ENV,
)
from repro.service.fingerprint import canonical_json, compute_fingerprint
from repro.service.queue import (
    Experiment,
    JobHandle,
    JobQueue,
    JobStatus,
    JobStore,
    SweepConfig,
    WorkerPool,
)
from repro.service.run import (
    RunArtifact,
    RunArtifactStore,
    RunService,
    RunServiceStatistics,
    compute_run_fingerprint,
)
from repro.service.service import (
    CompileJob,
    CompileService,
    ServiceStatistics,
    build_artifact,
    default_service,
    reset_default_service,
)

__all__ = [
    "ArtifactCache",
    "CacheStatistics",
    "CompileJob",
    "CompileService",
    "CompiledArtifact",
    "DiskArtifactCache",
    "Experiment",
    "InMemoryArtifactCache",
    "JobHandle",
    "JobQueue",
    "JobStatus",
    "JobStore",
    "REPRO_CACHE_DIR_ENV",
    "RunArtifact",
    "RunArtifactStore",
    "RunService",
    "RunServiceStatistics",
    "ServiceStatistics",
    "SweepConfig",
    "WorkerPool",
    "build_artifact",
    "canonical_json",
    "compute_fingerprint",
    "compute_run_fingerprint",
    "default_service",
    "reset_default_service",
]
