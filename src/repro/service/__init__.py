"""The compilation service: content-addressed caching and batched compiles.

Layered on top of the one-shot ``compile_stencil_program``:

* :mod:`repro.service.fingerprint` — canonical, process-stable content hash
  of a (program, options, pipeline-version) triple;
* :mod:`repro.service.cache` — two-tier artifact cache (in-memory LRU over
  an on-disk store) keyed by fingerprint;
* :mod:`repro.service.service` — :class:`CompileService`, which serves
  cache hits and fans cache misses out over a process pool;
* :mod:`repro.service.cli` — ``python -m repro.service`` batch front door.
"""

from repro.service.cache import (
    ArtifactCache,
    CacheStatistics,
    CompiledArtifact,
    DiskArtifactCache,
    InMemoryArtifactCache,
    REPRO_CACHE_DIR_ENV,
)
from repro.service.fingerprint import canonical_json, compute_fingerprint
from repro.service.service import (
    CompileJob,
    CompileService,
    ServiceStatistics,
    build_artifact,
    default_service,
    reset_default_service,
)

__all__ = [
    "ArtifactCache",
    "CacheStatistics",
    "CompileJob",
    "CompileService",
    "CompiledArtifact",
    "DiskArtifactCache",
    "InMemoryArtifactCache",
    "REPRO_CACHE_DIR_ENV",
    "ServiceStatistics",
    "build_artifact",
    "canonical_json",
    "compute_fingerprint",
    "default_service",
    "reset_default_service",
]
