"""Two-tier artifact cache: in-memory LRU over an on-disk store.

Artifacts are keyed by the content fingerprint of their inputs
(:mod:`repro.service.fingerprint`).  The memory tier absorbs repeat compiles
within a process; the disk tier survives restarts and is shared with pool
workers, which write compiled artifacts straight into it.  Disk writes are
atomic (write-to-temp + ``os.replace``) so concurrent workers can populate
the same store without torn files.

The store location is ``~/.cache/repro-csl`` unless overridden by the
``REPRO_CACHE_DIR`` environment variable or an explicit ``directory``.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: environment variable overriding the on-disk store location.
REPRO_CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: current on-disk artifact schema; bumping it invalidates old stores.
ARTIFACT_SCHEMA_VERSION = 1


@dataclass
class CompiledArtifact:
    """Everything a cache hit has to hand back for one compilation.

    Only plain JSON-serialisable data lives here — the artifact crosses
    process boundaries (pool workers return it) and is persisted to disk.
    """

    fingerprint: str
    program_name: str
    target: str
    grid_width: int
    grid_height: int
    #: printed CSL text keyed by file name (program + layout modules).
    csl_sources: dict[str, str]
    #: pipeline statistics summary: total wall time / rewrites + per-pass rows.
    statistics: dict
    schema_version: int = ARTIFACT_SCHEMA_VERSION

    def total_source_bytes(self) -> int:
        return sum(len(text.encode("utf-8")) for text in self.csl_sources.values())

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "CompiledArtifact":
        data = json.loads(text)
        if data.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
            raise ValueError(
                f"artifact schema {data.get('schema_version')!r} does not "
                f"match current version {ARTIFACT_SCHEMA_VERSION}"
            )
        return cls(**data)


@dataclass
class CacheStatistics:
    """Hit / miss / eviction counters of one :class:`ArtifactCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class InMemoryArtifactCache:
    """Bounded LRU map from fingerprint to artifact."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CompiledArtifact]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> CompiledArtifact | None:
        artifact = self._entries.get(fingerprint)
        if artifact is not None:
            self._entries.move_to_end(fingerprint)
        return artifact

    def put(self, artifact: CompiledArtifact) -> None:
        self._entries[artifact.fingerprint] = artifact
        self._entries.move_to_end(artifact.fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


def resolve_cache_directory(directory: str | os.PathLike | None = None) -> Path:
    """Explicit argument > ``REPRO_CACHE_DIR`` > ``~/.cache/repro-csl``."""
    if directory is not None:
        return Path(directory)
    override = os.environ.get(REPRO_CACHE_DIR_ENV, "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-csl"


class DiskArtifactCache:
    """On-disk artifact store: one ``<fingerprint>.json`` file per artifact."""

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = resolve_cache_directory(directory)

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).is_file()

    def get(self, fingerprint: str) -> CompiledArtifact | None:
        path = self._path(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return CompiledArtifact.from_json(text)
        except (ValueError, TypeError, KeyError):
            # Stale schema or a corrupt file: treat as a miss; the fresh
            # compile overwrites it.
            return None

    def put(self, artifact: CompiledArtifact) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        # Atomic publish so concurrent pool workers never expose torn files.
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=self.directory,
            prefix=f".{artifact.fingerprint[:12]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(artifact.to_json())
            os.replace(handle.name, self._path(artifact.fingerprint))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def total_bytes(self) -> int:
        if not self.directory.is_dir():
            return 0
        total = 0
        for path in self.directory.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                # Concurrently purged by another process; stale-by-one is fine.
                pass
        return total

    def purge(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


class ArtifactCache:
    """The two tiers behind one get/put interface, with counters.

    Lookups try memory first, then disk (promoting disk hits into memory);
    stores write through to both tiers.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        memory_capacity: int = 256,
    ):
        self.memory = InMemoryArtifactCache(memory_capacity)
        self.disk = DiskArtifactCache(directory)
        self.statistics = CacheStatistics()

    def get(self, fingerprint: str) -> CompiledArtifact | None:
        artifact = self.memory.get(fingerprint)
        if artifact is not None:
            self.statistics.memory_hits += 1
            return artifact
        artifact = self.disk.get(fingerprint)
        if artifact is not None:
            self.statistics.disk_hits += 1
            self.memory.put(artifact)
            self.statistics.evictions = self.memory.evictions
            return artifact
        self.statistics.misses += 1
        return None

    def put(self, artifact: CompiledArtifact) -> None:
        self.memory.put(artifact)
        self.disk.put(artifact)
        self.statistics.stores += 1
        self.statistics.evictions = self.memory.evictions

    def put_memory_only(self, artifact: CompiledArtifact) -> None:
        """Mirror an artifact that is already on disk into the memory tier
        (pool workers publish to the shared store themselves; ``stores``
        counts only this cache's own disk writes)."""
        self.memory.put(artifact)
        self.statistics.evictions = self.memory.evictions

    def purge(self) -> int:
        self.memory.clear()
        return self.disk.purge()
