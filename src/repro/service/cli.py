"""``python -m repro.service`` — batch compilation and simulation front door.

Five subcommands:

* ``compile BENCH [BENCH ...]`` — compile named paper benchmarks through the
  service (optionally in parallel and/or repeated to show warm-cache reuse)
  and print per-job outcomes plus the service statistics;
* ``run BENCH [BENCH ...]`` — end-to-end run jobs: compile, simulate on a
  chosen execution backend, and print the per-field result digests; repeats
  are served from the run-artifact cache;
* ``queue submit|status|wait|list|cancel|stats`` — the async job-queue run
  service (:mod:`repro.service.queue.cli`): persistent jobs, lifecycle
  tracking, worker pool, experiments;
* ``stats`` — one combined table across the compile/run/kernel/queue
  stores (entries, bytes, hit rates);
* ``purge`` — empty the on-disk artifact stores.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.benchmarks.definitions import ALL_BENCHMARKS, benchmark_by_name
from repro.frontends.common import BoundaryCondition
from repro.service.cache import DiskArtifactCache
from repro.service.kernels import KernelSourceStore
from repro.service.run import (
    DEFAULT_MAX_ROUNDS,
    DEFAULT_RUN_SEED,
    RunArtifactStore,
    RunService,
)
from repro.wse.codegen import kernel_cache_statistics
from repro.service.service import CompileService
from repro.transforms.pipeline import PipelineOptions
from repro.wse.executors import available_executors


def _parse_grid(text: str) -> tuple[int, int]:
    try:
        width_text, height_text = text.lower().split("x", 1)
        return int(width_text), int(height_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid grid {text!r}: expected WIDTHxHEIGHT, e.g. 4x4"
        ) from None


def _add_job_arguments(
    parser: argparse.ArgumentParser, benchmarks_required: bool = True
) -> None:
    """The benchmark/configuration arguments ``compile`` and ``run`` share."""
    parser.add_argument(
        "benchmarks",
        nargs="+" if benchmarks_required else "*",
        metavar="BENCH",
        help=f"benchmark names ({', '.join(b.name for b in ALL_BENCHMARKS)})",
    )
    parser.add_argument(
        "--grid",
        type=_parse_grid,
        default=(4, 4),
        metavar="WxH",
        help="PE grid extent (default 4x4)",
    )
    parser.add_argument(
        "--num-chunks", type=int, default=2, help="communication chunks"
    )
    parser.add_argument("--target", choices=("wse2", "wse3"), default="wse2")
    parser.add_argument(
        "--boundary",
        default=None,
        metavar="MODE",
        help="override the boundary condition compiled in: 'periodic', "
        "'reflect', 'dirichlet' or 'dirichlet:VALUE' (default: the "
        "benchmark's own declaration)",
    )
    parser.add_argument(
        "--nz", type=int, default=16, help="z extent of the compiled program"
    )
    parser.add_argument(
        "--time-steps", type=int, default=2, help="time-step count"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="submit the batch N times (repeats exercise the warm cache)",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="override the artifact store location"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Cached, batched compilation and simulation of the "
        "paper benchmarks.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser(
        "compile", help="compile named benchmarks through the service"
    )
    _add_job_arguments(compile_parser)
    compile_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool workers (0 = compile inline)",
    )

    run_parser = subparsers.add_parser(
        "run",
        help="end-to-end run jobs: compile, simulate, print field digests",
    )
    _add_job_arguments(run_parser, benchmarks_required=False)
    run_parser.add_argument(
        "--csl",
        default=None,
        metavar="DIR",
        help="run handwritten CSL sources from DIR (*.csl: one program "
        "module plus an optional layout) instead of a named benchmark; "
        "parsed runs ride the same run cache",
    )
    run_parser.add_argument(
        "--executor",
        default=None,
        metavar="NAME",
        help=f"execution backend ({', '.join(available_executors())}; "
        f"default: REPRO_EXECUTOR or the built-in default)",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_RUN_SEED,
        help="input-field seed (part of the run fingerprint)",
    )
    run_parser.add_argument(
        "--max-rounds",
        type=int,
        default=DEFAULT_MAX_ROUNDS,
        help="delivery-round budget (part of the run fingerprint)",
    )

    from repro.service.queue.cli import add_queue_parser

    add_queue_parser(subparsers)

    stats_parser = subparsers.add_parser(
        "stats", help="one combined table across all artifact stores"
    )
    stats_parser.add_argument("--cache-dir", default=None)

    purge_parser = subparsers.add_parser(
        "purge", help="delete every artifact in the on-disk stores"
    )
    purge_parser.add_argument("--cache-dir", default=None)

    return parser


def _build_jobs(args: argparse.Namespace):
    """The (benchmark, program, options) jobs a ``compile``/``run`` names."""
    benchmarks = [benchmark_by_name(name) for name in args.benchmarks]
    width, height = args.grid
    boundary = (
        BoundaryCondition.parse(args.boundary)
        if args.boundary is not None
        else None
    )
    jobs = []
    for benchmark in benchmarks:
        program = benchmark.program(
            nx=width, ny=height, nz=args.nz, time_steps=args.time_steps
        )
        options = PipelineOptions(
            grid_width=width,
            grid_height=height,
            num_chunks=args.num_chunks,
            target=args.target,
            boundary=boundary,
        )
        jobs.append((program, options))
    return benchmarks, jobs


def _run_compile(args: argparse.Namespace, out) -> int:
    try:
        benchmarks, jobs = _build_jobs(args)
        width, height = args.grid
        service = CompileService(max_workers=args.workers, cache_dir=args.cache_dir)
    except (KeyError, ValueError) as error:
        # Unknown benchmark names and out-of-range option values share the
        # friendly error path instead of a traceback.
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    with service:
        for round_index in range(args.repeat):
            round_start = time.perf_counter()
            hits_before = service.statistics.cache_hits
            futures = service.submit_batch(jobs)
            artifacts = [future.result() for future in futures]
            elapsed = time.perf_counter() - round_start
            hits = service.statistics.cache_hits - hits_before
            print(
                f"round {round_index + 1}/{args.repeat}: "
                f"{len(artifacts)} artifacts in {elapsed * 1e3:.1f} ms "
                f"({hits} served from cache)",
                file=out,
            )
            for benchmark, artifact in zip(benchmarks, artifacts):
                total_ms = artifact.statistics.get("total_wall_time", 0.0) * 1e3
                print(
                    f"  {artifact.fingerprint[:12]}  {benchmark.name:<10} "
                    f"{args.target}  {width}x{height}  "
                    f"{len(artifact.csl_sources)} files  "
                    f"{artifact.total_source_bytes()} bytes  "
                    f"(pipeline {total_ms:.1f} ms)",
                    file=out,
                )
        print(service.format_statistics(), file=out)
    return 0


def _run_csl(args: argparse.Namespace, out) -> int:
    """``run --csl DIR``: parse handwritten sources, ride the run cache."""
    import os

    from repro.csl import CslDiagnosticError, parse_csl_sources

    try:
        service = RunService(cache_dir=args.cache_dir)
        if args.executor is not None:
            from repro.wse.executors import executor_by_name

            executor_by_name(args.executor)  # friendly error before any work
        sources: dict[str, str] = {}
        for entry in sorted(os.listdir(args.csl)):
            if entry.endswith(".csl"):
                with open(
                    os.path.join(args.csl, entry), "r", encoding="utf-8"
                ) as handle:
                    sources[entry] = handle.read()
        if not sources:
            raise FileNotFoundError(f"no .csl files found under '{args.csl}'")
        # Parse eagerly so diagnostics surface before any run is submitted.
        parse_csl_sources(sources)
    except (KeyError, ValueError, OSError, CslDiagnosticError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    with service:
        for round_index in range(args.repeat):
            round_start = time.perf_counter()
            hits_before = service.statistics.cache_hits
            artifact = service.run_csl(
                sources,
                executor=args.executor,
                seed=args.seed,
                max_rounds=args.max_rounds,
            )
            elapsed = time.perf_counter() - round_start
            hits = service.statistics.cache_hits - hits_before
            digest_summary = ", ".join(
                f"{name}={digest[:12]}"
                for name, digest in sorted(artifact.field_digests.items())
            )
            print(
                f"round {round_index + 1}/{args.repeat}: "
                f"1 run in {elapsed * 1e3:.1f} ms "
                f"({hits} served from run cache)",
                file=out,
            )
            print(
                f"  {artifact.fingerprint[:12]}  {artifact.program_name:<10} "
                f"{artifact.executor}  "
                f"{artifact.grid_width}x{artifact.grid_height}  "
                f"{artifact.rounds} rounds  {digest_summary}",
                file=out,
            )
        print(service.format_statistics(), file=out)
    return 0


def _run_run(args: argparse.Namespace, out) -> int:
    if args.csl is not None:
        if args.benchmarks:
            print(
                "error: benchmark names and --csl are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        return _run_csl(args, out)
    if not args.benchmarks:
        print(
            "error: name at least one benchmark or pass --csl DIR",
            file=sys.stderr,
        )
        return 2
    try:
        benchmarks, jobs = _build_jobs(args)
        service = RunService(cache_dir=args.cache_dir)
        if args.executor is not None:
            from repro.wse.executors import executor_by_name

            executor_by_name(args.executor)  # friendly error before any work
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    with service:
        for round_index in range(args.repeat):
            round_start = time.perf_counter()
            hits_before = service.statistics.cache_hits
            futures = service.submit_batch(
                jobs,
                executor=args.executor,
                seed=args.seed,
                max_rounds=args.max_rounds,
            )
            artifacts = [future.result() for future in futures]
            elapsed = time.perf_counter() - round_start
            hits = service.statistics.cache_hits - hits_before
            print(
                f"round {round_index + 1}/{args.repeat}: "
                f"{len(artifacts)} runs in {elapsed * 1e3:.1f} ms "
                f"({hits} served from run cache)",
                file=out,
            )
            for benchmark, artifact in zip(benchmarks, artifacts):
                digest_summary = ", ".join(
                    f"{name}={digest[:12]}"
                    for name, digest in sorted(artifact.field_digests.items())
                )
                print(
                    f"  {artifact.fingerprint[:12]}  {benchmark.name:<10} "
                    f"{artifact.executor}  "
                    f"{artifact.grid_width}x{artifact.grid_height}  "
                    f"{artifact.rounds} rounds  {digest_summary}",
                    file=out,
                )
        print(service.format_statistics(), file=out)
    return 0


def _format_rate(hits: int, misses: int) -> str:
    total = hits + misses
    return f"{hits / total:.0%}" if total else "-"


def _run_stats(args: argparse.Namespace, out) -> int:
    from repro.service.queue.store import JobStore

    store = DiskArtifactCache(args.cache_dir)
    runs = RunArtifactStore(args.cache_dir)
    kernels = KernelSourceStore(args.cache_dir)
    queue = JobStore(args.cache_dir)
    cache = kernel_cache_statistics()
    queue_stats = queue.stats()

    # One combined table across every store.  Hits/misses are the counters
    # each store persists or tracks in-process: the kernel cache counts this
    # process's lookups; the queue counts done jobs served from the run
    # cache vs. freshly simulated (persistent); the compile and run stores
    # keep no cross-process hit counters, so those cells stay "-".
    rows = [
        ("store", "entries", "bytes", "hits", "misses", "hit rate"),
        ("compile", len(store), store.total_bytes(), "-", "-", "-"),
        ("run", len(runs), runs.total_bytes(), "-", "-", "-"),
        (
            "kernel",
            len(kernels),
            kernels.total_bytes(),
            cache.hits,
            cache.codegens,
            _format_rate(cache.hits, cache.codegens),
        ),
        (
            "queue",
            queue_stats.jobs,
            queue_stats.total_bytes,
            queue_stats.cache_served,
            queue_stats.simulated,
            _format_rate(queue_stats.cache_served, queue_stats.simulated),
        ),
    ]
    widths = [
        max(len(str(row[column])) for row in rows)
        for column in range(len(rows[0]))
    ]
    for row in rows:
        cells = [str(row[0]).ljust(widths[0])] + [
            str(cell).rjust(width)
            for cell, width in zip(row[1:], widths[1:])
        ]
        print("  ".join(cells).rstrip(), file=out)
    print(f"artifact store: {store.directory}", file=out)
    print(f"run store:      {runs.directory}", file=out)
    print(f"kernel store:   {kernels.directory}", file=out)
    print(f"queue store:    {queue.path}", file=out)
    return 0


def _run_purge(args: argparse.Namespace, out) -> int:
    from repro.service.queue.store import JobStore

    store = DiskArtifactCache(args.cache_dir)
    removed = store.purge()
    runs_removed = RunArtifactStore(args.cache_dir).purge()
    kernels_removed = KernelSourceStore(args.cache_dir).purge()
    jobs_removed = JobStore(args.cache_dir).purge()
    print(f"purged {removed} artifacts from {store.directory}", file=out)
    print(f"purged {runs_removed} run artifacts", file=out)
    print(f"purged {kernels_removed} kernel sources", file=out)
    print(f"purged {jobs_removed} queue jobs", file=out)
    return 0


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compile":
        return _run_compile(args, out)
    if args.command == "run":
        return _run_run(args, out)
    if args.command == "queue":
        from repro.service.queue.cli import run_queue_command

        return run_queue_command(args, out)
    if args.command == "stats":
        return _run_stats(args, out)
    if args.command == "purge":
        return _run_purge(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")
