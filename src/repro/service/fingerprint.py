"""Content-addressed fingerprints of compilation inputs.

A fingerprint is the SHA-256 of a canonical JSON document combining the
stencil program (:meth:`StencilProgram.canonical`), the artifact-relevant
pipeline options (:meth:`PipelineOptions.canonical`) and the pipeline
version stamp (:func:`repro.transforms.pipeline.pipeline_stamp`).  It is
*process-stable*: the same inputs hash identically in the parent process, in
a pool worker and across interpreter restarts, which is what makes the
on-disk artifact store shareable.
"""

from __future__ import annotations

import hashlib
import json

from repro.frontends.common import StencilProgram
from repro.transforms.pipeline import PipelineOptions, pipeline_stamp


def canonical_json(payload: dict) -> str:
    """Serialise a canonical payload deterministically.

    Keys are sorted and separators fixed, so the byte stream (and therefore
    the hash) does not depend on dict construction order.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint_payload(
    program: StencilProgram, options: PipelineOptions
) -> dict:
    """The document that gets hashed, exposed for tests and debugging.

    The boundary condition is hashed once, as the *effective* one: the
    program's declaration only ever reaches the pipeline by inheritance
    into ``options.boundary``, so a program declaring ``periodic`` and an
    identical program overridden to ``periodic`` via the options compile
    byte-identical artifacts — they are normalised into the program slot
    (with the options slot nulled) and share one fingerprint.
    """
    effective = (
        options.boundary if options.boundary is not None else program.boundary
    )
    program_canonical = program.canonical()
    program_canonical["boundary"] = effective.canonical()
    options_canonical = options.canonical()
    options_canonical["boundary"] = None
    return {
        "program": program_canonical,
        "options": options_canonical,
        "pipeline": pipeline_stamp(options),
    }


def compute_fingerprint(
    program: StencilProgram, options: PipelineOptions
) -> str:
    """SHA-256 fingerprint of one compilation configuration."""
    text = canonical_json(fingerprint_payload(program, options))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
