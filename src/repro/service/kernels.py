"""Fleet-wide persistence of generated ``compiled``-backend kernels.

The :mod:`repro.wse.codegen` layer memoises compiled kernels per process,
keyed by content fingerprint.  This store extends that reuse across
processes and hosts sharing a cache directory: kernel *source text* is
persisted as ``kernels/<fingerprint>.py`` under the same
``REPRO_CACHE_DIR`` root the compile and run artifact stores use, so a
fleet member that already paid code generation for a plan leaves the
source behind for everyone else (they still ``exec`` it locally — source,
not code objects, is the portable artifact).

The fingerprint covers the printed program module, the plan's canonical
form and :data:`~repro.wse.codegen.CODEGEN_VERSION`, so stale sources are
simply never looked up again after a semantics change.  Writes are atomic
(tempfile + ``os.replace``) for the same reason the artifact stores' are:
concurrent fleet members may race on one fingerprint, and the losers must
still observe a complete file.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.service.cache import resolve_cache_directory


class KernelSourceStore:
    """On-disk generated-kernel sources: ``kernels/<fingerprint>.py``."""

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = resolve_cache_directory(directory) / "kernels"

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.py"

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.py"))

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).is_file()

    def get(self, fingerprint: str) -> str | None:
        """The stored kernel source, or None when absent/unreadable."""
        try:
            return self._path(fingerprint).read_text(encoding="utf-8")
        except OSError:
            return None

    def put(self, fingerprint: str, source: str) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=self.directory,
            prefix=f".{fingerprint[:12]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(source)
            os.replace(handle.name, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def total_bytes(self) -> int:
        if not self.directory.is_dir():
            return 0
        total = 0
        for path in self.directory.glob("*.py"):
            try:
                total += path.stat().st_size
            except OSError:
                # Concurrently purged by another process; stale-by-one is fine.
                pass
        return total

    def purge(self) -> int:
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.py"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
