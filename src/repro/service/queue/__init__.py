"""Async job-queue run service: persistent jobs, lifecycle tracking,
worker pool, experiments.

See :mod:`repro.service.queue.daemon` for the front door
(:class:`JobQueue`), :mod:`repro.service.queue.store` for the persistent
SQLite job store, :mod:`repro.service.queue.lifecycle` for the state
machine, :mod:`repro.service.queue.workers` for the crash-isolated worker
pool and :mod:`repro.service.queue.experiments` for named, resumable
sweeps.
"""

from repro.service.queue.daemon import JobHandle, JobQueue, QueueStatistics
from repro.service.queue.experiments import (
    Experiment,
    ExperimentProgress,
    SweepConfig,
)
from repro.service.queue.lifecycle import (
    ACTIVE_STATES,
    IllegalTransitionError,
    JobCancelledError,
    JobEvent,
    JobFailedError,
    JobStatus,
    LEGAL_TRANSITIONS,
    PENDING_STATES,
    TERMINAL_STATES,
    UnknownJobError,
)
from repro.service.queue.store import (
    DEFAULT_MAX_ATTEMPTS,
    JobPayload,
    JobRecord,
    JobStore,
    QueueStoreStats,
    QUEUE_SCHEMA_VERSION,
)
from repro.service.queue.workers import WorkerPool, resolve_worker_mode

__all__ = [
    "ACTIVE_STATES",
    "DEFAULT_MAX_ATTEMPTS",
    "Experiment",
    "ExperimentProgress",
    "IllegalTransitionError",
    "JobCancelledError",
    "JobEvent",
    "JobFailedError",
    "JobHandle",
    "JobPayload",
    "JobQueue",
    "JobRecord",
    "JobStatus",
    "JobStore",
    "LEGAL_TRANSITIONS",
    "PENDING_STATES",
    "QUEUE_SCHEMA_VERSION",
    "QueueStatistics",
    "QueueStoreStats",
    "SweepConfig",
    "TERMINAL_STATES",
    "UnknownJobError",
    "WorkerPool",
    "resolve_worker_mode",
]
