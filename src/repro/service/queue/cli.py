"""``python -m repro.service queue ...`` — the async run-queue front door.

Six verbs over one persistent job store:

* ``submit`` — enqueue benchmark run jobs (optionally as a named
  experiment) and either work them to completion right here or
  ``--detach`` and leave them queued for a later ``wait``;
* ``status`` — one job's record (``--events`` adds its full history);
* ``wait`` — start a worker pool, recover any orphaned jobs, and drain
  the queue (or just the named jobs / experiment);
* ``list`` — tabulate jobs and roll up experiment progress;
* ``cancel`` — cancel queued jobs;
* ``stats`` — the persistent store's aggregate counters.

Everything except ``submit``/``wait`` is read-only against the SQLite
store and safe to run while a daemon is working.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.service.queue.daemon import JobQueue
from repro.service.queue.lifecycle import (
    JobStatus,
    PENDING_STATES,
    TERMINAL_STATES,
)
from repro.service.queue.store import DEFAULT_MAX_ATTEMPTS, JobStore
from repro.service.run import DEFAULT_MAX_ROUNDS, DEFAULT_RUN_SEED
from repro.wse.executors import available_executors


def add_queue_parser(subparsers) -> None:
    """Hang the ``queue`` subcommand tree off the service CLI's parser."""
    # Deferred import: this module is itself imported by repro.service.cli.
    from repro.service.cli import _add_job_arguments

    queue_parser = subparsers.add_parser(
        "queue", help="async job-queue run service"
    )
    verbs = queue_parser.add_subparsers(dest="queue_command", required=True)

    submit = verbs.add_parser(
        "submit", help="enqueue run jobs and (unless --detach) work them"
    )
    _add_job_arguments(submit)
    submit.add_argument(
        "--executor",
        default=None,
        metavar="NAME",
        help=f"execution backend ({', '.join(available_executors())}; "
        f"default: REPRO_EXECUTOR or the built-in default)",
    )
    submit.add_argument("--seed", type=int, default=DEFAULT_RUN_SEED)
    submit.add_argument("--max-rounds", type=int, default=DEFAULT_MAX_ROUNDS)
    submit.add_argument(
        "--experiment",
        default=None,
        metavar="NAME",
        help="group the batch as one named, resumable experiment",
    )
    submit.add_argument(
        "--max-attempts",
        type=int,
        default=DEFAULT_MAX_ATTEMPTS,
        help="attempt budget per job (initial execution + retries)",
    )
    submit.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads draining the queue (ignored with --detach)",
    )
    submit.add_argument(
        "--inline",
        action="store_true",
        help="execute jobs in the worker threads instead of forked processes",
    )
    submit.add_argument(
        "--detach",
        action="store_true",
        help="enqueue only; a later `queue wait` executes the jobs",
    )

    status = verbs.add_parser("status", help="show job records")
    status.add_argument("job_ids", nargs="+", type=int, metavar="JOB")
    status.add_argument(
        "--events", action="store_true", help="include the full event history"
    )
    status.add_argument("--cache-dir", default=None)

    wait = verbs.add_parser(
        "wait", help="recover orphans, start workers, drain the queue"
    )
    wait.add_argument(
        "job_ids",
        nargs="*",
        type=int,
        metavar="JOB",
        help="wait for these jobs only (default: drain everything pending)",
    )
    wait.add_argument("--experiment", default=None, metavar="NAME")
    wait.add_argument("--workers", type=int, default=2)
    wait.add_argument("--inline", action="store_true")
    wait.add_argument("--timeout", type=float, default=None)
    wait.add_argument("--cache-dir", default=None)

    list_parser = verbs.add_parser(
        "list", help="tabulate jobs and experiment progress"
    )
    list_parser.add_argument(
        "--status",
        default=None,
        choices=[status.value for status in JobStatus],
    )
    list_parser.add_argument("--experiment", default=None, metavar="NAME")
    list_parser.add_argument("--limit", type=int, default=None)
    list_parser.add_argument("--cache-dir", default=None)

    cancel = verbs.add_parser("cancel", help="cancel queued jobs")
    cancel.add_argument("job_ids", nargs="+", type=int, metavar="JOB")
    cancel.add_argument("--cache-dir", default=None)

    stats = verbs.add_parser(
        "stats", help="the persistent job store's aggregate counters"
    )
    stats.add_argument("--cache-dir", default=None)


def _print_record(record, out, *, prefix: str = "") -> None:
    experiment = f"  [{record.experiment}]" if record.experiment else ""
    tail = ""
    if record.status is JobStatus.DONE:
        tail = f"  served from {record.served_from}"
    elif record.status is JobStatus.FAILED:
        tail = f"  error: {record.error}"
    print(
        f"{prefix}job {record.id}  {record.status:<9}  "
        f"{record.program_name:<10} {record.executor:<10} "
        f"attempts {record.attempts}/{record.max_attempts}  "
        f"{record.fingerprint[:12]}{experiment}{tail}",
        file=out,
    )


def _run_submit(args: argparse.Namespace, out) -> int:
    from repro.service.cli import _build_jobs

    try:
        _, jobs = _build_jobs(args)
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    workers = 0 if args.detach else args.workers
    mode = "inline" if args.inline else "auto"
    with JobQueue(
        args.cache_dir,
        workers=workers,
        mode=mode,
        max_attempts=args.max_attempts,
        recover=False,
    ) as queue:
        handles = []
        for _ in range(args.repeat):
            for program, options in jobs:
                handles.append(
                    queue.submit(
                        program,
                        options,
                        executor=args.executor,
                        seed=args.seed,
                        max_rounds=args.max_rounds,
                        experiment=args.experiment,
                        max_attempts=args.max_attempts,
                    )
                )
        for handle in handles:
            _print_record(handle.record(), out, prefix="submitted ")
        if args.detach:
            pending = sum(
                1
                for handle in handles
                if handle.status() not in TERMINAL_STATES
            )
            print(
                f"{len(handles)} job(s) submitted, {pending} pending; "
                f"run `python -m repro.service queue wait` to execute them",
                file=out,
            )
            return 0
        for handle in handles:
            handle.wait(timeout=600.0)
        failures = 0
        for handle in handles:
            record = handle.record()
            _print_record(record, out)
            if record.status is not JobStatus.DONE:
                failures += 1
            else:
                digest_summary = ", ".join(
                    f"{name}={digest[:12]}"
                    for name, digest in sorted(
                        record.result["field_digests"].items()
                    )
                )
                print(f"    {digest_summary}", file=out)
    # Formatted after close(): the worker threads have joined, so the
    # in-memory terminal counters are settled (wait() alone races them).
    print(queue.format_statistics(), file=out)
    return 1 if failures else 0


def _run_status(args: argparse.Namespace, out) -> int:
    store = JobStore(args.cache_dir)
    missing = 0
    for job_id in args.job_ids:
        record = store.get(job_id)
        if record is None:
            print(f"job {job_id}: unknown", file=sys.stderr)
            missing += 1
            continue
        _print_record(record, out)
        if args.events:
            for event in store.events(job_id):
                print(f"    {event.format()}", file=out)
    return 2 if missing else 0


def _run_wait(args: argparse.Namespace, out) -> int:
    with JobQueue(
        args.cache_dir,
        workers=args.workers,
        mode="inline" if args.inline else "auto",
        recover=True,
    ) as queue:
        if queue.statistics.recovered:
            print(
                f"recovered {queue.statistics.recovered} orphaned job(s)",
                file=out,
            )
        if args.job_ids:
            for job_id in args.job_ids:
                queue.handle(job_id).wait(timeout=args.timeout)
            records = [queue.handle(job_id).record() for job_id in args.job_ids]
        elif args.experiment is not None:
            deadline = (
                None
                if args.timeout is None
                else time.monotonic() + args.timeout
            )
            while True:
                per = queue.store.experiment_progress().get(args.experiment)
                if per is None:
                    print(
                        f"error: unknown experiment {args.experiment!r}",
                        file=sys.stderr,
                    )
                    return 2
                if not any(per[status] for status in PENDING_STATES):
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"experiment {args.experiment!r} still pending "
                        f"after {args.timeout} s"
                    )
                time.sleep(0.05)
            records = queue.store.list_jobs(experiment=args.experiment)
        else:
            queue.drain(timeout=args.timeout)
            records = [
                record
                for record in queue.store.list_jobs()
                if record.status in TERMINAL_STATES
            ]
        failures = 0
        for record in records:
            _print_record(record, out)
            if record.status is JobStatus.FAILED:
                failures += 1
        print(queue.format_statistics(), file=out)
        return 1 if failures else 0


def _run_list(args: argparse.Namespace, out) -> int:
    store = JobStore(args.cache_dir)
    records = store.list_jobs(
        status=JobStatus(args.status) if args.status else None,
        experiment=args.experiment,
        limit=args.limit,
    )
    if not records:
        print("no jobs", file=out)
    for record in records:
        _print_record(record, out)
    progress = store.experiment_progress()
    if progress:
        print("experiments:", file=out)
        for name, counts in sorted(progress.items()):
            total = sum(counts.values())
            finished = sum(counts[status] for status in TERMINAL_STATES)
            populated = "  ".join(
                f"{status.value} {count}"
                for status, count in counts.items()
                if count
            )
            print(
                f"  {name}: {finished}/{total} finished ({populated})",
                file=out,
            )
    return 0


def _run_cancel(args: argparse.Namespace, out) -> int:
    store = JobStore(args.cache_dir)
    refused = 0
    for job_id in args.job_ids:
        record = store.get(job_id)
        if record is None:
            print(f"job {job_id}: unknown", file=sys.stderr)
            refused += 1
        elif store.cancel_queued(job_id):
            print(f"job {job_id}: cancelled", file=out)
        else:
            print(
                f"job {job_id}: not cancellable (status {record.status}; "
                f"only queued jobs can be cancelled from the CLI)",
                file=sys.stderr,
            )
            refused += 1
    return 1 if refused else 0


def _run_queue_stats(args: argparse.Namespace, out) -> int:
    store = JobStore(args.cache_dir)
    stats = store.stats()
    populated = "  ".join(
        f"{status} {count}" for status, count in stats.by_status.items() if count
    )
    print(f"queue store:    {store.path}", file=out)
    print(f"  jobs:      {stats.jobs} ({populated or 'empty'})", file=out)
    print(f"  events:    {stats.events}", file=out)
    print(f"  bytes:     {stats.total_bytes}", file=out)
    print(
        f"  done jobs: {stats.cache_served} run-cache "
        f"{stats.simulated} simulated "
        f"(cache rate {stats.hit_rate:.0%})",
        file=out,
    )
    return 0


def run_queue_command(args: argparse.Namespace, out) -> int:
    if args.queue_command == "submit":
        return _run_submit(args, out)
    if args.queue_command == "status":
        return _run_status(args, out)
    if args.queue_command == "wait":
        return _run_wait(args, out)
    if args.queue_command == "list":
        return _run_list(args, out)
    if args.queue_command == "cancel":
        return _run_cancel(args, out)
    if args.queue_command == "stats":
        return _run_queue_stats(args, out)
    raise AssertionError(f"unhandled queue command {args.queue_command!r}")
