""":class:`JobQueue` — the long-lived run-job daemon clients submit to.

``submit`` returns a durable :class:`JobHandle` immediately; the worker
pool (:mod:`repro.service.queue.workers`) drains the persistent SQLite
store (:mod:`repro.service.queue.store`) in the background.  On top of
the raw store the daemon adds:

* **submission-time reuse** — an identical fingerprint already in flight
  joins the existing job, and a fingerprint whose artifact the run cache
  already holds is recorded as ``done`` without ever queueing (this is
  what makes resubmitted experiments resumable);
* **crash recovery** — construction requeues every job a previous daemon
  left in an active state (bounded by each job's attempt budget);
* **progress streaming** — subscribers receive every
  :class:`~repro.service.queue.lifecycle.JobEvent` as jobs move;
* **futures** — any handle can be adapted to a
  :class:`concurrent.futures.Future` resolving to the job's
  :class:`~repro.service.run.RunArtifact`, which is how
  ``RunService.submit_batch(..., queue=...)`` routes batches through the
  queue behind its usual future-list interface.

One daemon per store: two live ``JobQueue`` instances over one cache
directory would each recover the other's active jobs as orphans.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.frontends.common import StencilProgram
from repro.service.cache import resolve_cache_directory
from repro.service.queue.experiments import Experiment, normalize_configs
from repro.service.queue.lifecycle import (
    JobCancelledError,
    JobEvent,
    JobFailedError,
    JobStatus,
    PENDING_STATES,
    TERMINAL_STATES,
    UnknownJobError,
)
from repro.service.queue.store import (
    DEFAULT_MAX_ATTEMPTS,
    JobPayload,
    JobRecord,
    JobStore,
)
from repro.service.queue.workers import WorkerPool
from repro.service.run import (
    DEFAULT_MAX_ROUNDS,
    DEFAULT_RUN_SEED,
    RunArtifact,
    RunArtifactStore,
    compute_run_fingerprint,
)
from repro.transforms.pipeline import PipelineOptions
from repro.wse.executors import default_executor_name, executor_by_name


@dataclass
class QueueStatistics:
    """In-memory request counters of one daemon (the store keeps the
    persistent truth; these describe *this* process's traffic)."""

    submitted: int = 0
    #: joined an identical in-flight job instead of queueing a new one.
    deduplicated: int = 0
    #: recorded as done at submission because the run cache had the artifact.
    resumed_from_cache: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: worker-death retries performed by this daemon's pool.
    retried: int = 0
    #: orphaned jobs recovered at construction.
    recovered: int = 0


@dataclass
class JobHandle:
    """A durable reference to one submitted job.

    Handles are cheap and survive the daemon: they read the persistent
    store, so a handle built from a bare job id in a fresh process (the
    CLI's ``status``/``wait``) behaves identically to one returned by
    ``submit``.  ``future()`` needs the live queue.
    """

    store: JobStore
    artifacts: RunArtifactStore
    job_id: int
    fingerprint: str
    queue: "JobQueue | None" = None

    def record(self) -> JobRecord:
        record = self.store.get(self.job_id)
        if record is None:
            raise UnknownJobError(f"unknown job id {self.job_id}")
        return record

    def status(self) -> JobStatus:
        return self.record().status

    def events(self) -> list[JobEvent]:
        return self.store.events(self.job_id)

    def wait(
        self, timeout: float | None = None, poll: float = 0.01
    ) -> JobRecord:
        """Block until the job is terminal; returns the final record."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.record()
            if record.status in TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {self.job_id} still {record.status} "
                    f"after {timeout} s"
                )
            time.sleep(poll)

    def result(self, timeout: float | None = None) -> RunArtifact:
        """The finished job's run artifact (raises for failed/cancelled)."""
        record = self.wait(timeout)
        return _artifact_of(record, self.artifacts)

    def future(self) -> "Future[RunArtifact]":
        if self.queue is None:
            raise RuntimeError(
                "this handle is not attached to a live JobQueue; "
                "use wait()/result() against the store instead"
            )
        return self.queue._future_for(self.job_id)

    def cancel(self) -> JobStatus:
        if self.queue is not None:
            return self.queue.cancel(self.job_id)
        return (
            JobStatus.CANCELLED
            if self.store.cancel_queued(self.job_id)
            else self.status()
        )


def _artifact_of(record: JobRecord, artifacts: RunArtifactStore) -> RunArtifact:
    if record.status is JobStatus.FAILED:
        raise JobFailedError(
            f"job {record.id} ({record.program_name}/{record.executor}) "
            f"failed: {record.error}"
        )
    if record.status is JobStatus.CANCELLED:
        raise JobCancelledError(f"job {record.id} was cancelled")
    artifact = artifacts.get(record.fingerprint)
    if artifact is None:
        raise JobFailedError(
            f"job {record.id} is done but its artifact "
            f"{record.fingerprint[:12]} is gone from the run store "
            f"(purged since completion?)"
        )
    return artifact


class JobQueue:
    """Async front door: persistent jobs, worker pool, experiments."""

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        *,
        workers: int = 2,
        mode: str = "auto",
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_backoff: float = 0.05,
        poll_interval: float = 0.02,
        recover: bool = True,
        start: bool = True,
    ):
        self.cache_dir = resolve_cache_directory(cache_dir)
        self.store = JobStore(self.cache_dir, on_event=self._dispatch_event)
        self.artifacts = RunArtifactStore(self.cache_dir)
        self.max_attempts = max_attempts
        self.statistics = QueueStatistics()
        self._subscribers: list = []
        self._futures: dict[int, list[Future]] = {}
        self._lock = threading.Lock()
        if recover:
            recovered = self.store.recover_orphans()
            self.statistics.recovered = len(recovered)
        self.pool = WorkerPool(
            self.store,
            str(self.cache_dir),
            workers=workers,
            mode=mode,
            retry_backoff=retry_backoff,
            poll_interval=poll_interval,
            on_terminal=self._on_terminal,
            on_retry=self._on_retry,
            forward_events=self._dispatch_event,
        )
        if start:
            self.pool.start()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        program: StencilProgram,
        options: PipelineOptions | None = None,
        *,
        executor: str | None = None,
        seed: int = DEFAULT_RUN_SEED,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        experiment: str | None = None,
        max_attempts: int | None = None,
        dedupe: bool = True,
        reuse_cached: bool = True,
    ) -> JobHandle:
        """Enqueue one run job; returns its durable handle immediately.

        The executor is validated and resolved up front so the job's
        fingerprint matches the synchronous ``RunService`` path exactly —
        which is what lets the queue reuse (and warm) the same run cache.
        """
        if options is None:
            options = PipelineOptions.default_for(program)
        executor_name = (
            executor if executor is not None else default_executor_name()
        )
        executor_by_name(executor_name)  # fail fast on unknown backends
        fingerprint = compute_run_fingerprint(
            program, options, executor_name, seed, max_rounds
        )
        payload = JobPayload(
            program=program,
            options=options,
            executor=executor_name,
            seed=seed,
            max_rounds=max_rounds,
        ).encode()
        with self._lock:
            self.statistics.submitted += 1

        if reuse_cached:
            artifact = self.artifacts.get(fingerprint)
            if artifact is not None:
                record = self.store.insert_completed(
                    payload,
                    fingerprint=fingerprint,
                    program_name=program.name,
                    executor=executor_name,
                    experiment=experiment,
                    result={
                        "fingerprint": artifact.fingerprint,
                        "program_name": artifact.program_name,
                        "executor": artifact.executor,
                        "rounds": artifact.rounds,
                        "field_digests": artifact.field_digests,
                        "served_from": "run-cache",
                    },
                    detail="resumed from run cache",
                )
                with self._lock:
                    self.statistics.resumed_from_cache += 1
                return self._handle(record.id, fingerprint)

        record, deduplicated = self.store.submit(
            payload,
            fingerprint=fingerprint,
            program_name=program.name,
            executor=executor_name,
            experiment=experiment,
            max_attempts=(
                max_attempts if max_attempts is not None else self.max_attempts
            ),
            dedupe=dedupe,
        )
        if deduplicated:
            with self._lock:
                self.statistics.deduplicated += 1
        else:
            self.pool.wake()
        return self._handle(record.id, fingerprint)

    def submit_experiment(
        self,
        name: str,
        configs,
        *,
        executor: str | None = None,
        seed: int | None = None,
        max_rounds: int | None = None,
        max_attempts: int | None = None,
    ) -> Experiment:
        """Submit a named sweep as one experiment; see
        :mod:`repro.service.queue.experiments`."""
        handles = []
        for config in normalize_configs(configs):
            handles.append(
                self.submit(
                    config.program,
                    config.options,
                    executor=config.executor or executor,
                    seed=(
                        config.seed
                        if config.seed is not None
                        else (seed if seed is not None else DEFAULT_RUN_SEED)
                    ),
                    max_rounds=(
                        config.max_rounds
                        if config.max_rounds is not None
                        else (
                            max_rounds
                            if max_rounds is not None
                            else DEFAULT_MAX_ROUNDS
                        )
                    ),
                    experiment=name,
                    max_attempts=max_attempts,
                )
            )
        return Experiment(name, self, handles)

    def handle(self, job_id: int) -> JobHandle:
        """A handle for an existing job id (raises if unknown)."""
        record = self.store.get(job_id)
        if record is None:
            raise UnknownJobError(f"unknown job id {job_id}")
        return self._handle(record.id, record.fingerprint)

    def _handle(self, job_id: int, fingerprint: str) -> JobHandle:
        return JobHandle(
            store=self.store,
            artifacts=self.artifacts,
            job_id=job_id,
            fingerprint=fingerprint,
            queue=self,
        )

    # ------------------------------------------------------------------ #
    # Futures / events
    # ------------------------------------------------------------------ #

    def _future_for(self, job_id: int) -> "Future[RunArtifact]":
        future: "Future[RunArtifact]" = Future()
        with self._lock:
            record = self.store.get(job_id)
            if record is None:
                future.set_exception(
                    UnknownJobError(f"unknown job id {job_id}")
                )
                return future
            if record.status in TERMINAL_STATES:
                self._resolve_future(future, record)
                return future
            self._futures.setdefault(job_id, []).append(future)
        return future

    def _resolve_future(self, future: Future, record: JobRecord) -> None:
        try:
            future.set_result(_artifact_of(record, self.artifacts))
        except (JobFailedError, JobCancelledError) as error:
            future.set_exception(error)

    def subscribe(self, callback) -> None:
        """Stream every job event to ``callback`` (called from worker
        threads; must not raise).  Inline workers stream transitions live;
        process workers stream a job's child-recorded transitions when its
        worker process exits."""
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def _dispatch_event(self, event: JobEvent) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(event)
            except Exception:
                pass  # a broken subscriber must not kill a worker

    def _on_terminal(self, record: JobRecord) -> None:
        with self._lock:
            futures = self._futures.pop(record.id, [])
            if record.status is JobStatus.DONE:
                self.statistics.completed += 1
            elif record.status is JobStatus.FAILED:
                self.statistics.failed += 1
            elif record.status is JobStatus.CANCELLED:
                self.statistics.cancelled += 1
        for future in futures:
            self._resolve_future(future, record)

    def _on_retry(self, record: JobRecord, reason: str) -> None:
        with self._lock:
            self.statistics.retried += 1

    # ------------------------------------------------------------------ #
    # Control
    # ------------------------------------------------------------------ #

    def cancel(self, job_id: int) -> JobStatus:
        """Cancel a job: queued jobs atomically, active process-mode jobs
        by terminating their worker process.  Returns the (possibly
        already terminal) status after the attempt."""
        if self.store.cancel_queued(job_id):
            record = self.store.get(job_id)
            if record is not None:
                self._on_terminal(record)
            return JobStatus.CANCELLED
        record = self.store.get(job_id)
        if record is None:
            raise UnknownJobError(f"unknown job id {job_id}")
        if record.status in TERMINAL_STATES:
            return record.status
        if self.pool.request_cancel(job_id):
            # The owning worker records the transition when the child dies.
            return self.store.get(job_id).status
        return record.status

    def drain(self, timeout: float | None = None, poll: float = 0.02) -> None:
        """Block until no job is queued or active."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            counts = self.store.counts()
            pending = sum(counts[status] for status in PENDING_STATES)
            if pending == 0:
                return
            if self.pool.workers == 0 or not self.pool.running:
                raise RuntimeError(
                    f"{pending} pending job(s) but no running workers; "
                    f"start the pool or run `repro.service queue wait`"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{pending} job(s) still pending after {timeout} s"
                )
            time.sleep(poll)

    def active_processes(self) -> dict[int, int]:
        return self.pool.active_processes()

    def close(self, wait: bool = True) -> None:
        self.pool.stop(wait=wait)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def format_statistics(self) -> str:
        stats = self.statistics
        counts = self.store.counts()
        populated = "  ".join(
            f"{status.value} {count}"
            for status, count in counts.items()
            if count
        )
        return "\n".join(
            [
                "job queue statistics:",
                f"  submitted {stats.submitted}  deduplicated "
                f"{stats.deduplicated}  resumed-from-cache "
                f"{stats.resumed_from_cache}",
                f"  completed {stats.completed}  failed {stats.failed}  "
                f"cancelled {stats.cancelled}  retries {stats.retried}  "
                f"recovered {stats.recovered}",
                f"  store: {self.store.path} "
                f"({sum(counts.values())} jobs: {populated or 'empty'})",
            ]
        )
