"""Named experiments: a sweep of run configs submitted as one group.

An experiment is nothing more than a name stamped on its jobs — the
grouping lives entirely in the persistent job store, so a sweep survives
the daemon and its progress is queryable from any process (the CLI's
``queue list`` rolls experiments up the same way).  What the grouping
buys:

* **aggregate progress** — one :class:`ExperimentProgress` snapshot over
  however many jobs the sweep contains;
* **resumability** — resubmitting an experiment re-walks the same
  configs, and every fingerprint whose artifact the run cache already
  holds is recorded as ``done`` without queueing (``JobQueue.submit``'s
  ``reuse_cached`` path), so an interrupted 1000-run sweep only re-pays
  the runs that never finished.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.frontends.common import StencilProgram
from repro.service.queue.lifecycle import JobStatus, TERMINAL_STATES
from repro.transforms.pipeline import PipelineOptions

if TYPE_CHECKING:  # avoid a runtime cycle with daemon.py
    from repro.service.queue.daemon import JobHandle, JobQueue
    from repro.service.run import RunArtifact


@dataclass
class SweepConfig:
    """One point of a sweep; unset fields inherit the experiment-wide
    defaults passed to ``JobQueue.submit_experiment``."""

    program: StencilProgram
    options: PipelineOptions | None = None
    executor: str | None = None
    seed: int | None = None
    max_rounds: int | None = None


def normalize_configs(configs: Iterable) -> list[SweepConfig]:
    """Accept bare programs, ``(program, options)`` pairs, or full
    :class:`SweepConfig` objects."""
    normalized = []
    for config in configs:
        if isinstance(config, SweepConfig):
            normalized.append(config)
        elif isinstance(config, StencilProgram):
            normalized.append(SweepConfig(program=config))
        elif isinstance(config, tuple) and len(config) == 2:
            normalized.append(SweepConfig(program=config[0], options=config[1]))
        else:
            raise TypeError(
                f"sweep configs must be StencilProgram, (program, options) "
                f"pairs or SweepConfig, got {type(config).__name__}"
            )
    if not normalized:
        raise ValueError("an experiment needs at least one config")
    return normalized


@dataclass(frozen=True)
class ExperimentProgress:
    """A point-in-time status rollup of one experiment."""

    name: str
    counts: dict[JobStatus, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def finished(self) -> int:
        return sum(self.counts[status] for status in TERMINAL_STATES)

    @property
    def done(self) -> bool:
        return self.finished == self.total

    @property
    def fraction(self) -> float:
        return self.finished / self.total if self.total else 1.0

    def format(self) -> str:
        populated = "  ".join(
            f"{status.value} {count}"
            for status, count in sorted(
                self.counts.items(), key=lambda item: item[0].value
            )
            if count
        )
        return (
            f"{self.name}: {self.finished}/{self.total} finished "
            f"({populated or 'empty'})"
        )


class Experiment:
    """A live handle over one named sweep's jobs."""

    def __init__(
        self, name: str, queue: "JobQueue", handles: Sequence["JobHandle"]
    ):
        self.name = name
        self.queue = queue
        self.handles = list(handles)

    @property
    def job_ids(self) -> list[int]:
        return [handle.job_id for handle in self.handles]

    def progress(self) -> ExperimentProgress:
        statuses = self.queue.store.statuses(self.job_ids)
        counts = {status: 0 for status in JobStatus}
        for status in statuses.values():
            counts[status] += 1
        return ExperimentProgress(name=self.name, counts=counts)

    def wait(
        self, timeout: float | None = None, poll: float = 0.02
    ) -> ExperimentProgress:
        """Block until every job is terminal; returns the final rollup."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            progress = self.progress()
            if progress.done:
                return progress
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"experiment {self.name!r}: "
                    f"{progress.total - progress.finished} job(s) still "
                    f"pending after {timeout} s"
                )
            time.sleep(poll)

    def results(self, timeout: float | None = None) -> "list[RunArtifact]":
        """Every job's artifact, in submission order (raises on the first
        failed/cancelled job)."""
        self.wait(timeout)
        return [handle.result() for handle in self.handles]
