"""The job lifecycle state machine and its recorded event history.

Every queued run job walks one path through an explicit state machine::

    queued ──▶ compiling ──▶ running ──▶ digesting ──▶ done
      │            │            │            │
      │            └────────────┴────────────┴──▶ queued   (retry after a
      │            │            │            │              worker death)
      │            └────────────┴────────────┴──▶ failed
      └──────────────────────────────────────────▶ cancelled

``done`` / ``failed`` / ``cancelled`` are terminal.  The *only* legal way
back to ``queued`` is from an active state — that is the worker-death
retry edge, which re-enters the queue without losing the attempt count.
Every transition the store records is validated against this table first,
so an illegal hop (e.g. ``compiling -> done``) is a programming error that
surfaces immediately instead of a corrupt history.

Transitions are recorded as :class:`JobEvent` rows (append-only, ordered),
so a job's full history — claims, retries, cache hits, cancellations — is
reconstructable after the fact and streamable to subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class JobStatus(str, Enum):
    """One job's position in the lifecycle."""

    QUEUED = "queued"
    COMPILING = "compiling"
    RUNNING = "running"
    DIGESTING = "digesting"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # "queued", not "JobStatus.QUEUED", in messages
        return self.value


#: states a claimed job passes through while a worker owns it.
ACTIVE_STATES = frozenset(
    {JobStatus.COMPILING, JobStatus.RUNNING, JobStatus.DIGESTING}
)

#: states a job never leaves.
TERMINAL_STATES = frozenset(
    {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}
)

#: states still owed work: queued or actively being worked on.
PENDING_STATES = frozenset({JobStatus.QUEUED}) | ACTIVE_STATES

#: every legal (from, to) edge of the state machine.
LEGAL_TRANSITIONS: dict[JobStatus, frozenset[JobStatus]] = {
    JobStatus.QUEUED: frozenset({JobStatus.COMPILING, JobStatus.CANCELLED}),
    JobStatus.COMPILING: frozenset(
        {JobStatus.RUNNING, JobStatus.QUEUED, JobStatus.FAILED, JobStatus.CANCELLED}
    ),
    JobStatus.RUNNING: frozenset(
        {JobStatus.DIGESTING, JobStatus.QUEUED, JobStatus.FAILED, JobStatus.CANCELLED}
    ),
    JobStatus.DIGESTING: frozenset(
        {JobStatus.DONE, JobStatus.QUEUED, JobStatus.FAILED, JobStatus.CANCELLED}
    ),
    JobStatus.DONE: frozenset(),
    JobStatus.FAILED: frozenset(),
    JobStatus.CANCELLED: frozenset(),
}


class IllegalTransitionError(ValueError):
    """A transition outside :data:`LEGAL_TRANSITIONS` (or against a stale
    expectation) was attempted."""


class UnknownJobError(KeyError):
    """A job id that does not exist in the store."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class JobFailedError(RuntimeError):
    """Raised when the result of a ``failed`` job is requested."""


class JobCancelledError(RuntimeError):
    """Raised when the result of a ``cancelled`` job is requested."""


def ensure_transition(current: JobStatus, to: JobStatus) -> None:
    """Validate one edge; raises :class:`IllegalTransitionError` otherwise."""
    legal = LEGAL_TRANSITIONS[current]
    if to not in legal:
        alternatives = (
            ", ".join(sorted(status.value for status in legal))
            if legal
            else "none; the state is terminal"
        )
        raise IllegalTransitionError(
            f"illegal job transition {current} -> {to} "
            f"(legal from {current}: {alternatives})"
        )


@dataclass(frozen=True)
class JobEvent:
    """One recorded status change of one job."""

    #: store-assigned, monotonically increasing across all jobs.
    event_id: int
    job_id: int
    #: None for the synthetic "submitted" event that creates the job.
    from_status: JobStatus | None
    to_status: JobStatus
    #: ``time.time()`` at the transition.
    at: float
    #: human-readable context ("claimed (attempt 1/3)", "worker died ...").
    detail: str | None = None
    #: the worker that performed the transition, when one did.
    worker: str | None = None

    def format(self) -> str:
        origin = self.from_status.value if self.from_status else "-"
        parts = [f"{origin} -> {self.to_status.value}"]
        if self.detail:
            parts.append(self.detail)
        if self.worker:
            parts.append(f"[{self.worker}]")
        return "  ".join(parts)
