"""The persistent SQLite job store behind the run queue.

One ``queue/jobs.db`` database (WAL mode) under the shared
``REPRO_CACHE_DIR`` root holds two append-heavy tables:

* ``jobs`` — one row per submitted run job: the content fingerprint, the
  picklable payload, the lifecycle status, attempt accounting, timestamps,
  and (once terminal) the result summary or error;
* ``events`` — the append-only transition history every status change
  writes (:class:`~repro.service.queue.lifecycle.JobEvent` rows).

All mutations run inside ``BEGIN IMMEDIATE`` transactions, and every
status change re-reads the current status inside the transaction and
validates the edge against the lifecycle table — so concurrent workers
(threads *and* processes; WAL makes multi-process access safe) can never
double-claim a job or record an illegal hop.  Connections are opened per
operation: they are cheap against a WAL database, and it keeps the store
safe to use from worker threads and forked job processes alike without
sharing connection objects across either boundary.

Payloads are self-contained: the stencil program and pipeline options are
pickled (they already cross process boundaries in
:class:`~repro.service.service.CompileJob`), so a daemon restarted days
later can re-execute a queued job without the submitting client.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.frontends.common import StencilProgram
from repro.service.cache import resolve_cache_directory
from repro.service.queue.lifecycle import (
    ACTIVE_STATES,
    JobEvent,
    JobStatus,
    PENDING_STATES,
    TERMINAL_STATES,
    IllegalTransitionError,
    UnknownJobError,
    ensure_transition,
)
from repro.transforms.pipeline import PipelineOptions

#: current jobs/events schema; an on-disk mismatch is a hard error, not a
#: silent migration — queue state is not a cache that may be dropped.
QUEUE_SCHEMA_VERSION = 1

#: default bounded attempt budget (initial execution + retries).
DEFAULT_MAX_ATTEMPTS = 3

#: Process-wide serialization of SQLite activity against ``fork()``.
#: SQLite's internal mutexes are not fork-safe: a child forked while
#: another thread sits inside a sqlite3 call inherits a locked mutex that
#: no thread in the child will ever release, and deadlocks on its first
#: query.  Every store operation holds this lock for its duration, and
#: the worker pool holds it around ``fork()``, so job children are born
#: with quiescent SQLite state.
FORK_LOCK = threading.RLock()


def _pickle_b64(value) -> str:
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _unpickle_b64(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


@dataclass
class JobPayload:
    """Everything a worker needs to execute one run job, persistably.

    The run-level scalars stay as plain JSON for inspectability; the
    program and options ride along pickled so the payload is
    self-contained (a restarted daemon re-executes it without the
    submitting client).
    """

    program: StencilProgram
    options: PipelineOptions
    executor: str
    seed: int
    max_rounds: int

    def encode(self) -> str:
        return json.dumps(
            {
                "program": _pickle_b64(self.program),
                "options": _pickle_b64(self.options),
                "executor": self.executor,
                "seed": self.seed,
                "max_rounds": self.max_rounds,
            },
            sort_keys=True,
        )

    @classmethod
    def decode(cls, text: str) -> "JobPayload":
        data = json.loads(text)
        return cls(
            program=_unpickle_b64(data["program"]),
            options=_unpickle_b64(data["options"]),
            executor=data["executor"],
            seed=data["seed"],
            max_rounds=data["max_rounds"],
        )


@dataclass
class JobRecord:
    """One row of the ``jobs`` table."""

    id: int
    fingerprint: str
    program_name: str
    executor: str
    experiment: str | None
    payload: str
    status: JobStatus
    attempts: int
    max_attempts: int
    #: earliest ``time.time()`` a retry may be claimed again (backoff).
    not_before: float
    worker: str | None
    created_at: float
    updated_at: float
    #: terminal summary of a ``done`` job (fingerprint, digests, ...).
    result: dict | None
    #: ``"simulation"`` or ``"run-cache"`` once done.
    served_from: str | None
    error: str | None

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "JobRecord":
        return cls(
            id=row["id"],
            fingerprint=row["fingerprint"],
            program_name=row["program_name"],
            executor=row["executor"],
            experiment=row["experiment"],
            payload=row["payload"],
            status=JobStatus(row["status"]),
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            not_before=row["not_before"],
            worker=row["worker"],
            created_at=row["created_at"],
            updated_at=row["updated_at"],
            result=json.loads(row["result"]) if row["result"] else None,
            served_from=row["served_from"],
            error=row["error"],
        )


@dataclass
class QueueStoreStats:
    """Aggregate, persistent counters of one job store."""

    jobs: int
    events: int
    by_status: dict[str, int]
    #: done jobs served straight from the run cache vs. freshly simulated.
    cache_served: int
    simulated: int
    total_bytes: int

    @property
    def hit_rate(self) -> float:
        finished = self.cache_served + self.simulated
        return self.cache_served / finished if finished else 0.0


_SCHEMA = """
CREATE TABLE IF NOT EXISTS queue_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint TEXT NOT NULL,
    program_name TEXT NOT NULL,
    executor TEXT NOT NULL,
    experiment TEXT,
    payload TEXT NOT NULL,
    status TEXT NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL,
    not_before REAL NOT NULL DEFAULT 0,
    worker TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL,
    result TEXT,
    served_from TEXT,
    error TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_claim ON jobs(status, not_before, id);
CREATE INDEX IF NOT EXISTS jobs_by_fingerprint ON jobs(fingerprint, status);
CREATE INDEX IF NOT EXISTS jobs_by_experiment ON jobs(experiment);
CREATE TABLE IF NOT EXISTS events (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id INTEGER NOT NULL,
    from_status TEXT,
    to_status TEXT NOT NULL,
    at REAL NOT NULL,
    detail TEXT,
    worker TEXT
);
CREATE INDEX IF NOT EXISTS events_by_job ON events(job_id, id);
"""


class JobStore:
    """Durable job rows + event history with atomic status transitions.

    ``on_event`` (when given) is called with every :class:`JobEvent` this
    *instance* records, after its transaction commits — the daemon hangs
    its subscriber fan-out off it.  Events recorded by other processes
    (job child processes have their own store instance) are not observed
    live; the worker pool forwards them when the child exits.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        on_event: Callable[[JobEvent], None] | None = None,
    ):
        self.directory = resolve_cache_directory(directory) / "queue"
        self.path = self.directory / "jobs.db"
        self.on_event = on_event
        #: per-thread buffer of events recorded inside the open transaction.
        self._local = threading.local()
        self._ensure_schema()

    # ------------------------------------------------------------------ #
    # Connections / schema
    # ------------------------------------------------------------------ #

    def _connect(self) -> sqlite3.Connection:
        self.directory.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.path, timeout=30.0)
        connection.row_factory = sqlite3.Row
        # autocommit mode: transactions are explicit BEGIN IMMEDIATE below.
        # journal_mode=WAL is NOT set here: it persists in the database file
        # (set once at creation), and re-issuing the pragma on every
        # connection would contend for locks on the busiest path.
        connection.isolation_level = None
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute("PRAGMA busy_timeout=30000")
        return connection

    def _ensure_schema(self) -> None:
        # Fast path: an existing store only needs a lock-free version read —
        # crucial for forked job children, which build a JobStore while the
        # daemon, its workers and other children are all hitting the db.
        with FORK_LOCK:
            connection = self._connect()
            try:
                try:
                    row = connection.execute(
                        "SELECT value FROM queue_meta "
                        "WHERE key = 'schema_version'"
                    ).fetchone()
                except sqlite3.OperationalError:
                    row = None  # no queue_meta table yet: fresh database
                if row is not None:
                    self._check_schema_version(row["value"])
                    return
                # Creation path (exactly once per store): WAL mode persists
                # in the database file, so readers/writers never block each
                # other afterwards.  Must run outside a transaction.
                connection.execute("PRAGMA journal_mode=WAL")
            finally:
                connection.close()
        with self._txn() as connection:
            # Not executescript(): that would implicitly commit the open
            # BEGIN IMMEDIATE transaction before running.
            for statement in _SCHEMA.split(";"):
                if statement.strip():
                    connection.execute(statement)
            row = connection.execute(
                "SELECT value FROM queue_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                connection.execute(
                    "INSERT INTO queue_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(QUEUE_SCHEMA_VERSION)),
                )
            else:  # raced another creator; just validate what it wrote
                self._check_schema_version(row["value"])

    def _check_schema_version(self, value: str) -> None:
        if value != str(QUEUE_SCHEMA_VERSION):
            raise ValueError(
                f"job store {self.path} has schema version {value}, "
                f"this build expects {QUEUE_SCHEMA_VERSION}; refusing to "
                f"touch it (queue state is not a disposable cache)"
            )

    @contextmanager
    def _read(self) -> Iterator[sqlite3.Connection]:
        """A read-only connection: WAL readers never take the write lock,
        so status polls (the hottest path — every ``wait()`` loop) cannot
        starve the workers' transitions."""
        with FORK_LOCK:
            connection = self._connect()
            try:
                yield connection
            finally:
                connection.close()

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One ``BEGIN IMMEDIATE`` transaction; events fire after commit.

        The per-transaction event buffer is thread-local, so concurrent
        worker threads never observe each other's half-recorded histories.
        """
        recorded: list[JobEvent] = []
        previous = getattr(self._local, "events", None)
        self._local.events = recorded
        try:
            with FORK_LOCK:
                connection = self._connect()
                try:
                    connection.execute("BEGIN IMMEDIATE")
                    yield connection
                    connection.execute("COMMIT")
                except BaseException:
                    try:
                        connection.execute("ROLLBACK")
                    except sqlite3.Error:
                        pass
                    recorded.clear()  # rolled back: never happened
                    raise
                finally:
                    connection.close()
        finally:
            self._local.events = previous
        # Fired outside FORK_LOCK: subscribers may take their own locks,
        # and holding ours across theirs invites lock-order inversions.
        if self.on_event is not None:
            for event in recorded:
                self.on_event(event)

    def _record_event(
        self,
        connection: sqlite3.Connection,
        job_id: int,
        from_status: JobStatus | None,
        to_status: JobStatus,
        detail: str | None,
        worker: str | None,
        at: float,
    ) -> JobEvent:
        cursor = connection.execute(
            "INSERT INTO events (job_id, from_status, to_status, at, detail, "
            "worker) VALUES (?, ?, ?, ?, ?, ?)",
            (
                job_id,
                from_status.value if from_status else None,
                to_status.value,
                at,
                detail,
                worker,
            ),
        )
        event = JobEvent(
            event_id=cursor.lastrowid,
            job_id=job_id,
            from_status=from_status,
            to_status=to_status,
            at=at,
            detail=detail,
            worker=worker,
        )
        self._local.events.append(event)
        return event

    def _get_locked(
        self, connection: sqlite3.Connection, job_id: int
    ) -> JobRecord:
        row = connection.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise UnknownJobError(f"unknown job id {job_id}")
        return JobRecord.from_row(row)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        payload: str,
        *,
        fingerprint: str,
        program_name: str,
        executor: str,
        experiment: str | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        dedupe: bool = True,
    ) -> tuple[JobRecord, bool]:
        """Insert one queued job; returns ``(record, deduplicated)``.

        With ``dedupe`` (the default), a submission whose fingerprint is
        already in flight — queued or actively being worked on — joins the
        existing job instead of inserting a second identical one.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        now = time.time()
        with self._txn() as connection:
            if dedupe:
                placeholders = ", ".join("?" for _ in PENDING_STATES)
                row = connection.execute(
                    f"SELECT * FROM jobs WHERE fingerprint = ? AND status IN "
                    f"({placeholders}) ORDER BY id LIMIT 1",
                    (fingerprint, *[s.value for s in PENDING_STATES]),
                ).fetchone()
                if row is not None:
                    return JobRecord.from_row(row), True
            cursor = connection.execute(
                "INSERT INTO jobs (fingerprint, program_name, executor, "
                "experiment, payload, status, attempts, max_attempts, "
                "not_before, created_at, updated_at) "
                "VALUES (?, ?, ?, ?, ?, ?, 0, ?, 0, ?, ?)",
                (
                    fingerprint,
                    program_name,
                    executor,
                    experiment,
                    payload,
                    JobStatus.QUEUED.value,
                    max_attempts,
                    now,
                    now,
                ),
            )
            job_id = cursor.lastrowid
            self._record_event(
                connection, job_id, None, JobStatus.QUEUED, "submitted", None, now
            )
            record = self._get_locked(connection, job_id)
        return record, False

    def insert_completed(
        self,
        payload: str,
        *,
        fingerprint: str,
        program_name: str,
        executor: str,
        experiment: str | None,
        result: dict,
        detail: str,
    ) -> JobRecord:
        """Insert a job born ``done`` — a resubmission whose artifact the
        run cache already holds.  The full lifecycle walk is recorded so
        the event history stays legal and self-explanatory."""
        now = time.time()
        with self._txn() as connection:
            cursor = connection.execute(
                "INSERT INTO jobs (fingerprint, program_name, executor, "
                "experiment, payload, status, attempts, max_attempts, "
                "not_before, created_at, updated_at, result, served_from) "
                "VALUES (?, ?, ?, ?, ?, ?, 0, 1, 0, ?, ?, ?, ?)",
                (
                    fingerprint,
                    program_name,
                    executor,
                    experiment,
                    payload,
                    JobStatus.DONE.value,
                    now,
                    now,
                    json.dumps(result, sort_keys=True),
                    "run-cache",
                ),
            )
            job_id = cursor.lastrowid
            walk = (
                (None, JobStatus.QUEUED, "submitted"),
                (JobStatus.QUEUED, JobStatus.COMPILING, detail),
                (JobStatus.COMPILING, JobStatus.RUNNING, detail),
                (JobStatus.RUNNING, JobStatus.DIGESTING, detail),
                (JobStatus.DIGESTING, JobStatus.DONE, detail),
            )
            for from_status, to_status, event_detail in walk:
                if from_status is not None:
                    ensure_transition(from_status, to_status)
                self._record_event(
                    connection, job_id, from_status, to_status, event_detail,
                    None, now,
                )
            record = self._get_locked(connection, job_id)
        return record

    # ------------------------------------------------------------------ #
    # Claiming / transitions
    # ------------------------------------------------------------------ #

    def claim_next(self, worker: str) -> JobRecord | None:
        """Atomically claim the oldest claimable queued job for ``worker``.

        The claim is the ``queued -> compiling`` transition and counts one
        attempt.  Jobs whose retry backoff (``not_before``) has not elapsed
        are invisible.  Returns None when nothing is claimable.
        """
        now = time.time()
        # Idle polls are the common case; check without the write lock
        # first so spinning workers don't contend with the one that is
        # actually transitioning a job.
        with self._read() as connection:
            idle = (
                connection.execute(
                    "SELECT 1 FROM jobs WHERE status = ? AND not_before <= ? "
                    "LIMIT 1",
                    (JobStatus.QUEUED.value, now),
                ).fetchone()
                is None
            )
        if idle:
            return None
        with self._txn() as connection:
            row = connection.execute(
                "SELECT * FROM jobs WHERE status = ? AND not_before <= ? "
                "ORDER BY id LIMIT 1",
                (JobStatus.QUEUED.value, now),
            ).fetchone()
            if row is None:
                return None
            attempts = row["attempts"] + 1
            connection.execute(
                "UPDATE jobs SET status = ?, attempts = ?, worker = ?, "
                "updated_at = ? WHERE id = ?",
                (JobStatus.COMPILING.value, attempts, worker, now, row["id"]),
            )
            self._record_event(
                connection,
                row["id"],
                JobStatus.QUEUED,
                JobStatus.COMPILING,
                f"claimed (attempt {attempts}/{row['max_attempts']})",
                worker,
                now,
            )
            record = self._get_locked(connection, row["id"])
        return record

    def transition(
        self,
        job_id: int,
        to: JobStatus,
        *,
        expected: JobStatus | None = None,
        detail: str | None = None,
        worker: str | None = None,
        _result: dict | None = None,
        _error: str | None = None,
        _not_before: float | None = None,
        _served_from: str | None = None,
    ) -> JobEvent:
        """One validated, atomic status transition with a recorded event.

        ``expected`` additionally pins the starting state: a mismatch (the
        job moved underneath the caller) raises instead of transitioning.
        """
        now = time.time()
        with self._txn() as connection:
            record = self._get_locked(connection, job_id)
            if expected is not None and record.status is not expected:
                raise IllegalTransitionError(
                    f"job {job_id} is {record.status}, expected {expected} "
                    f"before moving to {to}"
                )
            ensure_transition(record.status, to)
            sets = ["status = ?", "updated_at = ?"]
            values: list = [to.value, now]
            if worker is not None:
                sets.append("worker = ?")
                values.append(worker)
            if _result is not None:
                sets.append("result = ?")
                values.append(json.dumps(_result, sort_keys=True))
            if _error is not None:
                sets.append("error = ?")
                values.append(_error)
            if _not_before is not None:
                sets.append("not_before = ?")
                values.append(_not_before)
            if _served_from is not None:
                sets.append("served_from = ?")
                values.append(_served_from)
            if to is JobStatus.QUEUED:  # a retry releases worker ownership
                sets.append("worker = NULL")
            connection.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE id = ?",
                (*values, job_id),
            )
            event = self._record_event(
                connection, job_id, record.status, to, detail, worker, now
            )
        return event

    def complete(
        self, job_id: int, result: dict, *, worker: str | None = None
    ) -> JobEvent:
        """``digesting -> done`` with the result summary attached."""
        return self.transition(
            job_id,
            JobStatus.DONE,
            expected=JobStatus.DIGESTING,
            worker=worker,
            _result=result,
            _served_from=result.get("served_from"),
        )

    def fail(
        self,
        job_id: int,
        error: str,
        *,
        worker: str | None = None,
        detail: str | None = None,
    ) -> JobEvent:
        """Any active state ``-> failed`` with the error recorded."""
        return self.transition(
            job_id,
            JobStatus.FAILED,
            detail=detail or error,
            worker=worker,
            _error=error,
        )

    def cancel_queued(self, job_id: int) -> bool:
        """``queued -> cancelled``; False when the job is not queued."""
        try:
            self.transition(
                job_id,
                JobStatus.CANCELLED,
                expected=JobStatus.QUEUED,
                detail="cancelled",
            )
        except IllegalTransitionError:
            return False
        return True

    def requeue_or_fail(
        self, job_id: int, reason: str, backoff: float = 0.0
    ) -> JobStatus:
        """Put a died-mid-job record back in the queue, or fail it.

        The attempt was already counted at claim time; if the budget still
        has room the job returns to ``queued`` (claimable after
        ``backoff`` seconds), otherwise it is marked ``failed``.  Returns
        the resulting status (terminal statuses pass through untouched, so
        racing recoveries are harmless).
        """
        now = time.time()
        with self._txn() as connection:
            record = self._get_locked(connection, job_id)
            if (
                record.status in TERMINAL_STATES
                or record.status is JobStatus.QUEUED
            ):
                return record.status
            if record.attempts >= record.max_attempts:
                error = (
                    f"{reason} (attempts exhausted: "
                    f"{record.attempts}/{record.max_attempts})"
                )
                ensure_transition(record.status, JobStatus.FAILED)
                connection.execute(
                    "UPDATE jobs SET status = ?, error = ?, updated_at = ? "
                    "WHERE id = ?",
                    (JobStatus.FAILED.value, error, now, job_id),
                )
                self._record_event(
                    connection, job_id, record.status, JobStatus.FAILED,
                    error, None, now,
                )
                return JobStatus.FAILED
            ensure_transition(record.status, JobStatus.QUEUED)
            connection.execute(
                "UPDATE jobs SET status = ?, not_before = ?, worker = NULL, "
                "updated_at = ? WHERE id = ?",
                (JobStatus.QUEUED.value, now + backoff, now, job_id),
            )
            self._record_event(
                connection,
                job_id,
                record.status,
                JobStatus.QUEUED,
                f"{reason}; retrying "
                f"(attempt {record.attempts}/{record.max_attempts} spent)",
                None,
                now,
            )
            return JobStatus.QUEUED

    def recover_orphans(
        self, reason: str = "orphaned (daemon restart)"
    ) -> list[tuple[int, JobStatus]]:
        """Requeue (or fail) every job stuck in an active state.

        Called by a starting daemon: any job still ``compiling``/
        ``running``/``digesting`` in the store was owned by a worker that
        no longer exists, so it is retryable crash state, not progress.
        """
        placeholders = ", ".join("?" for _ in ACTIVE_STATES)
        with self._read() as connection:
            rows = connection.execute(
                f"SELECT id FROM jobs WHERE status IN ({placeholders}) "
                f"ORDER BY id",
                [s.value for s in ACTIVE_STATES],
            ).fetchall()
        # requeue_or_fail re-validates each job's status inside its own
        # write transaction, so the lock-free listing above cannot race a
        # concurrent worker into an illegal hop.
        return [
            (row["id"], self.requeue_or_fail(row["id"], reason))
            for row in rows
        ]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def get(self, job_id: int) -> JobRecord | None:
        with self._read() as connection:
            row = connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return JobRecord.from_row(row) if row is not None else None

    def list_jobs(
        self,
        *,
        status: JobStatus | None = None,
        experiment: str | None = None,
        limit: int | None = None,
    ) -> list[JobRecord]:
        clauses, values = [], []
        if status is not None:
            clauses.append("status = ?")
            values.append(status.value)
        if experiment is not None:
            clauses.append("experiment = ?")
            values.append(experiment)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        suffix = f" LIMIT {int(limit)}" if limit is not None else ""
        with self._read() as connection:
            rows = connection.execute(
                f"SELECT * FROM jobs {where} ORDER BY id{suffix}", values
            ).fetchall()
        return [JobRecord.from_row(row) for row in rows]

    def statuses(self, job_ids: Iterable[int]) -> dict[int, JobStatus]:
        ids = list(job_ids)
        if not ids:
            return {}
        placeholders = ", ".join("?" for _ in ids)
        with self._read() as connection:
            rows = connection.execute(
                f"SELECT id, status FROM jobs WHERE id IN ({placeholders})",
                ids,
            ).fetchall()
        return {row["id"]: JobStatus(row["status"]) for row in rows}

    def counts(self) -> dict[JobStatus, int]:
        with self._read() as connection:
            rows = connection.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        counts = {status: 0 for status in JobStatus}
        for row in rows:
            counts[JobStatus(row["status"])] = row["n"]
        return counts

    def experiment_progress(self) -> dict[str, dict[JobStatus, int]]:
        """Per-experiment status counts (unnamed jobs are excluded)."""
        with self._read() as connection:
            rows = connection.execute(
                "SELECT experiment, status, COUNT(*) AS n FROM jobs "
                "WHERE experiment IS NOT NULL GROUP BY experiment, status"
            ).fetchall()
        progress: dict[str, dict[JobStatus, int]] = {}
        for row in rows:
            per = progress.setdefault(
                row["experiment"], {status: 0 for status in JobStatus}
            )
            per[JobStatus(row["status"])] = row["n"]
        return progress

    def events(self, job_id: int) -> list[JobEvent]:
        return self.events_since(job_id, 0)

    def events_since(self, job_id: int, after_event_id: int) -> list[JobEvent]:
        with self._read() as connection:
            rows = connection.execute(
                "SELECT * FROM events WHERE job_id = ? AND id > ? ORDER BY id",
                (job_id, after_event_id),
            ).fetchall()
        return [
            JobEvent(
                event_id=row["id"],
                job_id=row["job_id"],
                from_status=(
                    JobStatus(row["from_status"]) if row["from_status"] else None
                ),
                to_status=JobStatus(row["to_status"]),
                at=row["at"],
                detail=row["detail"],
                worker=row["worker"],
            )
            for row in rows
        ]

    def latest_event_id(self, job_id: int) -> int:
        with self._read() as connection:
            row = connection.execute(
                "SELECT MAX(id) AS latest FROM events WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        return row["latest"] or 0

    # ------------------------------------------------------------------ #
    # Reporting / maintenance
    # ------------------------------------------------------------------ #

    def stats(self) -> QueueStoreStats:
        with self._txn() as connection:
            jobs = connection.execute(
                "SELECT COUNT(*) AS n FROM jobs"
            ).fetchone()["n"]
            events = connection.execute(
                "SELECT COUNT(*) AS n FROM events"
            ).fetchone()["n"]
            served = {
                row["served_from"]: row["n"]
                for row in connection.execute(
                    "SELECT served_from, COUNT(*) AS n FROM jobs "
                    "WHERE status = ? GROUP BY served_from",
                    (JobStatus.DONE.value,),
                ).fetchall()
            }
        return QueueStoreStats(
            jobs=jobs,
            events=events,
            by_status={s.value: n for s, n in self.counts().items()},
            cache_served=served.get("run-cache", 0),
            simulated=served.get("simulation", 0),
            total_bytes=self.total_bytes(),
        )

    def total_bytes(self) -> int:
        total = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                total += Path(f"{self.path}{suffix}").stat().st_size
            except OSError:
                pass
        return total

    def purge(self) -> int:
        """Delete every job and event row; returns removed job count."""
        with self._txn() as connection:
            removed = connection.execute(
                "SELECT COUNT(*) AS n FROM jobs"
            ).fetchone()["n"]
            connection.execute("DELETE FROM events")
            connection.execute("DELETE FROM jobs")
        return removed
