"""The worker pool that drains the job queue.

Each worker is a daemon thread that atomically claims queued jobs from the
:class:`~repro.service.queue.store.JobStore` and executes them.  Two
execution modes, mirroring the ``tiled`` executor's approach:

* ``process`` (the default wherever ``fork`` exists) — the claimed job
  runs in a dedicated forked child process.  The child owns the job's
  lifecycle transitions (``compiling -> running -> digesting -> done``,
  written straight into the shared WAL store) and publishes its artifact
  through the content-addressed run cache, so the parent never has to
  trust a pipe: when the child exits, the job's on-disk status *is* the
  truth.  A child that dies mid-job — OOM-killed, segfaulted, SIGKILLed —
  simply leaves the job in an active state, and the parent requeues it
  with bounded attempts and exponential backoff.
* ``inline`` — the job executes in the worker thread itself.  No crash
  isolation, but no fork either; the fallback for platforms without it
  and the right mode for tests that want live event streaming.

Job execution reuses the whole existing cache hierarchy: the child's
:class:`~repro.service.run.RunService` serves compile-stage artifacts,
generated kernels and finished runs from the fleet-wide stores, so a
retry (or a resubmitted experiment) only re-pays the stages that never
completed.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Callable

from repro.service.queue.lifecycle import (
    IllegalTransitionError,
    JobEvent,
    JobStatus,
    TERMINAL_STATES,
)
from repro.service.queue.store import (
    FORK_LOCK,
    JobPayload,
    JobRecord,
    JobStore,
)

#: test/ops hook: while the named file exists, a worker that has just
#: entered ``running`` spins instead of simulating — giving crash-recovery
#: tests (and operators rehearsing them) a deterministic window in which a
#: worker is provably mid-job.
HOLD_FILE_ENV = "REPRO_QUEUE_HOLD_FILE"


def _hold_while_requested() -> None:
    path = os.environ.get(HOLD_FILE_ENV, "").strip()
    while path and os.path.exists(path):
        time.sleep(0.02)


def execute_claimed_job(
    store: JobStore, record: JobRecord, cache_dir: str
) -> None:
    """Run one claimed job to a terminal state, whatever happens.

    Expects the record in ``compiling`` (the claim state).  Walks the
    lifecycle in step with the run service's stage callbacks, completes
    with a result summary, and converts any execution error into a
    ``failed`` terminal state — the caller never sees an exception, it
    sees the store.
    """
    from repro.service.run import RunService  # deferred: avoid import cycle

    try:
        payload = JobPayload.decode(record.payload)
    except Exception as error:  # poisoned row: never retryable
        store.fail(
            record.id,
            f"undecodable job payload: {type(error).__name__}: {error}",
            worker=record.worker,
        )
        return

    simulated = False

    def on_stage(stage: str) -> None:
        nonlocal simulated
        if stage == "compiling":
            return  # the claim transition already moved the job here
        if stage == "running":
            simulated = True
            store.transition(
                record.id,
                JobStatus.RUNNING,
                expected=JobStatus.COMPILING,
                worker=record.worker,
            )
            _hold_while_requested()
        elif stage == "digesting":
            store.transition(
                record.id,
                JobStatus.DIGESTING,
                expected=JobStatus.RUNNING,
                worker=record.worker,
            )

    service = RunService(cache_dir=cache_dir)
    try:
        artifact = service.run(
            payload.program,
            payload.options,
            executor=payload.executor,
            seed=payload.seed,
            max_rounds=payload.max_rounds,
            on_stage=on_stage,
        )
        if not simulated:
            # Served straight from the run cache: no stage callbacks fired,
            # so walk the states explicitly to keep the history legal.
            detail = "served from run cache"
            store.transition(
                record.id, JobStatus.RUNNING, detail=detail, worker=record.worker
            )
            store.transition(
                record.id, JobStatus.DIGESTING, detail=detail,
                worker=record.worker,
            )
        store.complete(
            record.id,
            {
                "fingerprint": artifact.fingerprint,
                "program_name": artifact.program_name,
                "executor": artifact.executor,
                "rounds": artifact.rounds,
                "field_digests": artifact.field_digests,
                "served_from": "simulation" if simulated else "run-cache",
            },
            worker=record.worker,
        )
    except IllegalTransitionError:
        # The job moved underneath us (e.g. cancelled concurrently); the
        # store already holds the authoritative state.
        pass
    except BaseException as error:
        try:
            store.fail(
                record.id,
                f"{type(error).__name__}: {error}",
                worker=record.worker,
            )
        except Exception:
            pass  # e.g. concurrently cancelled; the store state wins
    finally:
        service.shutdown()


def _child_entry(cache_dir: str, job_id: int) -> None:
    """Forked-child entry point: fresh store connection, one job, exit."""
    store = JobStore(cache_dir)
    record = store.get(job_id)
    if record is None or record.status is not JobStatus.COMPILING:
        return  # claim was lost before we started; nothing to do
    execute_claimed_job(store, record, cache_dir)


def resolve_worker_mode(mode: str) -> str:
    """``auto`` picks crash-isolated ``process`` workers wherever ``fork``
    exists (the same capability probe the tiled executor uses), otherwise
    falls back to ``inline``."""
    if mode not in ("auto", "process", "inline"):
        raise ValueError(
            f"unknown worker mode {mode!r}: expected 'auto', 'process' "
            f"or 'inline'"
        )
    if mode != "auto":
        return mode
    return (
        "process"
        if "fork" in multiprocessing.get_all_start_methods()
        else "inline"
    )


class WorkerPool:
    """N claim-and-execute worker threads over one job store."""

    def __init__(
        self,
        store: JobStore,
        cache_dir: str,
        *,
        workers: int = 2,
        mode: str = "auto",
        retry_backoff: float = 0.05,
        poll_interval: float = 0.02,
        on_terminal: Callable[[JobRecord], None] | None = None,
        on_retry: Callable[[JobRecord, str], None] | None = None,
        forward_events: Callable[[JobEvent], None] | None = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.store = store
        self.cache_dir = cache_dir
        self.workers = workers
        self.mode = resolve_worker_mode(mode)
        self.retry_backoff = retry_backoff
        self.poll_interval = poll_interval
        self._on_terminal = on_terminal or (lambda record: None)
        self._on_retry = on_retry or (lambda record, reason: None)
        self._forward_events = forward_events
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._lock = threading.Lock()
        self._active: dict[int, multiprocessing.process.BaseProcess] = {}
        self._cancel_requested: set[int] = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._threads or self.workers == 0:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop,
                args=(f"worker-{index}@{os.getpid()}",),
                name=f"queue-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        self._wake.set()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads.clear()

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def wake(self) -> None:
        self._wake.set()

    # ------------------------------------------------------------------ #
    # Cancellation / introspection
    # ------------------------------------------------------------------ #

    def request_cancel(self, job_id: int) -> bool:
        """Terminate the child currently executing ``job_id``, if any.

        The owning worker thread observes the death, sees the pending
        request, and records the ``-> cancelled`` transition (unless the
        job won the race and finished first).
        """
        with self._lock:
            process = self._active.get(job_id)
            if process is None:
                return False
            self._cancel_requested.add(job_id)
            process.terminate()
        return True

    def active_processes(self) -> dict[int, int]:
        """Live ``{job_id: pid}`` of process-mode jobs (for ops and the
        crash-recovery tests)."""
        with self._lock:
            return {
                job_id: process.pid
                for job_id, process in self._active.items()
                if process.pid is not None
            }

    # ------------------------------------------------------------------ #
    # The worker loop
    # ------------------------------------------------------------------ #

    def _loop(self, worker_name: str) -> None:
        while not self._stop.is_set():
            record = self.store.claim_next(worker_name)
            if record is None:
                self._wake.wait(self.poll_interval)
                self._wake.clear()
                continue
            if self.mode == "inline":
                self._run_inline(record)
            else:
                self._run_in_process(record)

    def _run_inline(self, record: JobRecord) -> None:
        execute_claimed_job(self.store, record, self.cache_dir)
        final = self.store.get(record.id)
        if final is not None and final.status in TERMINAL_STATES:
            self._on_terminal(final)

    def _run_in_process(self, record: JobRecord) -> None:
        last_event_id = self.store.latest_event_id(record.id)
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_child_entry,
            args=(self.cache_dir, record.id),
            name=f"queue-job-{record.id}",
        )
        # FORK_LOCK quiesces every thread's SQLite activity across the
        # fork; see its definition in the store module.
        with FORK_LOCK:
            process.start()
        with self._lock:
            self._active[record.id] = process
        process.join()
        with self._lock:
            self._active.pop(record.id, None)
            cancelled = record.id in self._cancel_requested
            self._cancel_requested.discard(record.id)

        # Stream the transitions the child recorded (its store instance has
        # no live hook into this process) before deciding the outcome.
        if self._forward_events is not None:
            for event in self.store.events_since(record.id, last_event_id):
                self._forward_events(event)

        final = self.store.get(record.id)
        if final is None:
            return
        if final.status in TERMINAL_STATES:
            self._on_terminal(final)
            return
        if cancelled:
            self.store.transition(
                record.id,
                JobStatus.CANCELLED,
                detail=f"cancelled while {final.status}",
            )
            final = self.store.get(record.id)
            if final is not None:
                self._on_terminal(final)
            return
        # The child died mid-job without reaching a terminal state.
        reason = (
            f"worker died during {final.status} "
            f"(exit code {process.exitcode})"
        )
        backoff = min(
            self.retry_backoff * (2 ** max(0, final.attempts - 1)), 2.0
        )
        outcome = self.store.requeue_or_fail(record.id, reason, backoff)
        if outcome is JobStatus.QUEUED:
            self._on_retry(final, reason)
            self._wake.set()
        else:
            final = self.store.get(record.id)
            if final is not None and final.status in TERMINAL_STATES:
                self._on_terminal(final)
