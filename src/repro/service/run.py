"""End-to-end run jobs: compile → simulate → field digests, cached.

A *run job* is the full paper loop for one configuration: compile the
stencil program (served by the compile-stage artifact cache), lower the
program image into an execution plan, simulate it on a chosen execution
backend with deterministically seeded input fields, and distil the result
into a :class:`RunArtifact` — SHA-256 digests of every gathered field plus
the simulation statistics.  Because every stage is deterministic, the
artifact is content-addressed by a *run fingerprint*: the compile-stage
fingerprint payload extended with the run-level inputs (executor, input
seed, round budget) and the execution-plan version
(:data:`~repro.wse.plan.PLAN_VERSION`), so a change to either compilation
or planning semantics invalidates cached runs exactly once.

:class:`RunService` fronts both stages: run-cache hits skip compilation
*and* simulation entirely; misses compile through a
:class:`~repro.service.service.CompileService` (its fingerprint cache
deduplicates the compile stage across runs that differ only in run-level
inputs) and simulate inline — the ``tiled`` backend brings its own
process-level parallelism, so the service does not stack a second pool on
top.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from concurrent.futures import Future
from dataclasses import MISSING as dataclasses_MISSING
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.baselines.numpy_ref import allocate_fields, field_to_columns
from repro.csl import PARSER_VERSION, parse_csl_sources
from repro.frontends.common import StencilProgram
from repro.service.cache import InMemoryArtifactCache, resolve_cache_directory
from repro.service.fingerprint import (
    canonical_json,
    compute_fingerprint,
    fingerprint_payload,
)
from repro.service.kernels import KernelSourceStore
from repro.service.service import CompileService
from repro.transforms.pipeline import PipelineOptions
from repro.wse.codegen import (
    CODEGEN_VERSION,
    KernelCodegenError,
    get_kernel,
    kernel_cache_statistics,
)
from repro.wse.executors import default_executor_name, executor_by_name
from repro.wse.interpreter import ProgramImage
from repro.wse.plan import PLAN_VERSION, ExecutionPlan
from repro.wse.simulator import WseSimulator

#: current run-artifact schema; bumping it invalidates stored run artifacts.
RUN_SCHEMA_VERSION = 2

#: default seed of the deterministic input-field initialiser.
DEFAULT_RUN_SEED = 13

#: default delivery-round budget of a run.
DEFAULT_MAX_ROUNDS = 1_000_000


def run_fingerprint_payload(
    program: StencilProgram,
    options: PipelineOptions,
    executor: str,
    seed: int,
    max_rounds: int,
) -> dict:
    """The canonical document a run fingerprint hashes.

    Extends the compile-stage payload with everything that additionally
    determines a run's outcome: the execution backend, the input-field
    seed, the round budget, the plan version (all backends replay the
    plan, so its lowering semantics are run-relevant even though they never
    reach the printed artifact), and the kernel-codegen version (the
    ``compiled`` backend executes generated code, so emitter changes must
    invalidate cached runs the same way planning changes do).
    """
    payload = fingerprint_payload(program, options)
    payload["run"] = {
        "schema": RUN_SCHEMA_VERSION,
        "executor": executor,
        "seed": seed,
        "max_rounds": max_rounds,
        "plan_version": PLAN_VERSION,
        "codegen_version": CODEGEN_VERSION,
    }
    return payload


def compute_run_fingerprint(
    program: StencilProgram,
    options: PipelineOptions,
    executor: str,
    seed: int,
    max_rounds: int,
) -> str:
    text = canonical_json(
        run_fingerprint_payload(program, options, executor, seed, max_rounds)
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def csl_run_fingerprint_payload(
    sources: dict[str, str],
    executor: str,
    seed: int,
    max_rounds: int,
) -> dict:
    """The canonical document a CSL-source run fingerprint hashes.

    Parsed kernels have no ``StencilProgram``/``PipelineOptions`` provenance,
    so the source *texts* stand in for the compile stage: any edit to any
    file is a different run.  The parser version rides along — a lowering
    change alters what the same text executes as, exactly like a plan or
    codegen change does for generated programs.
    """
    return {
        "csl_sources": dict(sorted(sources.items())),
        "run": {
            "schema": RUN_SCHEMA_VERSION,
            "executor": executor,
            "seed": seed,
            "max_rounds": max_rounds,
            "parser_version": PARSER_VERSION,
            "plan_version": PLAN_VERSION,
            "codegen_version": CODEGEN_VERSION,
        },
    }


def compute_csl_run_fingerprint(
    sources: dict[str, str],
    executor: str,
    seed: int,
    max_rounds: int,
) -> str:
    text = canonical_json(
        csl_run_fingerprint_payload(sources, executor, seed, max_rounds)
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class RunArtifact:
    """Everything a run-cache hit hands back for one simulated configuration.

    Plain JSON-serialisable data only: run artifacts persist to disk and are
    compared across backends (two executors agreeing is exactly their
    ``field_digests`` being equal).
    """

    fingerprint: str
    compile_fingerprint: str
    program_name: str
    executor: str
    grid_width: int
    grid_height: int
    seed: int
    max_rounds: int
    #: delivery rounds the simulation took.
    rounds: int
    #: aggregate :class:`~repro.wse.executors.SimulationStatistics` fields.
    statistics: dict
    #: SHA-256 of each gathered field's bytes, keyed by field name.
    field_digests: dict[str, str]
    #: kernel-cache provenance of a ``compiled``-backend run: the kernel
    #: fingerprint and where it was served from (``memory`` / ``store`` /
    #: ``codegen``), or the fallback reason; None on interpreting backends.
    kernel_cache: dict | None = None
    schema_version: int = RUN_SCHEMA_VERSION

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        """Parse one stored artifact, strictly.

        A document from a different (or absent) schema version, or whose
        field set does not match this dataclass exactly, is rejected with
        an error naming the mismatch — never half-constructed: a partial
        artifact entering a digest comparison would turn a format skew
        into a phantom correctness result.
        """
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(
                f"run artifact must be a JSON object, got "
                f"{type(data).__name__}"
            )
        if "schema_version" not in data:
            raise ValueError(
                "run artifact has no schema_version field; refusing to "
                f"guess (current version is {RUN_SCHEMA_VERSION})"
            )
        if data["schema_version"] != RUN_SCHEMA_VERSION:
            raise ValueError(
                f"run artifact schema {data['schema_version']!r} does not "
                f"match current version {RUN_SCHEMA_VERSION}"
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"run artifact carries unknown fields {unknown} "
                f"(schema version matches but the document does not; "
                f"corrupt or hand-edited artifact?)"
            )
        required = {
            field.name
            for field in fields(cls)
            if field.default is dataclasses_MISSING
        }
        missing = sorted(required - set(data))
        if missing:
            raise ValueError(f"run artifact is missing fields {missing}")
        return cls(**data)


class RunArtifactStore:
    """On-disk run-artifact store: ``runs/<fingerprint>.json`` files.

    Lives in a ``runs/`` subdirectory of the (compile) artifact store so
    one ``REPRO_CACHE_DIR`` governs both stages; writes are atomic for the
    same reason the compile store's are.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = resolve_cache_directory(directory) / "runs"

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).is_file()

    def get(self, fingerprint: str) -> RunArtifact | None:
        try:
            text = self._path(fingerprint).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return RunArtifact.from_json(text)
        except (ValueError, TypeError, KeyError):
            return None

    def put(self, artifact: RunArtifact) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=self.directory,
            prefix=f".{artifact.fingerprint[:12]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(artifact.to_json())
            os.replace(handle.name, self._path(artifact.fingerprint))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def total_bytes(self) -> int:
        if not self.directory.is_dir():
            return 0
        total = 0
        for path in self.directory.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                # Concurrently purged by another process; stale-by-one is fine.
                pass
        return total

    def purge(self) -> int:
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


@dataclass
class RunServiceStatistics:
    """Request-level counters of one :class:`RunService`."""

    submitted: int = 0
    #: served from the run cache (memory or disk) — no compile, no simulate.
    cache_hits: int = 0
    #: end-to-end executions (compile stage may still be a compile-cache hit).
    simulations: int = 0
    #: batch submissions folded into an identical job in the same batch.
    deduplicated: int = 0


class RunService:
    """Cached, end-to-end run jobs over a compile service.

    ``compile_service`` may be shared with other clients (e.g. the
    process-wide default service); when omitted, the run service owns a
    private inline one over the same ``cache_dir``.
    """

    def __init__(
        self,
        *,
        compile_service: CompileService | None = None,
        cache_dir: str | os.PathLike | None = None,
        memory_capacity: int = 128,
    ):
        self._owns_compiler = compile_service is None
        self.compiler = (
            compile_service
            if compile_service is not None
            else CompileService(cache_dir=cache_dir)
        )
        self.memory = InMemoryArtifactCache(memory_capacity)
        self.store = RunArtifactStore(cache_dir)
        #: generated-kernel sources shared fleet-wide (compiled backend).
        self.kernels = KernelSourceStore(cache_dir)
        self.statistics = RunServiceStatistics()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    @staticmethod
    def _prepare(
        program: StencilProgram,
        options: PipelineOptions | None,
        executor: str | None,
        seed: int,
        max_rounds: int,
    ) -> tuple[PipelineOptions, str, str]:
        """Resolve defaults and compute the run fingerprint of one job.

        The executor name is validated up front (unknown names raise the
        registry error naming the alternatives) and resolved into the
        fingerprint, so the same job requested under ``REPRO_EXECUTOR``
        and via an explicit argument shares one cached artifact.
        """
        if options is None:
            options = PipelineOptions.default_for(program)
        executor_name = (
            executor if executor is not None else default_executor_name()
        )
        executor_by_name(executor_name)  # fail fast on unknown backends
        fingerprint = compute_run_fingerprint(
            program, options, executor_name, seed, max_rounds
        )
        return options, executor_name, fingerprint

    def submit(
        self,
        program: StencilProgram,
        options: PipelineOptions | None = None,
        *,
        executor: str | None = None,
        seed: int = DEFAULT_RUN_SEED,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        on_stage: "Callable[[str], None] | None" = None,
    ) -> "Future[RunArtifact]":
        """A future for the run artifact of one configuration.

        ``on_stage`` (when given) is called with ``"compiling"``,
        ``"running"`` and ``"digesting"`` as a cache-miss execution enters
        each stage — a run-cache hit fires none of them.  The queue's
        workers hang their lifecycle transitions off it.
        """
        options, executor_name, fingerprint = self._prepare(
            program, options, executor, seed, max_rounds
        )

        future: "Future[RunArtifact]" = Future()
        with self._lock:
            self.statistics.submitted += 1
            artifact = self.memory.get(fingerprint)
            if artifact is None:
                artifact = self.store.get(fingerprint)
                if artifact is not None:
                    self.memory.put(artifact)
            if artifact is not None:
                self.statistics.cache_hits += 1
                future.set_result(artifact)
                return future
            self.statistics.simulations += 1

        try:
            artifact = self._execute(
                program,
                options,
                executor_name,
                seed,
                max_rounds,
                fingerprint,
                on_stage=on_stage,
            )
        except BaseException as error:
            future.set_exception(error)
            return future
        with self._lock:
            self.memory.put(artifact)
            self.store.put(artifact)
        future.set_result(artifact)
        return future

    def submit_batch(
        self,
        jobs: "list[tuple[StencilProgram, PipelineOptions | None]]",
        *,
        executor: str | None = None,
        seed: int = DEFAULT_RUN_SEED,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        queue=None,
        experiment: str | None = None,
    ) -> "list[Future[RunArtifact]]":
        """Run a batch of configurations; one future per input, in order.

        Identical fingerprints within the batch are deduplicated: a sweep
        with repeated configs executes each distinct run once and the
        repeats share its future.  With ``queue`` (a
        :class:`~repro.service.queue.JobQueue`), the batch is routed
        through the async queue instead of executing inline — callers keep
        the same future-list interface while the daemon's worker pool does
        the work (``experiment`` names the group in the job store).
        """
        if queue is not None:
            return [
                queue.submit(
                    program,
                    options,
                    executor=executor,
                    seed=seed,
                    max_rounds=max_rounds,
                    experiment=experiment,
                ).future()
                for program, options in jobs
            ]
        futures: "list[Future[RunArtifact]]" = []
        seen: "dict[str, Future[RunArtifact]]" = {}
        for program, options in jobs:
            _, executor_name, fingerprint = self._prepare(
                program, options, executor, seed, max_rounds
            )
            duplicate = seen.get(fingerprint)
            if duplicate is not None:
                with self._lock:
                    self.statistics.deduplicated += 1
                futures.append(duplicate)
                continue
            future = self.submit(
                program,
                options,
                executor=executor_name,
                seed=seed,
                max_rounds=max_rounds,
            )
            seen[fingerprint] = future
            futures.append(future)
        return futures

    def run(
        self,
        program: StencilProgram,
        options: PipelineOptions | None = None,
        *,
        executor: str | None = None,
        seed: int = DEFAULT_RUN_SEED,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        on_stage: "Callable[[str], None] | None" = None,
    ) -> RunArtifact:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(
            program,
            options,
            executor=executor,
            seed=seed,
            max_rounds=max_rounds,
            on_stage=on_stage,
        ).result()

    # ------------------------------------------------------------------ #
    # CSL-source runs (the text front-door)
    # ------------------------------------------------------------------ #

    def run_csl(
        self,
        sources: dict[str, str],
        *,
        executor: str | None = None,
        seed: int = DEFAULT_RUN_SEED,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> RunArtifact:
        """Run a parsed CSL source set end to end, riding the run cache.

        ``sources`` is a ``{filename: text}`` set as produced by
        ``print_csl_sources`` or read from a ``--csl`` directory (one
        program module plus an optional layout).  Every buffer the program
        declares is deterministically seeded (sorted name order, one
        ``uniform(-1, 1)`` draw each) before launch and digested after, so
        two executors agree exactly when their artifacts'
        ``field_digests`` are equal — the same contract as benchmark runs.
        """
        executor_name = (
            executor if executor is not None else default_executor_name()
        )
        executor_by_name(executor_name)  # fail fast on unknown backends
        fingerprint = compute_csl_run_fingerprint(
            sources, executor_name, seed, max_rounds
        )
        with self._lock:
            self.statistics.submitted += 1
            artifact = self.memory.get(fingerprint)
            if artifact is None:
                artifact = self.store.get(fingerprint)
                if artifact is not None:
                    self.memory.put(artifact)
            if artifact is not None:
                self.statistics.cache_hits += 1
                return artifact
            self.statistics.simulations += 1

        parsed = parse_csl_sources(sources)
        image = parsed.image()
        kernel_cache = None
        if executor_name in ("compiled", "auto"):
            kernel_cache = self._warm_kernel(image.module)
        simulator = WseSimulator(image, executor=executor_name)
        rng = np.random.default_rng(seed)
        for name in sorted(image.buffers):
            simulator.load_field(
                name,
                rng.uniform(
                    -1.0,
                    1.0,
                    size=(simulator.width, simulator.height, image.buffers[name]),
                ),
            )
        simulator.launch()
        statistics = simulator.run(max_rounds)
        digests = {
            name: hashlib.sha256(
                simulator.read_field(name).tobytes()
            ).hexdigest()
            for name in sorted(image.buffers)
        }
        source_digest = hashlib.sha256(
            canonical_json(dict(sorted(sources.items()))).encode("utf-8")
        ).hexdigest()
        artifact = RunArtifact(
            fingerprint=fingerprint,
            compile_fingerprint=source_digest,
            program_name=image.module.sym_name,
            executor=executor_name,
            grid_width=simulator.width,
            grid_height=simulator.height,
            seed=seed,
            max_rounds=max_rounds,
            rounds=statistics.rounds,
            statistics=asdict(statistics),
            field_digests=digests,
            kernel_cache=kernel_cache,
        )
        with self._lock:
            self.memory.put(artifact)
            self.store.put(artifact)
        return artifact

    # ------------------------------------------------------------------ #
    # The end-to-end execution of one cache miss
    # ------------------------------------------------------------------ #

    def _execute(
        self,
        program: StencilProgram,
        options: PipelineOptions,
        executor_name: str,
        seed: int,
        max_rounds: int,
        fingerprint: str,
        on_stage: "Callable[[str], None] | None" = None,
    ) -> RunArtifact:
        notify = on_stage or (lambda stage: None)
        notify("compiling")
        result = self.compiler.compile_ir(program, options)
        # Field allocation honours the boundary condition that was actually
        # compiled in (an options override changes the z-halo initialiser).
        effective = program
        if result.options.boundary != program.boundary:
            effective = replace(program, boundary=result.options.boundary)

        kernel_cache = None
        if executor_name in ("compiled", "auto"):
            # `auto` may delegate to the compiled backend; warming the
            # fleet-wide kernel store is cheap and keeps the provenance
            # reporting uniform.
            kernel_cache = self._warm_kernel(result.program_module)

        simulator = WseSimulator(result.program_module, executor=executor_name)
        rng = np.random.default_rng(seed)
        fields = allocate_fields(
            effective, lambda name, shape: rng.uniform(-1.0, 1.0, shape)
        )
        for decl in effective.fields:
            simulator.load_field(
                decl.name,
                field_to_columns(effective, decl.name, fields[decl.name]),
            )
        notify("running")
        simulator.launch()
        statistics = simulator.run(max_rounds)
        notify("digesting")
        digests = {
            decl.name: hashlib.sha256(
                simulator.read_field(decl.name).tobytes()
            ).hexdigest()
            for decl in effective.fields
        }
        return RunArtifact(
            fingerprint=fingerprint,
            compile_fingerprint=compute_fingerprint(program, options),
            program_name=program.name,
            executor=executor_name,
            grid_width=result.options.grid_width,
            grid_height=result.options.grid_height,
            seed=seed,
            max_rounds=max_rounds,
            rounds=statistics.rounds,
            statistics=asdict(statistics),
            field_digests=digests,
            kernel_cache=kernel_cache,
        )

    def _warm_kernel(self, program_module) -> dict:
        """Resolve the generated kernel through the fleet-wide source store.

        Compiles (or looks up) the kernel *before* the simulator is built,
        passing the persistent store: a fleet member that already generated
        this kernel serves its source from disk, and whatever this call
        resolves is a guaranteed in-memory hit for the executor.  Returns
        the provenance record folded into the run artifact.
        """
        image = ProgramImage(program_module)
        plan = ExecutionPlan.compile(image, image.width, image.height)
        before = kernel_cache_statistics()
        memory_hits, disk_hits = before.memory_hits, before.disk_hits
        try:
            kernel = get_kernel(image, plan, store=self.kernels)
        except KernelCodegenError as error:
            return {"served_from": "fallback", "reason": str(error)}
        after = kernel_cache_statistics()
        if after.memory_hits > memory_hits:
            served_from = "memory"
        elif after.disk_hits > disk_hits:
            served_from = "store"
        else:
            served_from = "codegen"
        return {
            "fingerprint": kernel.fingerprint,
            "served_from": served_from,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle / reporting
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        if self._owns_compiler:
            self.compiler.shutdown()

    def __enter__(self) -> "RunService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def format_statistics(self) -> str:
        """Human-readable run + compile + kernel counters for the CLI."""
        stats = self.statistics
        kernels = kernel_cache_statistics()
        lines = [
            "run service statistics:",
            f"  submitted {stats.submitted}  run-cache hits {stats.cache_hits}  "
            f"simulations {stats.simulations}  deduplicated "
            f"{stats.deduplicated}",
            f"  run store: {self.store.directory} ({len(self.store)} artifacts)",
            f"  kernel cache: hits {kernels.hits} (memory {kernels.memory_hits}, "
            f"store {kernels.disk_hits})  codegens {kernels.codegens}",
            f"  kernel store: {self.kernels.directory} "
            f"({len(self.kernels)} kernels)",
            self.compiler.format_statistics(),
        ]
        return "\n".join(lines)
