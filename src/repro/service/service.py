"""The compilation service: cached, batched, parallel stencil compiles.

:class:`CompileService` wraps ``compile_stencil_program`` behind a
content-addressed artifact cache (:mod:`repro.service.cache`) and a
``concurrent.futures`` process pool:

* :meth:`CompileService.submit` returns a future for the compiled artifact —
  already resolved on a cache hit, otherwise backed by a pool worker (or an
  inline compile when the service runs without workers);
* :meth:`CompileService.submit_batch` fans a list of configurations out over
  the pool, deduplicating identical fingerprints within the batch;
* :meth:`CompileService.compile_ir` serves in-process callers that need the
  live csl-ir module (the performance model, the LoC report) from a
  fingerprint-keyed result cache, so e.g. regenerating Figure 7 reuses the
  compiles Figure 6 already paid for.

Workers re-hydrate the job from a picklable :class:`CompileJob`, run the
full pipeline, and write the artifact into the shared on-disk store before
returning it, so a warm store benefits later processes too.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass

from repro.backend.csl_printer import print_csl_sources
from repro.frontends.common import StencilProgram
from repro.service.cache import ArtifactCache, CompiledArtifact, DiskArtifactCache
from repro.service.fingerprint import compute_fingerprint
from repro.transforms.pipeline import (
    CompilationResult,
    PipelineOptions,
    compile_stencil_program,
)


def build_artifact(
    result: CompilationResult, fingerprint: str | None = None
) -> CompiledArtifact:
    """Print and summarise one compilation result into a cacheable artifact."""
    if fingerprint is None:
        fingerprint = compute_fingerprint(result.program, result.options)
    statistics: dict = {}
    if result.statistics is not None:
        statistics = {
            "total_wall_time": result.statistics.total_wall_time,
            "total_rewrites": result.statistics.total_rewrites,
            "passes": [
                {
                    "name": stat.name,
                    "wall_time": stat.wall_time,
                    "rewrites": stat.rewrites,
                    "ops_before": stat.ops_before,
                    "ops_after": stat.ops_after,
                }
                for stat in result.statistics.passes
            ],
        }
    return CompiledArtifact(
        fingerprint=fingerprint,
        program_name=result.program.name,
        target=result.options.target,
        grid_width=result.options.grid_width,
        grid_height=result.options.grid_height,
        csl_sources=print_csl_sources(result.csl_modules),
        statistics=statistics,
    )


@dataclass
class CompileJob:
    """A picklable description of one compilation, shipped to pool workers."""

    program: StencilProgram
    options: PipelineOptions
    fingerprint: str
    #: resolved store directory, so workers share the parent's store even if
    #: their environment were to differ.
    cache_dir: str


def run_compile_job(job: CompileJob) -> CompiledArtifact:
    """Worker entry point: compile, publish to the shared store, return.

    Module-level so it pickles under every start method, and usable directly
    as a cross-process determinism probe in tests.
    """
    result = compile_stencil_program(job.program, job.options)
    artifact = build_artifact(result, job.fingerprint)
    DiskArtifactCache(job.cache_dir).put(artifact)
    return artifact


@dataclass
class ServiceStatistics:
    """Request-level counters of one :class:`CompileService`."""

    submitted: int = 0
    cache_hits: int = 0
    inline_compiles: int = 0
    pool_compiles: int = 0
    #: submissions that joined an identical in-flight compile.
    deduplicated: int = 0
    ir_hits: int = 0
    ir_compiles: int = 0


class CompileService:
    """Cached, batched compilation front door.

    ``max_workers=0`` (the default) compiles cache misses inline in the
    calling process; ``max_workers >= 1`` lazily creates a process pool and
    compiles misses there, returning unresolved futures so callers can
    overlap their own work with compilation.
    """

    def __init__(
        self,
        *,
        max_workers: int = 0,
        cache_dir: str | os.PathLike | None = None,
        memory_capacity: int = 256,
        ir_capacity: int = 64,
    ):
        if max_workers < 0:
            raise ValueError(f"max_workers must be >= 0, got {max_workers}")
        self.max_workers = max_workers
        self.cache = ArtifactCache(cache_dir, memory_capacity=memory_capacity)
        self.statistics = ServiceStatistics()
        self._executor: ProcessPoolExecutor | None = None
        self._inflight: dict[str, Future] = {}
        self._ir_capacity = ir_capacity
        self._ir_results: "OrderedDict[str, CompilationResult]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def submit(
        self, program: StencilProgram, options: PipelineOptions | None = None
    ) -> "Future[CompiledArtifact]":
        """A future for the compiled artifact of one configuration."""
        if options is None:
            options = PipelineOptions.default_for(program)
        fingerprint = compute_fingerprint(program, options)

        # Check, account and (for misses) register the in-flight future in
        # ONE critical section, so concurrent submissions of the same
        # fingerprint always join a single compile.
        with self._lock:
            self.statistics.submitted += 1
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                self.statistics.deduplicated += 1
                return inflight
            artifact = self.cache.get(fingerprint)
            if artifact is not None:
                self.statistics.cache_hits += 1
                done: "Future[CompiledArtifact]" = Future()
                done.set_result(artifact)
                return done

            job = CompileJob(
                program=program,
                options=options,
                fingerprint=fingerprint,
                cache_dir=str(self.cache.disk.directory),
            )
            if self.max_workers == 0:
                self.statistics.inline_compiles += 1
                future: "Future[CompiledArtifact]" = Future()
            else:
                self.statistics.pool_compiles += 1
                future = self._pool().submit(run_compile_job, job)
            self._inflight[fingerprint] = future

        if self.max_workers == 0:
            try:
                result = compile_stencil_program(job.program, job.options)
                artifact = build_artifact(result, fingerprint)
            except BaseException as error:  # surface through the future
                with self._lock:
                    self._inflight.pop(fingerprint, None)
                future.set_exception(error)
                return future
            with self._lock:
                self._inflight.pop(fingerprint, None)
                self.cache.put(artifact)
            future.set_result(artifact)
            return future

        future.add_done_callback(
            lambda completed: self._on_pool_completion(fingerprint, completed)
        )
        return future

    def _on_pool_completion(
        self, fingerprint: str, future: "Future[CompiledArtifact]"
    ) -> None:
        with self._lock:
            self._inflight.pop(fingerprint, None)
            if future.cancelled() or future.exception() is not None:
                return
            artifact = future.result()
            # The worker already published to disk; mirror into memory so the
            # parent process serves repeats without touching the disk tier.
            self.cache.put_memory_only(artifact)

    def submit_batch(
        self,
        jobs: "list[tuple[StencilProgram, PipelineOptions | None]]",
    ) -> "list[Future[CompiledArtifact]]":
        """Fan a batch of configurations out; one future per input, in order.

        Identical configurations within the batch share one compile (and one
        future) via the in-flight table.
        """
        return [self.submit(program, options) for program, options in jobs]

    def compile(
        self, program: StencilProgram, options: PipelineOptions | None = None
    ) -> CompiledArtifact:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(program, options).result()

    # ------------------------------------------------------------------ #
    # In-process compiles that need the live IR
    # ------------------------------------------------------------------ #

    def compile_ir(
        self, program: StencilProgram, options: PipelineOptions | None = None
    ) -> CompilationResult:
        """Compile in-process and memoise the live :class:`CompilationResult`.

        Callers that consume the csl-ir module itself (simulation, LoC
        counting) cannot use the printed-text artifact, but they still get
        fingerprint-keyed reuse: repeated requests for one configuration —
        e.g. the same benchmark appearing in several paper figures — compile
        once.  The printed artifact is published to both cache tiers as a
        side effect, warming the store for text-only clients.  Callers must
        treat the returned module as read-only.
        """
        if options is None:
            options = PipelineOptions.default_for(program)
        fingerprint = compute_fingerprint(program, options)
        with self._lock:
            cached = self._ir_results.get(fingerprint)
            if cached is not None:
                self._ir_results.move_to_end(fingerprint)
                self.statistics.ir_hits += 1
                return cached
            self.statistics.ir_compiles += 1
        # Concurrent first requests for one fingerprint may both compile;
        # either result is correct and the second insert wins, so the race
        # costs duplicated work only, never wrong artifacts.
        result = compile_stencil_program(program, options)
        artifact = build_artifact(result, fingerprint)
        with self._lock:
            self._ir_results[fingerprint] = result
            while len(self._ir_results) > self._ir_capacity:
                self._ir_results.popitem(last=False)
            self.cache.put(artifact)
        return result

    # ------------------------------------------------------------------ #
    # Lifecycle / reporting
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def format_statistics(self) -> str:
        """One-paragraph human-readable summary for the CLI and examples."""
        stats = self.statistics
        cache = self.cache.statistics
        lines = [
            "compilation service statistics:",
            f"  submitted {stats.submitted}  cache hits {stats.cache_hits}  "
            f"inline compiles {stats.inline_compiles}  "
            f"pool compiles {stats.pool_compiles}  "
            f"deduplicated {stats.deduplicated}",
            f"  ir compiles {stats.ir_compiles}  ir reuses {stats.ir_hits}",
            f"  cache: memory hits {cache.memory_hits}  disk hits "
            f"{cache.disk_hits}  misses {cache.misses}  stores {cache.stores}  "
            f"evictions {cache.evictions}  hit rate {cache.hit_rate:.0%}",
            f"  store: {self.cache.disk.directory} "
            f"({len(self.cache.disk)} artifacts, "
            f"{self.cache.disk.total_bytes()} bytes)",
        ]
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Process-wide default service
# --------------------------------------------------------------------------- #

_default_service: CompileService | None = None
_default_lock = threading.Lock()


def default_service() -> CompileService:
    """The process-wide inline service shared by the perf model and reports."""
    global _default_service
    with _default_lock:
        if _default_service is None:
            _default_service = CompileService(max_workers=0)
        return _default_service


def reset_default_service() -> None:
    """Drop the shared service (tests use this to isolate cache state)."""
    global _default_service
    with _default_lock:
        if _default_service is not None:
            _default_service.shutdown()
        _default_service = None
