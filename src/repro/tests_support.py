"""Shared helpers for tests and examples: compile, simulate and compare."""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.baselines.numpy_ref import (
    allocate_fields,
    field_to_columns,
    run_reference,
)
from repro.frontends.common import StencilProgram
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.simulator import WseSimulator


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware).

    The parallelism floors in the benchmarks (pool compiles, tiled shard
    speedup) are asserted only when the host can express them; plain
    ``os.cpu_count()`` over-reports inside affinity-restricted containers.
    Delegates to the tiled backend's counter so the benchmarks gate on the
    same number the shard-grid heuristic actually uses.
    """
    from repro.wse.executors.tiled import usable_cpu_count

    return usable_cpu_count()


def random_initializer(seed: int = 7):
    """A deterministic random interior initialiser for fields."""
    rng = np.random.default_rng(seed)

    def initializer(name, shape):
        return rng.uniform(-1.0, 1.0, size=shape)

    return initializer


def run_on_executor(
    executor: str,
    program: StencilProgram,
    program_module,
    seed: int = 13,
):
    """Load identical random data, execute, gather fields + statistics.

    The shared harness of the golden equivalence suites: running the same
    compiled module with the same seed on two executors must produce
    byte-identical fields and equal statistics.
    """
    rng = np.random.default_rng(seed)
    fields = allocate_fields(program, lambda name, shape: rng.uniform(-1, 1, shape))
    simulator = WseSimulator(program_module, executor=executor)
    for decl in program.fields:
        simulator.load_field(
            decl.name, field_to_columns(program, decl.name, fields[decl.name])
        )
    statistics = simulator.execute()
    gathered = {decl.name: simulator.read_field(decl.name) for decl in program.fields}
    return gathered, statistics


def simulate_against_reference(
    program: StencilProgram,
    options: PipelineOptions,
    seed: int = 7,
    executor: str | None = None,
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Compile and simulate the program, and run the NumPy reference.

    Returns ``(simulated, reference)`` — both keyed by field name, both as
    per-PE column arrays of shape ``(nx, ny, z_total)``.  ``executor``
    selects the simulator backend (defaults to the process-wide choice).

    The NumPy oracle runs under the boundary condition that was actually
    compiled in, so an ``options.boundary`` override stays comparable.
    """
    result = compile_stencil_program(program, options)
    if result.options.boundary != program.boundary:
        program = replace(program, boundary=result.options.boundary)
    simulator = WseSimulator(result.program_module, executor=executor)

    fields = allocate_fields(program, random_initializer(seed))
    reference_fields = {name: array.copy() for name, array in fields.items()}

    for decl in program.fields:
        simulator.load_field(
            decl.name, field_to_columns(program, decl.name, fields[decl.name])
        )

    simulator.execute()
    run_reference(program, reference_fields)

    simulated = {decl.name: simulator.read_field(decl.name) for decl in program.fields}
    reference = {
        decl.name: field_to_columns(program, decl.name, reference_fields[decl.name])
        for decl in program.fields
    }
    return simulated, reference
