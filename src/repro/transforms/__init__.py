"""Compiler transformations.

The passes are organised following Section 5 of the paper:

* optimisation passes: :mod:`~repro.transforms.stencil_inlining`,
  :mod:`~repro.transforms.arith_to_varith`,
  :mod:`~repro.transforms.varith_fuse_repeated_operands`,
  :mod:`~repro.transforms.linalg_fuse_multiply_add`;
* group 1 (decomposition & data dependencies):
  :mod:`~repro.transforms.distribute_stencil`,
  :mod:`~repro.transforms.tensorize_z`;
* group 2 (placement & communication):
  :mod:`~repro.transforms.stencil_to_csl_stencil`,
  :mod:`~repro.transforms.csl_wrapper_hoist`;
* group 3 (memory realisation):
  :mod:`~repro.transforms.bufferize`,
  :mod:`~repro.transforms.arith_to_linalg`;
* group 4 (actor execution model):
  :mod:`~repro.transforms.csl_stencil_to_tasks`,
  :mod:`~repro.transforms.scf_to_task_graph`;
* group 5 (lowering to csl-ir):
  :mod:`~repro.transforms.linalg_to_csl`,
  :mod:`~repro.transforms.memref_to_dsd`,
  :mod:`~repro.transforms.lower_csl_wrapper`;
* the full pipeline driver: :mod:`~repro.transforms.pipeline`.
"""
