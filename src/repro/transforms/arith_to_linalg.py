"""Group 3 (b): convert (var)arith over buffers to DPS linalg (Section 5.3).

CSL's DSD builtins operate on physical memory passed as operands
(Destination-Passing Style); the arith dialect has no such form, so every
elementwise operation over memrefs is rewritten to its linalg counterpart
with an explicitly allocated destination buffer.  A follow-up optimisation
(:mod:`repro.transforms.memory_optimization`) then eliminates most of those
temporary buffers by accumulating in place, which is what gives the paper's
generated code its memory-footprint advantage over the hand-written kernel
(Section 6.1).
"""

from __future__ import annotations

from repro.dialects import arith, linalg, memref, varith
from repro.ir import (
    ModulePass,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
)
from repro.ir.operation import Operation
from repro.ir.types import MemRefType
from repro.ir.value import SSAValue


def _is_buffer(value: SSAValue) -> bool:
    return isinstance(value.type, MemRefType)


def _is_scalar_constant(value: SSAValue) -> bool:
    return isinstance(value.owner(), arith.ConstantOp) and not _is_buffer(value)


class VarithAddToLinalg(RewritePattern):
    """``varith.add(a, b, c, ...)`` -> chain of linalg.add into a new buffer."""

    @op_rewrite_pattern
    def match_and_rewrite(self, op: varith.AddOp, rewriter: PatternRewriter) -> None:
        if not _is_buffer(op.result):
            return
        buffers = [operand for operand in op.operands if _is_buffer(operand)]
        scalars = [operand for operand in op.operands if not _is_buffer(operand)]
        if not buffers:
            return

        result_type = op.result.type
        assert isinstance(result_type, MemRefType)
        dest = memref.AllocOp(MemRefType(result_type.shape, result_type.element_type))
        new_ops: list[Operation] = [dest]

        if len(buffers) == 1:
            new_ops.append(memref.CopyOp(buffers[0], dest.result))
        else:
            new_ops.append(linalg.AddOp([buffers[0], buffers[1]], dest.result))
            for extra in buffers[2:]:
                new_ops.append(linalg.AddOp([dest.result, extra], dest.result))
        # Scalars added to every element are rare in stencil bodies; they are
        # folded through an fmacs-style update with a unit multiplier.
        for scalar in scalars:
            one = arith.ConstantOp(1.0, scalar.type)
            new_ops.append(one)
            new_ops.append(linalg.FmaOp(dest.result, one.results[0], scalar, dest.result))

        rewriter.insert_op_before_matched_op(new_ops)
        rewriter.replace_matched_op([], new_results=[dest.result])


class VarithMulToLinalg(RewritePattern):
    """``varith.mul`` -> linalg.mul / linalg.scale into a new buffer."""

    @op_rewrite_pattern
    def match_and_rewrite(self, op: varith.MulOp, rewriter: PatternRewriter) -> None:
        if not _is_buffer(op.result):
            return
        buffers = [operand for operand in op.operands if _is_buffer(operand)]
        scalars = [operand for operand in op.operands if not _is_buffer(operand)]
        if not buffers:
            return

        result_type = op.result.type
        assert isinstance(result_type, MemRefType)
        dest = memref.AllocOp(MemRefType(result_type.shape, result_type.element_type))
        new_ops: list[Operation] = [dest]

        if len(buffers) == 1 and scalars:
            new_ops.append(linalg.ScaleOp(buffers[0], scalars[0], dest.result))
            remaining_scalars = scalars[1:]
        else:
            new_ops.append(linalg.MulOp([buffers[0], buffers[1]], dest.result))
            for extra in buffers[2:]:
                new_ops.append(linalg.MulOp([dest.result, extra], dest.result))
            remaining_scalars = scalars
        for scalar in remaining_scalars:
            new_ops.append(linalg.ScaleOp(dest.result, scalar, dest.result))

        rewriter.insert_op_before_matched_op(new_ops)
        rewriter.replace_matched_op([], new_results=[dest.result])


class BinaryArithToLinalg(RewritePattern):
    """Binary arith over buffers -> the corresponding linalg op."""

    _MAPPING = {
        arith.AddfOp: linalg.AddOp,
        arith.SubfOp: linalg.SubOp,
        arith.MulfOp: linalg.MulOp,
        arith.DivfOp: linalg.DivOp,
    }

    @op_rewrite_pattern
    def match_and_rewrite(
        self,
        op: arith.AddfOp | arith.SubfOp | arith.MulfOp | arith.DivfOp,
        rewriter: PatternRewriter,
    ) -> None:
        target = self._MAPPING[type(op)]
        if not _is_buffer(op.result):
            return

        result_type = op.result.type
        assert isinstance(result_type, MemRefType)
        dest = memref.AllocOp(MemRefType(result_type.shape, result_type.element_type))
        new_ops: list[Operation] = [dest]

        lhs_buffer, rhs_buffer = _is_buffer(op.lhs), _is_buffer(op.rhs)
        if lhs_buffer and rhs_buffer:
            new_ops.append(target([op.lhs, op.rhs], dest.result))
        elif isinstance(op, arith.MulfOp) and lhs_buffer:
            new_ops.append(linalg.ScaleOp(op.lhs, op.rhs, dest.result))
        elif isinstance(op, arith.MulfOp) and rhs_buffer:
            new_ops.append(linalg.ScaleOp(op.rhs, op.lhs, dest.result))
        elif isinstance(op, arith.AddfOp) and lhs_buffer:
            one = arith.ConstantOp(1.0, op.rhs.type)
            new_ops.extend(
                [one, linalg.FmaOp(op.lhs, one.results[0], op.rhs, dest.result)]
            )
        else:
            return

        rewriter.insert_op_before_matched_op(new_ops)
        rewriter.replace_matched_op([], new_results=[dest.result])


class ArithToLinalgPass(ModulePass):
    name = "arith-to-linalg"

    def apply(self, module: Operation) -> None:
        apply_patterns_greedily(
            module, [VarithAddToLinalg(), VarithMulToLinalg(), BinaryArithToLinalg()]
        )
