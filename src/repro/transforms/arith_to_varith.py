"""convert-arith-to-varith (paper Section 5.7).

Collapses chains of binary ``arith.addf``/``arith.mulf`` into single variadic
``varith.add``/``varith.mul`` operations.  The variadic form makes later
passes (splitting local/remote computation, fusing repeated operands) much
simpler to express.
"""

from __future__ import annotations

from repro.dialects import arith, varith
from repro.ir import (
    ModulePass,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
)
from repro.ir.operation import Operation
from repro.ir.value import SSAValue


class ArithToVarithPattern(RewritePattern):
    """Turn one binary op into a variadic op (merging variadic operands)."""

    _MAPPING = {
        arith.AddfOp: varith.AddOp,
        arith.MulfOp: varith.MulOp,
    }

    @op_rewrite_pattern
    def match_and_rewrite(
        self, op: arith.AddfOp | arith.MulfOp, rewriter: PatternRewriter
    ) -> None:
        target = self._MAPPING[type(op)]
        operands = self._flatten(op.lhs, target) + self._flatten(op.rhs, target)
        new_op = target(operands, op.result.type)
        rewriter.replace_matched_op(new_op)

    @staticmethod
    def _flatten(value: SSAValue, target: type) -> list[SSAValue]:
        """If the value is itself produced by the same variadic op with a
        single use, absorb its operands; otherwise keep the value as is."""
        owner = value.owner()
        if isinstance(owner, target) and len(value.uses) == 1:
            return list(owner.operands)
        return [value]


class MergeNestedVarithPattern(RewritePattern):
    """Merge a varith op used once as an operand of a same-kind varith op."""

    @op_rewrite_pattern
    def match_and_rewrite(
        self, op: varith.AddOp | varith.MulOp, rewriter: PatternRewriter
    ) -> None:
        for operand in op.operands:
            owner = operand.owner()
            if type(owner) is type(op) and len(operand.uses) == 1:
                new_operands: list[SSAValue] = []
                for value in op.operands:
                    if value is operand:
                        new_operands.extend(owner.operands)
                    else:
                        new_operands.append(value)
                rewriter.replace_matched_op(type(op)(new_operands, op.result.type))
                return


class ArithToVarithPass(ModulePass):
    name = "convert-arith-to-varith"

    def apply(self, module: Operation) -> None:
        from repro.transforms.canonicalize import RemoveDeadPureOps

        apply_patterns_greedily(
            module,
            [
                ArithToVarithPattern(),
                MergeNestedVarithPattern(),
                RemoveDeadPureOps(),
            ],
        )
