"""Group 3 (a): partial bufferization (paper Section 5.3).

Converts the value-semantics tensors used so far into reference-semantics
memrefs: the accumulator becomes an allocated buffer, tensor types on region
arguments and access results become memref types, and ``tensor.insert_slice``
becomes a subview plus a copy.  Arithmetic op *forms* are converted to
Destination-Passing-Style linalg by the follow-up pass
:class:`repro.transforms.arith_to_linalg.ArithToLinalgPass`.
"""

from __future__ import annotations

from repro.dialects import csl_stencil, memref, stencil, tensor
from repro.dialects import varith
from repro.dialects import arith
from repro.ir import ModulePass
from repro.ir.operation import Operation
from repro.ir.types import MemRefType, TensorType
from repro.ir.value import SSAValue


def _to_memref(type_) -> MemRefType:
    assert isinstance(type_, TensorType)
    return MemRefType(type_.shape, type_.element_type)


class BufferizePass(ModulePass):
    """Tensor-to-memref conversion of csl-stencil programs."""

    name = "csl-stencil-bufferize"

    def apply(self, module: Operation) -> None:
        # Accumulator initialisers become explicit allocations.
        for empty in list(module.walk_type(tensor.EmptyOp)):
            assert isinstance(empty, tensor.EmptyOp)
            alloc = memref.AllocOp(_to_memref(empty.result.type))
            assert empty.parent is not None
            empty.parent.insert_op_before(alloc, empty)
            empty.result.replace_all_uses_with(alloc.result)
            empty.erase()

        # Prefetched remote buffers are reference-semantics buffers.
        for prefetch in module.walk_type(csl_stencil.PrefetchOp):
            assert isinstance(prefetch, csl_stencil.PrefetchOp)
            if isinstance(prefetch.result.type, TensorType):
                prefetch.result.type = _to_memref(prefetch.result.type)

        for apply_op in module.walk_type(csl_stencil.ApplyOp):
            assert isinstance(apply_op, csl_stencil.ApplyOp)
            self._bufferize_apply(apply_op)

    # ------------------------------------------------------------------ #

    def _bufferize_apply(self, apply_op: csl_stencil.ApplyOp) -> None:
        for region in apply_op.regions:
            block = region.block
            for arg in block.args:
                if isinstance(arg.type, TensorType):
                    arg.type = _to_memref(arg.type)
                elif isinstance(arg.type, (stencil.TempType, stencil.FieldType)):
                    element = arg.type.element_type
                    if isinstance(element, TensorType):
                        arg.type = type(arg.type)(arg.type.bounds, _to_memref(element))

            for op in list(block.walk()):
                self._bufferize_op(op)

        # The result of the apply keeps its stencil.temp type but its element
        # becomes a memref as well, so downstream stores see buffers.
        for result in apply_op.results:
            if isinstance(result.type, stencil.TempType) and isinstance(
                result.type.element_type, TensorType
            ):
                result.type = stencil.TempType(
                    result.type.bounds, _to_memref(result.type.element_type)
                )

    def _bufferize_op(self, op: Operation) -> None:
        if isinstance(op, csl_stencil.AccessOp):
            if isinstance(op.result.type, TensorType):
                op.result.type = _to_memref(op.result.type)
            return

        if isinstance(op, (varith.AddOp, varith.MulOp, arith._BinaryOp)):
            for result in op.results:
                if isinstance(result.type, TensorType):
                    result.type = _to_memref(result.type)
            return

        if isinstance(op, tensor.InsertSliceOp):
            destination = op.dest
            result_type = MemRefType([op.size], _element_type(destination.type))
            subview = memref.SubviewOp(destination, op.offset, op.size, result_type)
            copy = memref.CopyOp(op.source, subview.result)
            assert op.parent is not None
            op.parent.insert_op_before(subview, op)
            op.parent.insert_op_before(copy, op)
            op.results[0].replace_all_uses_with(destination)
            op.erase()
            return


def _element_type(buffer_type) -> object:
    if isinstance(buffer_type, (TensorType, MemRefType)):
        return buffer_type.element_type
    raise TypeError(f"expected a shaped type, got {buffer_type}")
