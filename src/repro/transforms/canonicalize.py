"""Canonicalisation: dead-code elimination and trivial foldings.

Run between major pipeline stages to clean up ops left dead by rewrites.
"""

from __future__ import annotations

from repro.dialects import arith, varith
from repro.ir import (
    ModulePass,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
)
from repro.ir.operation import Operation
from repro.ir.traits import Pure


class RemoveDeadPureOps(RewritePattern):
    """Erase side-effect-free operations whose results are unused.

    Pure ops exist across all dialects, so this pattern declares no root op
    type and runs on every op class.
    """

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        if Pure not in op.traits:
            return
        if not op.results:
            return
        if any(result.has_uses for result in op.results):
            return
        rewriter.erase_matched_op()


class FoldConstantArith(RewritePattern):
    """Constant-fold binary float arithmetic over two constants."""

    _FOLDERS = {
        arith.AddfOp: lambda a, b: a + b,
        arith.SubfOp: lambda a, b: a - b,
        arith.MulfOp: lambda a, b: a * b,
        arith.DivfOp: lambda a, b: a / b,
    }

    @op_rewrite_pattern
    def match_and_rewrite(
        self,
        op: arith.AddfOp | arith.SubfOp | arith.MulfOp | arith.DivfOp,
        rewriter: PatternRewriter,
    ) -> None:
        folder = self._FOLDERS[type(op)]
        lhs, rhs = op.lhs.owner(), op.rhs.owner()
        if not (isinstance(lhs, arith.ConstantOp) and isinstance(rhs, arith.ConstantOp)):
            return
        folded = arith.ConstantOp(folder(lhs.value, rhs.value), op.result.type)
        rewriter.replace_matched_op(folded)


class FlattenSingleOperandVarith(RewritePattern):
    """``varith.add(%x)`` is just ``%x``."""

    @op_rewrite_pattern
    def match_and_rewrite(
        self, op: varith.AddOp | varith.MulOp, rewriter: PatternRewriter
    ) -> None:
        if len(op.operands) != 1:
            return
        rewriter.replace_matched_op([], new_results=[op.operands[0]])


class CanonicalizePass(ModulePass):
    """DCE plus local foldings, applied to a fixpoint."""

    name = "canonicalize"

    def apply(self, module: Operation) -> None:
        apply_patterns_greedily(
            module,
            [
                FoldConstantArith(),
                FlattenSingleOperandVarith(),
                RemoveDeadPureOps(),
            ],
        )
