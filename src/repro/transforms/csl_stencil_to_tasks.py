"""Group 4 (b): map csl-stencil applies onto the actor execution model
(paper Section 5.4).

Every ``csl_stencil.apply`` is split into its constituent activities and each
is mapped to a software actor:

* the enclosing function keeps the code *before* the apply, zeroes the
  accumulator and schedules the chunked exchange
  (``csl.comms_exchange`` — the runtime communications library of §5.6);
* the *receive region* becomes a local task activated once per received
  chunk;
* the *compute region* (plus everything that followed the apply, i.e. the
  continuation) becomes a local task activated when the exchange completes.

``csl_stencil.prefetch`` similarly becomes an exchange whose completion
callback is the continuation.  The pass runs to a fixpoint, so a function
containing several applies unravels into a chain of actors — exactly the
``seq_kernel0 -> done_exchange_cb0 -> seq_kernel1 -> ...`` flow of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dialects import arith, csl, csl_stencil, csl_wrapper, linalg, memref, stencil
from repro.ir import ModulePass
from repro.ir.attributes import IntAttr, SymbolRefAttr
from repro.ir.exceptions import PassFailedException
from repro.ir.operation import Block, Operation, Region
from repro.ir.types import MemRefType, f32, i16
from repro.ir.value import BlockArgument, SSAValue
from repro.transforms.scf_to_task_graph import FIRST_LOCAL_TASK_ID
from repro.transforms.utils import remote_directions


_REMATERIALIZABLE = (memref.GetGlobalOp, arith.ConstantOp, csl.ConstantOp, csl.LoadVarOp)


def _rematerialize_external_values(block: Block) -> None:
    """Clone cheap defining ops into ``block`` for operands defined elsewhere.

    After splitting a function into several actors, moved operations may
    still reference values (buffer getters, constants) defined in the actor
    they were moved out of; those definitions are simply re-created locally.
    """
    changed = True
    while changed:
        changed = False
        local_values: set[int] = set()
        for op in block.walk():
            for result in op.results:
                local_values.add(id(result))
        for arg in block.args:
            local_values.add(id(arg))
        for op in list(block.walk()):
            for index, operand in enumerate(op.operands):
                if id(operand) in local_values:
                    continue
                if isinstance(operand, BlockArgument):
                    continue
                owner = operand.owner()
                if isinstance(owner, Operation) and owner.parent is not None:
                    top = owner
                    while top.parent is not None and top.parent is not block:
                        parent_op = top.parent_op()
                        if parent_op is None:
                            break
                        top = parent_op
                    if top.parent is block:
                        continue
                if isinstance(owner, _REMATERIALIZABLE):
                    clone = owner.clone()
                    block.insert_op(clone, 0)
                    op.set_operand(index, clone.results[0])
                    changed = True


@dataclass
class CslStencilToTasksPass(ModulePass):
    """Split functions at asynchronous exchanges into communicating actors."""

    name = "csl-stencil-to-tasks"

    def apply(self, module: Operation) -> None:
        for wrapper in list(module.walk_type(csl_wrapper.ModuleOp)):
            assert isinstance(wrapper, csl_wrapper.ModuleOp)
            self._rewrite_wrapper(wrapper)

    # ------------------------------------------------------------------ #

    def _rewrite_wrapper(self, wrapper: csl_wrapper.ModuleOp) -> None:
        program_block = wrapper.program_region.block
        state = _WrapperState(wrapper, program_block)

        state.ensure_recv_buffer()
        self._buffers_to_globals(state)

        # Split callables until no asynchronous stencil op remains.
        progress = True
        while progress:
            progress = False
            for callable_op in list(program_block.ops):
                if isinstance(callable_op, (csl.FuncOp, csl.TaskOp)):
                    if self._split_callable(callable_op, state):
                        progress = True
                        break

        # Residual loads/stores (outside any apply) lower to buffer copies.
        self._lower_residual_stencil_ops(state)

    # ------------------------------------------------------------------ #

    def _buffers_to_globals(self, state: "_WrapperState") -> None:
        """Buffers created by allocation (accumulators, reduction scratch)
        become statically allocated module buffers, as CSL requires."""
        for callable_op in list(state.program_block.ops):
            if not isinstance(callable_op, (csl.FuncOp, csl.TaskOp)):
                continue
            for op in list(callable_op.body.block.walk()):
                if isinstance(op, memref.AllocOp):
                    name = state.fresh_name("accumulator")
                    buffer_type = op.result.type
                    assert isinstance(buffer_type, MemRefType)
                    state.add_global(memref.GlobalOp(name, buffer_type))
                    getter = memref.GetGlobalOp(name, buffer_type)
                    assert op.parent is not None
                    op.parent.insert_op_before(getter, op)
                    op.result.replace_all_uses_with(getter.result)
                    op.erase()
                elif isinstance(op, stencil.LoadOp):
                    op.results[0].replace_all_uses_with(op.field)
                    op.erase()

    # ------------------------------------------------------------------ #

    def _split_callable(
        self, callable_op: "csl.FuncOp | csl.TaskOp", state: "_WrapperState"
    ) -> bool:
        block = callable_op.body.block
        split_index = None
        for index, op in enumerate(block.ops):
            if isinstance(op, (csl_stencil.ApplyOp, csl_stencil.PrefetchOp)):
                split_index = index
                break
        if split_index is None:
            return False

        async_op = block.ops[split_index]
        post_ops = list(block.ops[split_index + 1 :])

        if isinstance(async_op, csl_stencil.PrefetchOp):
            self._lower_prefetch(callable_op, async_op, post_ops, state)
        else:
            assert isinstance(async_op, csl_stencil.ApplyOp)
            self._lower_apply(callable_op, async_op, post_ops, state)
        return True

    # ------------------------------------------------------------------ #
    # Prefetch lowering
    # ------------------------------------------------------------------ #

    def _lower_prefetch(
        self,
        callable_op: "csl.FuncOp | csl.TaskOp",
        prefetch: csl_stencil.PrefetchOp,
        post_ops: list[Operation],
        state: "_WrapperState",
    ) -> None:
        block = callable_op.body.block
        index = state.next_exchange_index()
        directions = tuple(exchange.neighbor for exchange in prefetch.swaps)
        z_core = prefetch.attributes["z_core"].value  # type: ignore[union-attr]
        z_halo_lo_attr = prefetch.attributes.get("z_halo_lo")
        z_halo_lo = z_halo_lo_attr.value if isinstance(z_halo_lo_attr, IntAttr) else 0

        buffer_name = f"prefetch_buf_{index}"
        buffer_type = MemRefType([max(1, len(directions)) * z_core], f32)
        state.add_global(memref.GlobalOp(buffer_name, buffer_type))

        continuation = csl.FuncOp(f"continue_exchange_{index}")
        continuation_block = continuation.body.block
        for op in post_ops:
            op.detach()
            continuation_block.add_op(op)
        if not isinstance(continuation_block.last_op, csl.ReturnOp):
            continuation_block.add_op(csl.ReturnOp())

        # Accesses to the prefetched data now read the prefetch buffer; the
        # operand's own column stays available through its field buffer (a
        # centre access must not read the prefetch buffer).
        getter = memref.GetGlobalOp(buffer_name, buffer_type)
        continuation_block.insert_op(getter, 0)
        prefetch.result.replace_all_uses_with(getter.result)
        state.prefetch_directions[buffer_name] = directions
        source_owner = prefetch.input.owner()
        if isinstance(source_owner, memref.GetGlobalOp):
            state.prefetch_sources[buffer_name] = (
                source_owner.global_name,
                source_owner.result.type,
            )
        _rematerialize_external_values(continuation_block)

        exchange = csl.CommsExchangeOp(
            buffer=prefetch.input,
            num_chunks=1,
            recv_callback="",
            done_callback=continuation.sym_name,
            directions=directions,
            pattern=max(
                (max(abs(d[0]), abs(d[1])) for d in directions), default=1
            ),
        )
        exchange.attributes["recv_buffer"] = SymbolRefAttr(buffer_name)
        exchange.attributes["src_offset"] = IntAttr(z_halo_lo)
        exchange.attributes["src_len"] = IntAttr(z_core)
        exchange.attributes["chunk_size"] = IntAttr(z_core)

        block.insert_op_before(exchange, prefetch)
        prefetch.erase()
        block.add_op(csl.ReturnOp())
        _rematerialize_external_values(block)
        state.add_callable(continuation)

    # ------------------------------------------------------------------ #
    # Apply lowering
    # ------------------------------------------------------------------ #

    def _lower_apply(
        self,
        callable_op: "csl.FuncOp | csl.TaskOp",
        apply_op: csl_stencil.ApplyOp,
        post_ops: list[Operation],
        state: "_WrapperState",
    ) -> None:
        block = callable_op.body.block
        index = state.next_exchange_index()
        directions = tuple(exchange.neighbor for exchange in apply_op.swaps)
        z_core = apply_op.attributes["z_core"].value  # type: ignore[union-attr]
        z_halo_lo = apply_op.attributes["z_halo_lo"].value  # type: ignore[union-attr]
        chunk_size = apply_op.attributes["chunk_size"].value  # type: ignore[union-attr]
        coefficients = apply_op.attributes.get("coefficients")
        state.z_halo_lo = z_halo_lo

        accumulator = apply_op.accumulator
        communicated = apply_op.communicated

        recv_task_name = f"receive_chunk_cb{index}"
        done_task_name = f"done_exchange_cb{index}"

        # ----- receive task ---------------------------------------------------
        recv_task = self._build_receive_task(
            apply_op, recv_task_name, accumulator, directions, chunk_size, state
        )

        # ----- done (compute + continuation) task -----------------------------
        done_task = self._build_done_task(
            apply_op,
            done_task_name,
            accumulator,
            communicated,
            directions,
            post_ops,
            z_core,
            z_halo_lo,
            state,
        )

        # ----- rewrite the enclosing actor ------------------------------------
        if directions:
            zero = arith.ConstantOp(0.0, f32)
            fill = linalg.FillOp(zero.result, accumulator)
            block.insert_op_before(zero, apply_op)
            block.insert_op_before(fill, apply_op)

            exchange = csl.CommsExchangeOp(
                buffer=communicated,
                num_chunks=apply_op.num_chunks,
                recv_callback=recv_task_name,
                done_callback=done_task_name,
                directions=directions,
                pattern=max(
                    (max(abs(d[0]), abs(d[1])) for d in directions), default=1
                ),
                # Per-direction coefficients are applied by the receive task's
                # explicit DSD multiplies (cloned from the receive region), so
                # the exchange itself must not re-apply them.
                coefficients=None,
            )
            exchange.attributes["recv_buffer"] = SymbolRefAttr(state.recv_buffer_name)
            exchange.attributes["src_offset"] = IntAttr(z_halo_lo)
            exchange.attributes["src_len"] = IntAttr(z_core)
            exchange.attributes["chunk_size"] = IntAttr(chunk_size)
            block.insert_op_before(exchange, apply_op)
        else:
            # Local-only apply: no exchange is needed; activate the compute
            # actor directly (it runs once the current actor completes).
            block.insert_op_before(
                csl.ActivateOp(done_task_name, done_task.task_id), apply_op
            )

        if any(result.has_uses for result in apply_op.results):
            raise PassFailedException(
                "csl-stencil-to-tasks: apply results must only feed stencil.store"
            )
        apply_op.erase()
        block.add_op(csl.ReturnOp())
        _rematerialize_external_values(block)

        if directions:
            state.add_callable(recv_task)
        state.add_callable(done_task)

    # ------------------------------------------------------------------ #

    def _build_receive_task(
        self,
        apply_op: csl_stencil.ApplyOp,
        task_name: str,
        accumulator: SSAValue,
        directions: tuple[tuple[int, int], ...],
        chunk_size: int,
        state: "_WrapperState",
    ) -> csl.TaskOp:
        """The receive region becomes a local task taking the chunk offset."""
        task = csl.TaskOp(task_name, csl.TaskKind.LOCAL, state.next_task_id(), [i16])
        task_block = task.body.block
        offset_value = task_block.args[0]

        recv_getter = memref.GetGlobalOp(
            state.recv_buffer_name, state.recv_buffer_type
        )
        task_block.add_op(recv_getter)

        region_block = apply_op.receive_region.block
        chunk_arg, offset_arg, acc_arg = region_block.args
        value_map: dict[SSAValue, SSAValue] = {
            offset_arg: offset_value,
            acc_arg: accumulator,
        }

        for op in region_block.ops:
            if isinstance(op, csl_stencil.YieldOp):
                continue
            if isinstance(op, csl_stencil.AccessOp) and op.operand is chunk_arg:
                direction = tuple(op.offset[:2])
                slot = remote_directions(directions).index(direction)
                subview = memref.SubviewOp(
                    recv_getter.result,
                    slot * chunk_size,
                    chunk_size,
                    MemRefType([chunk_size], f32),
                )
                task_block.add_op(subview)
                value_map[op.result] = subview.result
                continue
            clone = op._clone_into(value_map)
            task_block.add_op(clone)

        task_block.add_op(csl.ReturnOp())
        _rematerialize_external_values(task_block)
        return task

    # ------------------------------------------------------------------ #

    def _build_done_task(
        self,
        apply_op: csl_stencil.ApplyOp,
        task_name: str,
        accumulator: SSAValue,
        communicated: SSAValue,
        directions: tuple[tuple[int, int], ...],
        post_ops: list[Operation],
        z_core: int,
        z_halo_lo: int,
        state: "_WrapperState",
    ) -> csl.TaskOp:
        """The compute region plus the continuation become a local task."""
        task = csl.TaskOp(task_name, csl.TaskKind.LOCAL, state.next_task_id())
        task_block = task.body.block

        region_block = apply_op.compute_region.block
        acc_arg = region_block.args[-1]

        # The compute region keeps one argument per *original* apply operand
        # (plus the accumulator); map them back to the csl_stencil.apply
        # operand list using the recorded indices.
        primary_index_attr = apply_op.attributes.get("primary_operand_index")
        primary_index = (
            primary_index_attr.value if isinstance(primary_index_attr, IntAttr) else 0
        )
        extra_indices_attr = apply_op.attributes.get("extra_operand_indices")
        extra_indices = (
            [int(v) for v in extra_indices_attr]
            if extra_indices_attr is not None
            else list(range(1, len(region_block.args) - 1))
        )

        value_map: dict[SSAValue, SSAValue] = {acc_arg: accumulator}
        original_args = region_block.args[:-1]
        if primary_index < len(original_args):
            value_map[original_args[primary_index]] = communicated
        for original_index, operand in zip(extra_indices, apply_op.extra_operands):
            if original_index < len(original_args):
                value_map[original_args[original_index]] = operand

        yielded: SSAValue | None = None
        for op in region_block.ops:
            if isinstance(op, csl_stencil.YieldOp):
                yielded = value_map.get(op.operands[0], op.operands[0])
                continue
            if isinstance(op, csl_stencil.AccessOp):
                source = value_map.get(op.operand, op.operand)
                lowered_ops = self._lower_access(
                    op, source, directions, z_core, z_halo_lo, state
                )
                task_block.add_ops(lowered_ops)
                value_map[op.result] = lowered_ops[-1].results[0]
                continue
            clone = op._clone_into(value_map)
            task_block.add_op(clone)

        assert yielded is not None, "compute region has no csl_stencil.yield"

        # Continuation: the operations that followed the apply.
        for op in post_ops:
            op.detach()
            if isinstance(op, stencil.StoreOp) and op.temp in apply_op.results:
                dest_subview = memref.SubviewOp(
                    op.field, z_halo_lo, z_core, MemRefType([z_core], f32)
                )
                copy = memref.CopyOp(yielded, dest_subview.result)
                task_block.add_ops([dest_subview, copy])
                op.drop_all_operands()
                continue
            task_block.add_op(op)

        if not isinstance(task_block.last_op, csl.ReturnOp):
            task_block.add_op(csl.ReturnOp())
        _rematerialize_external_values(task_block)
        return task

    # ------------------------------------------------------------------ #

    def _lower_access(
        self,
        access: csl_stencil.AccessOp,
        source: SSAValue,
        directions: tuple[tuple[int, int], ...],
        z_core: int,
        z_halo_lo: int,
        state: "_WrapperState",
    ) -> list[Operation]:
        """Lower a compute-region access to a subview of the right buffer.

        Returns the operations to insert; the last one's result is the
        lowered access value."""
        offset_xy = tuple(access.offset[:2])
        z_offset_attr = access.attributes.get("z_offset")
        z_offset = z_offset_attr.value if isinstance(z_offset_attr, IntAttr) else 0

        if offset_xy == (0, 0):
            # Locally-held column: the field buffer shifted by the z offset.
            # When the operand was prefetched (for its *remote* accesses) the
            # centre access still reads the PE's own column of that field.
            source_name = self._global_name_of(source)
            prefetch_source = state.prefetch_sources.get(source_name)
            if prefetch_source is not None:
                field_name, field_type = prefetch_source
                field_getter = memref.GetGlobalOp(field_name, field_type)
                subview = memref.SubviewOp(
                    field_getter.result,
                    z_halo_lo + z_offset,
                    z_core,
                    MemRefType([z_core], f32),
                )
                return [field_getter, subview]
            return [
                memref.SubviewOp(
                    source, z_halo_lo + z_offset, z_core, MemRefType([z_core], f32)
                )
            ]

        # Prefetched remote column: the prefetch buffer at the direction slot.
        buffer_name = self._global_name_of(source)
        prefetch_dirs = state.prefetch_directions.get(buffer_name)
        if prefetch_dirs is None:
            raise PassFailedException(
                "csl-stencil-to-tasks: remote access does not correspond to a "
                "prefetched operand"
            )
        slot = remote_directions(prefetch_dirs).index(offset_xy)
        return [
            memref.SubviewOp(source, slot * z_core, z_core, MemRefType([z_core], f32))
        ]

    @staticmethod
    def _global_name_of(value: SSAValue) -> str:
        owner = value.owner()
        if isinstance(owner, memref.GetGlobalOp):
            return owner.global_name
        return ""

    # ------------------------------------------------------------------ #

    def _lower_residual_stencil_ops(self, state: "_WrapperState") -> None:
        for callable_op in list(state.program_block.ops):
            if not isinstance(callable_op, (csl.FuncOp, csl.TaskOp)):
                continue
            for op in list(callable_op.body.block.walk()):
                if isinstance(op, stencil.StoreOp):
                    raise PassFailedException(
                        "csl-stencil-to-tasks: found a stencil.store that is not "
                        "fed by a csl_stencil.apply"
                    )


class _WrapperState:
    """Bookkeeping shared across the splitting of one csl_wrapper.module."""

    def __init__(self, wrapper: csl_wrapper.ModuleOp, program_block: Block):
        self.wrapper = wrapper
        self.program_block = program_block
        self.exchange_counter = 0
        self.task_id_counter = FIRST_LOCAL_TASK_ID + 1
        self.name_counter = 0
        self.prefetch_directions: dict[str, tuple[tuple[int, int], ...]] = {}
        #: prefetch buffer name -> (source field buffer name, its memref type).
        self.prefetch_sources: dict[str, tuple[str, object]] = {}
        self.z_halo_lo = 0
        self.recv_buffer_name = "receive_buffer"
        num_directions = wrapper.param_value("num_directions") or 1
        chunk_size = wrapper.param_value("chunk_size") or 1
        self.recv_buffer_type = MemRefType(
            [max(1, num_directions) * chunk_size], f32
        )
        self._recv_buffer_created = False
        self._existing_task_ids = {
            op.task_id
            for op in program_block.ops
            if isinstance(op, csl.TaskOp)
        }

    def ensure_recv_buffer(self) -> None:
        if not self._recv_buffer_created:
            self.add_global(memref.GlobalOp(self.recv_buffer_name, self.recv_buffer_type))
            self._recv_buffer_created = True

    def add_global(self, global_op: memref.GlobalOp) -> None:
        self.program_block.insert_op(global_op, 0)

    def add_callable(self, op: Operation) -> None:
        self.program_block.add_op(op)

    def fresh_name(self, base: str) -> str:
        name = f"{base}_{self.name_counter}"
        self.name_counter += 1
        return name

    def next_exchange_index(self) -> int:
        index = self.exchange_counter
        self.exchange_counter += 1
        return index

    def next_task_id(self) -> int:
        while self.task_id_counter in self._existing_task_ids:
            self.task_id_counter += 1
        task_id = self.task_id_counter
        self.task_id_counter += 1
        self._existing_task_ids.add(task_id)
        return task_id
