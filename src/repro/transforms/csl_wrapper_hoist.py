"""Group 2 (b): wrap csl-stencil in csl-wrapper (paper Section 5.2).

Generates the ``csl_wrapper.module`` that packages the layout metaprogram and
the PE program together, and populates it with the program-wide compile-time
parameters extracted from the ``csl_stencil`` operations (grid extent, column
length, chunking, stencil pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dialects import csl_stencil, csl_wrapper, func
from repro.ir import ModulePass
from repro.ir.attributes import FloatAttr, IntAttr, StringAttr
from repro.ir.exceptions import PassFailedException
from repro.ir.operation import Operation
from repro.dialects.builtin import ModuleOp


@dataclass
class CslWrapperHoistPass(ModulePass):
    """Wrap the kernel function in a ``csl_wrapper.module``.

    The boundary condition travels as wrapper attributes so the lowering can
    stamp it onto the generated program and layout modules, where the
    simulator's execution backends (and the printed CSL) pick it up.
    """

    width: int = 1
    height: int = 1
    target: str = "wse2"
    boundary_kind: str = "dirichlet"
    boundary_value: float = 0.0

    name = "csl-wrapper-hoist"

    def apply(self, module: Operation) -> None:
        assert isinstance(module, ModuleOp)
        functions = [op for op in module.ops if isinstance(op, func.FuncOp)]
        if not functions:
            raise PassFailedException("csl-wrapper-hoist: no kernel function found")
        kernel = functions[0]

        applies = [
            op
            for op in kernel.walk_type(csl_stencil.ApplyOp)
            if isinstance(op, csl_stencil.ApplyOp)
        ]
        if not applies:
            raise PassFailedException(
                "csl-wrapper-hoist: expected csl_stencil.apply operations"
            )

        z_dim = max(
            apply_op.attributes["z_total"].value  # type: ignore[union-attr]
            for apply_op in applies
        )
        num_chunks = max(apply_op.num_chunks for apply_op in applies)
        chunk_size = max(
            apply_op.attributes["chunk_size"].value  # type: ignore[union-attr]
            for apply_op in applies
        )
        pattern = 1
        for apply_op in applies:
            for exchange in apply_op.swaps:
                pattern = max(
                    pattern, abs(exchange.neighbor[0]), abs(exchange.neighbor[1])
                )
        max_directions = max(
            (len(apply_op.swaps) for apply_op in applies), default=0
        )

        params = [
            csl_wrapper.ParamAttr("z_dim", z_dim),
            csl_wrapper.ParamAttr("num_chunks", num_chunks),
            csl_wrapper.ParamAttr("chunk_size", chunk_size),
            csl_wrapper.ParamAttr("pattern", pattern),
            csl_wrapper.ParamAttr("num_directions", max_directions),
            csl_wrapper.ParamAttr("padded_z_dim", num_chunks * chunk_size),
        ]

        wrapper = csl_wrapper.ModuleOp(
            width=self.width,
            height=self.height,
            program_name=kernel.sym_name,
            params=params,
            target=self.target,
        )
        wrapper.attributes["boundary"] = StringAttr(self.boundary_kind)
        wrapper.attributes["boundary_value"] = FloatAttr(self.boundary_value)

        kernel.detach()
        wrapper.program_region.block.add_op(kernel)

        module.body.add_op(wrapper)
