"""Group 1 (a): distribute-stencil (paper Section 5.1).

Decomposes a stencil program over a 2-D grid of processing elements by
inserting ``dmp.swap`` operations in front of every ``stencil.apply`` whose
body reads neighbouring cells in the decomposed (x, y) plane.  The pass was
originally designed for MPI-style clusters (Bisbas et al.); the same abstract
logic maps stencils onto the WSE's PE grid, where each PE ends up holding a
single column of z values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dialects import dmp, stencil
from repro.ir import ModulePass
from repro.ir.operation import Operation
from repro.ir.value import BlockArgument, SSAValue
from repro.transforms.utils import analyze_apply, remote_directions


@dataclass
class DistributeStencilPass(ModulePass):
    """Insert halo-exchange markers for a ``topology_x`` × ``topology_y`` grid."""

    topology_x: int = 1
    topology_y: int = 1

    name = "distribute-stencil"

    def apply(self, module: Operation) -> None:
        strategy = dmp.GridSlice2dAttr(
            dmp.RankTopoAttr([self.topology_x, self.topology_y]), diagonals=False
        )
        for apply_op in list(module.walk_type(stencil.ApplyOp)):
            assert isinstance(apply_op, stencil.ApplyOp)
            self._distribute_apply(apply_op, strategy)

    def _distribute_apply(
        self, apply_op: stencil.ApplyOp, strategy: dmp.GridSlice2dAttr
    ) -> None:
        block = apply_op.body.block
        for operand_index, operand in enumerate(apply_op.operands):
            arg = block.args[operand_index]
            offsets = self._offsets_of_argument(apply_op, arg)
            directions = remote_directions(offsets)
            if not directions:
                continue
            if any(existing_swap_covers(operand, directions) for existing_swap in ()):
                continue
            swaps = [
                dmp.ExchangeDeclAttr(_unit(direction), depth=_depth(direction))
                for direction in _unit_directions(directions)
            ]
            swap = dmp.SwapOp(operand, strategy, swaps)
            assert apply_op.parent is not None
            apply_op.parent.insert_op_before(swap, apply_op)
            apply_op.set_operand(operand_index, swap.result)

    @staticmethod
    def _offsets_of_argument(
        apply_op: stencil.ApplyOp, arg: BlockArgument
    ) -> list[tuple[int, ...]]:
        offsets = []
        for access in apply_op.walk_type(stencil.AccessOp):
            assert isinstance(access, stencil.AccessOp)
            if access.temp is arg:
                offsets.append(access.offset)
        return offsets


def existing_swap_covers(operand: SSAValue, directions) -> bool:
    """Placeholder hook kept for symmetry with the upstream implementation."""
    return False


def _unit(direction: tuple[int, int]) -> tuple[int, int]:
    dx, dy = direction
    return (1 if dx > 0 else -1 if dx < 0 else 0, 1 if dy > 0 else -1 if dy < 0 else 0)


def _depth(direction: tuple[int, int]) -> int:
    return max(abs(direction[0]), abs(direction[1]))


def _unit_directions(directions) -> list[tuple[int, int]]:
    """Collapse per-distance offsets into per-cardinal swaps with max depth."""
    depth_by_unit: dict[tuple[int, int], int] = {}
    for direction in directions:
        unit = _unit(direction)
        depth_by_unit[unit] = max(depth_by_unit.get(unit, 0), _depth(direction))
    return [
        (unit[0] * depth, unit[1] * depth) for unit, depth in depth_by_unit.items()
    ]
