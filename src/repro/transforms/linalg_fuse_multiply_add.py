"""linalg-fuse-multiply-add (paper Section 5.7).

Identifies a multiplication whose result immediately feeds an addition (or
vice versa) and fuses the pair into ``linalg.fma``, which group 5 lowers to
the ``@fmacs`` CSL builtin.  Multiplication-followed-by-addition is the
dominant pattern in stencil reductions, so this conversion accounts for a
large share of the generated DSD instructions.
"""

from __future__ import annotations

from repro.dialects import linalg, memref
from repro.ir import (
    ModulePass,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
)
from repro.ir.operation import Operation


class FuseScaleIntoAdd(RewritePattern):
    """``scale(x, c, t); add(ins(t, y), outs(d))`` -> ``fma(x, c, y, d)``.

    The scaled temporary must have no other readers.
    """

    @op_rewrite_pattern
    def match_and_rewrite(self, op: linalg.AddOp, rewriter: PatternRewriter) -> None:
        for scaled_index, other_index in ((0, 1), (1, 0)):
            scaled = op.inputs[scaled_index]
            other = op.inputs[other_index]
            producer = self._single_scale_writer(scaled, op)
            if producer is None:
                continue
            fma = linalg.FmaOp(producer.input, producer.scalar, other, op.output)
            rewriter.replace_matched_op(fma, new_results=[])
            # The scaled temporary may now be dead.
            if not any(
                use.operation is not producer for use in scaled.uses
            ):
                buffer_owner = scaled.owner()
                rewriter.erase_op(producer)
                if isinstance(buffer_owner, memref.AllocOp) and not buffer_owner.result.has_uses:
                    rewriter.erase_op(buffer_owner)
            return

    @staticmethod
    def _single_scale_writer(value, consumer) -> linalg.ScaleOp | None:
        """The unique linalg.scale writing ``value``, if the only other use of
        ``value`` is ``consumer`` reading it."""
        writers = [
            use.operation
            for use in value.uses
            if isinstance(use.operation, linalg.ScaleOp)
            and use.operation.output is value
        ]
        if len(writers) != 1:
            return None
        readers = [
            use.operation
            for use in value.uses
            if use.operation is not writers[0]
        ]
        if any(reader is not consumer for reader in readers):
            return None
        # The scale must appear before the add in the same block.
        writer = writers[0]
        if writer.parent is None or writer.parent is not consumer.parent:
            return None
        block = writer.parent
        if block.index_of(writer) > block.index_of(consumer):
            return None
        return writer


class LinalgFuseMultiplyAddPass(ModulePass):
    name = "linalg-fuse-multiply-add"

    def apply(self, module: Operation) -> None:
        apply_patterns_greedily(module, FuseScaleIntoAdd())
