"""Group 5 (a): lower linalg compute to csl-ir DSD builtins (Section 5.5).

Rather than generating per-element loops, compute over whole columns maps
onto CSL's high-throughput DSD builtins:

=====================  =========================================
linalg form            CSL builtin
=====================  =========================================
``linalg.add``         ``@fadds(dest, src1, src2)``
``linalg.sub``         ``@fsubs(dest, src1, src2)``
``linalg.mul``         ``@fmuls(dest, src1, src2)``
``linalg.scale``       ``@fmuls(dest, src, scalar)``
``linalg.fma``         ``@fmacs(dest, acc, src, scalar)``
``linalg.fill``        ``@fmovs(dest, scalar)``
``memref.copy``        ``@fmovs(dest, src)``
=====================  =========================================
"""

from __future__ import annotations

from repro.dialects import csl, linalg, memref
from repro.ir import (
    ModulePass,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
)
from repro.ir.operation import Operation


class LowerLinalgToCsl(RewritePattern):
    @op_rewrite_pattern
    def match_and_rewrite(
        self,
        op: linalg.AddOp
        | linalg.SubOp
        | linalg.MulOp
        | linalg.ScaleOp
        | linalg.FmaOp
        | linalg.FillOp
        | memref.CopyOp,
        rewriter: PatternRewriter,
    ) -> None:
        if isinstance(op, linalg.AddOp):
            rewriter.replace_matched_op(
                csl.FaddsOp(op.output, op.inputs[0], op.inputs[1]), new_results=[]
            )
        elif isinstance(op, linalg.SubOp):
            rewriter.replace_matched_op(
                csl.FsubsOp(op.output, op.inputs[0], op.inputs[1]), new_results=[]
            )
        elif isinstance(op, linalg.MulOp):
            rewriter.replace_matched_op(
                csl.FmulsOp(op.output, op.inputs[0], op.inputs[1]), new_results=[]
            )
        elif isinstance(op, linalg.ScaleOp):
            rewriter.replace_matched_op(
                csl.FmulsOp(op.output, op.input, op.scalar), new_results=[]
            )
        elif isinstance(op, linalg.FmaOp):
            a, b, c = op.inputs
            rewriter.replace_matched_op(
                csl.FmacsOp(op.output, c, a, b), new_results=[]
            )
        elif isinstance(op, linalg.FillOp):
            rewriter.replace_matched_op(
                csl.FmovsOp(op.output, op.value), new_results=[]
            )
        elif isinstance(op, memref.CopyOp):
            rewriter.replace_matched_op(
                csl.FmovsOp(op.dest, op.source), new_results=[]
            )


class LinalgToCslPass(ModulePass):
    name = "linalg-to-csl"

    def apply(self, module: Operation) -> None:
        apply_patterns_greedily(module, LowerLinalgToCsl())
