"""Group 5 (c): lower csl_wrapper.module to csl-ir modules (Section 5.5).

The wrapper is expanded into the two CSL source modules of the staged
compilation model:

* the *layout* metaprogram — imports the routing/memcpy helpers, declares the
  grid rectangle and assigns the PE program (with its compile-time
  parameters) to every tile; and
* the *PE program* module — imports the memcpy and stencil-communication
  libraries, declares the compile-time parameters, and contains the buffers,
  functions and tasks produced by the earlier passes.
"""

from __future__ import annotations

from repro.dialects import csl, csl_wrapper
from repro.dialects.builtin import ModuleOp
from repro.ir import ModulePass
from repro.ir.attributes import Attribute, FloatAttr, IntAttr, StringAttr
from repro.ir.operation import Operation
from repro.ir.types import i16


def _boundary_attrs(
    wrapper: csl_wrapper.ModuleOp,
) -> tuple[StringAttr, FloatAttr]:
    """The wrapper's boundary condition, defaulting to Dirichlet-zero."""
    kind = wrapper.attributes.get("boundary")
    value = wrapper.attributes.get("boundary_value")
    if not isinstance(kind, StringAttr):
        kind = StringAttr("dirichlet")
    if not isinstance(value, FloatAttr):
        value = FloatAttr(0.0)
    return kind, value


class LowerCslWrapperPass(ModulePass):
    name = "lower-csl-wrapper"

    def apply(self, module: Operation) -> None:
        assert isinstance(module, ModuleOp)
        for wrapper in list(module.walk_type(csl_wrapper.ModuleOp)):
            assert isinstance(wrapper, csl_wrapper.ModuleOp)
            layout, program = self._lower_wrapper(wrapper)
            block = wrapper.parent
            assert block is not None
            block.insert_op_before(layout, wrapper)
            block.insert_op_before(program, wrapper)
            wrapper.regions.clear()
            wrapper.erase()

    # ------------------------------------------------------------------ #

    def _lower_wrapper(
        self, wrapper: csl_wrapper.ModuleOp
    ) -> tuple[csl.CslModuleOp, csl.CslModuleOp]:
        program_name = wrapper.program_name
        layout = self._build_layout_module(wrapper, program_name)
        program = self._build_program_module(wrapper, program_name)
        return layout, program

    def _build_layout_module(
        self, wrapper: csl_wrapper.ModuleOp, program_name: str
    ) -> csl.CslModuleOp:
        ops: list[Operation] = []
        memcpy_params = csl.ImportModuleOp(
            "<memcpy/get_params>",
            {"width": IntAttr(wrapper.width), "height": IntAttr(wrapper.height)},
        )
        routes = csl.ImportModuleOp("routes.csl", {"pattern": IntAttr(1)})
        ops.extend([memcpy_params, routes])
        ops.append(csl.SetRectangleOp(wrapper.width, wrapper.height))

        tile_params: dict[str, IntAttr] = {
            param.key: IntAttr(param.value if param.value is not None else 0)
            for param in wrapper.params
        }
        tile_params["width"] = IntAttr(wrapper.width)
        tile_params["height"] = IntAttr(wrapper.height)
        tile_params["target"] = StringAttr(wrapper.target)
        ops.append(csl.SetTileCodeOp(f"{program_name}.csl", tile_params))

        layout = csl.CslModuleOp(
            csl.ModuleKind.LAYOUT, f"{program_name}_layout", ops
        )
        layout.attributes["width"] = IntAttr(wrapper.width)
        layout.attributes["height"] = IntAttr(wrapper.height)
        layout.attributes["target"] = StringAttr(wrapper.target)
        boundary_kind, boundary_value = _boundary_attrs(wrapper)
        layout.attributes["boundary"] = boundary_kind
        layout.attributes["boundary_value"] = boundary_value
        return layout

    def _build_program_module(
        self, wrapper: csl_wrapper.ModuleOp, program_name: str
    ) -> csl.CslModuleOp:
        ops: list[Operation] = []
        for param in wrapper.params:
            param_op = csl.ParamOp(param.key, i16, param.value)
            ops.append(param_op)
        boundary_kind, boundary_value = _boundary_attrs(wrapper)
        memcpy = csl.ImportModuleOp("<memcpy/memcpy>", {})
        comms_fields: dict[str, Attribute] = {
            "pattern": IntAttr(wrapper.param_value("pattern") or 1),
            "chunkSize": IntAttr(wrapper.param_value("chunk_size") or 1),
            "boundary": boundary_kind,
        }
        if boundary_kind.data == "dirichlet":
            comms_fields["boundaryValue"] = boundary_value
        comms = csl.ImportModuleOp("stencil_comms.csl", comms_fields)
        ops.extend([memcpy, comms])

        program_block = wrapper.program_region.block
        for op in list(program_block.ops):
            op.detach()
            ops.append(op)

        entry = wrapper.attributes.get("entry")
        entry_name = entry.data if isinstance(entry, StringAttr) else "f_main"
        ops.append(csl.ExportOp(entry_name, kind="fn"))
        ops.append(csl.RpcOp(memcpy.result))

        program = csl.CslModuleOp(csl.ModuleKind.PROGRAM, program_name, ops)
        for key in ("timesteps",):
            if key in wrapper.attributes:
                program.attributes[key] = wrapper.attributes[key]
        program.attributes["width"] = IntAttr(wrapper.width)
        program.attributes["height"] = IntAttr(wrapper.height)
        program.attributes["target"] = StringAttr(wrapper.target)
        program.attributes["boundary"] = boundary_kind
        program.attributes["boundary_value"] = boundary_value
        return program
