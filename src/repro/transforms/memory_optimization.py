"""Buffer-reuse optimisations for the bufferized csl-stencil program.

Two cleanups run after :class:`~repro.transforms.arith_to_linalg.ArithToLinalgPass`:

* *in-place accumulation* — a linalg op whose first input is dead after the
  op reuses that input buffer as its destination instead of a fresh
  allocation (Listing 5 of the paper: ``linalg.add ins(%acc, %d0) outs(%acc)``);
* *copy forwarding* — ``memref.copy`` out of a temporary that is written by a
  single linalg op retargets that op to write the copy's destination
  directly.

Together they are what makes the generated code "more memory efficient,
allowing communication in a single chunk where the hand-written version uses
two" (Section 6.1).
"""

from __future__ import annotations

from repro.dialects import linalg, memref
from repro.dialects.csl_stencil import ApplyOp, YieldOp
from repro.ir import (
    ModulePass,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
)
from repro.ir.operation import Block, Operation
from repro.ir.value import BlockArgument, SSAValue


_LINALG_DPS_OPS = (
    linalg.AddOp,
    linalg.SubOp,
    linalg.MulOp,
    linalg.DivOp,
    linalg.ScaleOp,
    linalg.FmaOp,
)


def _writes_of(value: SSAValue) -> list[Operation]:
    """Operations that write into the given buffer."""
    writers = []
    for user in value.users():
        if isinstance(user, _LINALG_DPS_OPS) and user.output is value:
            writers.append(user)
        elif isinstance(user, memref.CopyOp) and user.dest is value:
            writers.append(user)
    return writers


def _position(op: Operation) -> int:
    assert op.parent is not None
    return op.parent.index_of(op)


def _is_reusable_buffer(value: SSAValue, block: Block) -> bool:
    """A buffer we may overwrite: a local temporary allocation or the
    accumulator block argument (never a subview of a shared/global buffer)."""
    owner = value.owner()
    if isinstance(owner, memref.AllocOp):
        return True
    if isinstance(value, BlockArgument) and value.block is block:
        # The accumulator is the last receive-region arg / second compute arg.
        return value.index == len(block.args) - 1 or value.index == 1
    return False


class InPlaceAccumulation(RewritePattern):
    """Reuse a dead input buffer as the destination of a linalg op."""

    @op_rewrite_pattern
    def match_and_rewrite(
        self,
        op: linalg.AddOp
        | linalg.SubOp
        | linalg.MulOp
        | linalg.DivOp
        | linalg.ScaleOp
        | linalg.FmaOp,
        rewriter: PatternRewriter,
    ) -> None:
        dest = op.output
        dest_owner = dest.owner()
        if not isinstance(dest_owner, memref.AllocOp):
            return
        # The allocation must be used only as this op's destination (plus any
        # later reads, which we preserve by renaming).
        candidate = op.operands[0]
        block = op.parent
        if block is None:
            return
        if not _is_reusable_buffer(candidate, block):
            return
        if candidate.type != dest.type:
            return
        # The candidate must not be read again after this op.
        my_position = _position(op)
        for use in candidate.uses:
            user = use.operation
            if user is op or user.parent is not block:
                continue
            if _position(user) > my_position:
                return

        # Rewrite: drop the alloc, write into the candidate buffer.
        rewriter.replace_all_uses_with(dest, candidate)
        if not dest_owner.results[0].has_uses:
            rewriter.erase_op(dest_owner)


class ForwardCopyToDestination(RewritePattern):
    """Retarget the single writer of a temporary to the copy's destination."""

    @op_rewrite_pattern
    def match_and_rewrite(self, op: memref.CopyOp, rewriter: PatternRewriter) -> None:
        source = op.source
        source_owner = source.owner()
        if not isinstance(source_owner, memref.AllocOp):
            return
        writers = _writes_of(source)
        if len(writers) != 1 or writers[0] is op:
            return
        writer = writers[0]
        # All uses of the temporary must be the writer (ins/outs) or this copy.
        for use in source.uses:
            if use.operation not in (writer, op):
                return
        # Retarget the writer's destination and remove the copy + alloc.
        if not isinstance(writer, _LINALG_DPS_OPS):
            return
        destination = op.dest
        if not self._destination_available_before(destination, writer):
            return
        rewriter.set_operand(writer, len(writer.operands) - 1, destination)
        rewriter.erase_matched_op()
        # Any remaining read of the temp becomes a read of the destination.
        rewriter.replace_all_uses_with(source, destination)
        if not source_owner.results[0].has_uses:
            rewriter.erase_op(source_owner)


    @staticmethod
    def _destination_available_before(destination: SSAValue, writer: Operation) -> bool:
        """Ensure the destination value dominates the writer.

        If the destination is produced by a view op appearing after the
        writer in the same block (the common case: the subview of the
        accumulator slice is emitted next to the copy), the view is hoisted
        before the writer — provided its own operands are block arguments or
        are themselves defined before the writer."""
        if isinstance(destination, BlockArgument):
            return True
        producer = destination.owner()
        if not isinstance(producer, Operation) or producer.parent is None:
            return False
        block = producer.parent
        if writer.parent is not block:
            return False
        if block.index_of(producer) < block.index_of(writer):
            return True
        # Try to hoist the producer (e.g. a memref.subview) before the writer.
        writer_index = block.index_of(writer)
        for operand in producer.operands:
            if isinstance(operand, BlockArgument):
                continue
            operand_owner = operand.owner()
            if (
                not isinstance(operand_owner, Operation)
                or operand_owner.parent is not block
                or block.index_of(operand_owner) >= writer_index
            ):
                return False
        producer.detach()
        block.insert_op_before(producer, writer)
        return True


class RemoveSelfCopy(RewritePattern):
    """``memref.copy(%x, %x)`` does nothing."""

    @op_rewrite_pattern
    def match_and_rewrite(self, op: memref.CopyOp, rewriter: PatternRewriter) -> None:
        if op.source is op.dest:
            rewriter.erase_matched_op()


class RemoveDeadAlloc(RewritePattern):
    @op_rewrite_pattern
    def match_and_rewrite(self, op: memref.AllocOp, rewriter: PatternRewriter) -> None:
        if not op.result.has_uses:
            rewriter.erase_matched_op()


class MemoryOptimizationPass(ModulePass):
    """In-place accumulation and copy forwarding (buffer reuse)."""

    name = "csl-stencil-memory-optimization"

    def apply(self, module: Operation) -> None:
        apply_patterns_greedily(
            module,
            [
                ForwardCopyToDestination(),
                InPlaceAccumulation(),
                RemoveSelfCopy(),
                RemoveDeadAlloc(),
            ],
        )
