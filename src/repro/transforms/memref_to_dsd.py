"""Group 5 (b): lower memref buffer manipulation to DSDs (Section 5.5).

DSDs (Data Structure Descriptors) are affine iterators over buffers with
native hardware support.  This pass:

* converts ``memref.global`` declarations into ``csl.zeros`` buffer
  definitions (zero-initialised PE-local arrays);
* converts ``memref.get_global`` and ``memref.subview`` into
  ``csl.get_mem_dsd`` / ``csl.increment_dsd_offset`` DSD definitions used by
  the DSD compute builtins and by the communication library.
"""

from __future__ import annotations

from repro.dialects import csl, memref
from repro.ir import (
    ModulePass,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
)
from repro.ir.attributes import StringAttr
from repro.ir.operation import Operation
from repro.ir.types import MemRefType


class GlobalToZeros(RewritePattern):
    """Module-scope buffers become zero-initialised CSL arrays."""

    @op_rewrite_pattern
    def match_and_rewrite(self, op: memref.GlobalOp, rewriter: PatternRewriter) -> None:
        zeros = csl.ZerosOp(op.buffer_type, sym_name=op.sym_name)
        rewriter.replace_matched_op(zeros, new_results=[])


class GetGlobalToDsd(RewritePattern):
    """A reference to a module buffer becomes a full-length mem1d DSD."""

    @op_rewrite_pattern
    def match_and_rewrite(
        self, op: memref.GetGlobalOp, rewriter: PatternRewriter
    ) -> None:
        buffer_type = op.result.type
        assert isinstance(buffer_type, MemRefType)
        dsd = csl.GetMemDsdOp(op.result, buffer_type.element_count())
        # The DSD references the buffer *by symbol*: the printer and the
        # interpreter resolve it against the csl.zeros declaration.
        dsd.attributes["buffer"] = StringAttr(op.global_name)
        dsd.drop_all_operands()
        rewriter.replace_matched_op(dsd)


class SubviewToDsd(RewritePattern):
    """A subview becomes a DSD with an adjusted offset and length."""

    @op_rewrite_pattern
    def match_and_rewrite(self, op: memref.SubviewOp, rewriter: PatternRewriter) -> None:
        source = op.source
        owner = source.owner()
        if isinstance(owner, csl.GetMemDsdOp):
            base_name = owner.attributes.get("buffer")
            base_offset = owner.offset
        else:
            # Subview of a subview: chain onto the source DSD.
            base_name = None
            base_offset = 0

        if op.has_dynamic_offset:
            dsd = csl.GetMemDsdOp(source, op.size, 0, op.stride)
            if base_name is not None:
                dsd.attributes["buffer"] = base_name
                dsd.drop_all_operands()
            shift = csl.IncrementDsdOffsetOp(dsd.result, base_offset)
            shift.add_operand(op.dynamic_offset)
            rewriter.replace_matched_op([dsd, shift], new_results=[shift.result])
            return

        dsd = csl.GetMemDsdOp(source, op.size, base_offset + int(op.offset), op.stride)
        if base_name is not None:
            dsd.attributes["buffer"] = base_name
            dsd.drop_all_operands()
        rewriter.replace_matched_op(dsd)


class MemrefToDsdPass(ModulePass):
    name = "lower-memref-to-dsd"

    def apply(self, module: Operation) -> None:
        apply_patterns_greedily(
            module, [GlobalToZeros(), SubviewToDsd(), GetGlobalToDsd()]
        )
