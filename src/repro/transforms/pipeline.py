"""The full lowering pipeline (paper Figure 3).

``compile_stencil_program`` drives a :class:`repro.frontends.common.StencilProgram`
through every stage described in Section 5 and returns the final csl-ir
module, from which CSL code is printed (:mod:`repro.backend.csl_printer`) or
an executable PE program is built (:mod:`repro.backend.executable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.dialects.builtin import ModuleOp
from repro.frontends.common import (
    BoundaryCondition,
    StencilProgram,
    build_stencil_module,
)
from repro.ir import PassManager, PipelineStatistics
from repro.ir.operation import Operation
from repro.transforms.arith_to_linalg import ArithToLinalgPass
from repro.transforms.arith_to_varith import ArithToVarithPass
from repro.transforms.bufferize import BufferizePass
from repro.transforms.canonicalize import CanonicalizePass
from repro.transforms.csl_stencil_to_tasks import CslStencilToTasksPass
from repro.transforms.csl_wrapper_hoist import CslWrapperHoistPass
from repro.transforms.distribute_stencil import DistributeStencilPass
from repro.transforms.linalg_fuse_multiply_add import LinalgFuseMultiplyAddPass
from repro.transforms.linalg_to_csl import LinalgToCslPass
from repro.transforms.lower_csl_wrapper import LowerCslWrapperPass
from repro.transforms.memory_optimization import MemoryOptimizationPass
from repro.transforms.memref_to_dsd import MemrefToDsdPass
from repro.transforms.scf_to_task_graph import ScfToTaskGraphPass
from repro.transforms.stencil_inlining import StencilInliningPass
from repro.transforms.stencil_to_csl_stencil import StencilToCslStencilPass
from repro.transforms.tensorize_z import TensorizeZDimensionPass
from repro.transforms.varith_fuse_repeated_operands import (
    VarithFuseRepeatedOperandsPass,
)

#: Version stamp of the lowering pipeline, mixed into artifact fingerprints
#: (:mod:`repro.service.fingerprint`).  Bump it whenever a pass changes the
#: CSL it emits for an unchanged input program, so stale cached artifacts are
#: never served after a compiler change.
PIPELINE_VERSION = 3


@dataclass
class PipelineOptions:
    """Tunable knobs of the lowering pipeline."""

    #: PE grid extent the stencil is decomposed over (x then y).
    grid_width: int = 1
    grid_height: int = 1
    #: requested number of communication chunks per exchange.
    num_chunks: int = 2
    #: "wse2" or "wse3" — selects the communications library variant.
    target: str = "wse2"
    #: run the stencil-inlining optimisation (Section 5.7).
    enable_stencil_inlining: bool = True
    #: run varith-fuse-repeated-operands (Section 5.7).
    enable_varith_fusion: bool = True
    #: run the fmacs fusion (Section 5.7).
    enable_fmac_fusion: bool = True
    #: run in-place accumulation / copy forwarding (memory reuse).
    enable_memory_optimization: bool = True
    #: boundary condition compiled into the program image.  ``None`` (the
    #: default) inherits the :class:`StencilProgram`'s own boundary; a
    #: :class:`BoundaryCondition` or compact spec string ("periodic",
    #: "reflect", "dirichlet:1.5") overrides it.
    boundary: BoundaryCondition | str | None = None
    #: verify the module after every pass (slower, useful in tests).
    verify_each: bool = True

    _VALID_TARGETS = ("wse2", "wse3")

    def __post_init__(self) -> None:
        if self.boundary is not None and not isinstance(
            self.boundary, BoundaryCondition
        ):
            self.boundary = BoundaryCondition.parse(self.boundary)
        if self.target not in self._VALID_TARGETS:
            raise ValueError(
                f"invalid target {self.target!r}: expected one of "
                f"{', '.join(repr(t) for t in self._VALID_TARGETS)}"
            )
        if self.grid_width < 1 or self.grid_height < 1:
            raise ValueError(
                "PE grid dimensions must be positive, got "
                f"grid_width={self.grid_width}, grid_height={self.grid_height}"
            )
        if self.num_chunks < 1:
            raise ValueError(
                f"num_chunks must be at least 1, got {self.num_chunks}"
            )

    @classmethod
    def default_for(cls, program: StencilProgram) -> "PipelineOptions":
        """The default options for a program: one PE per interior (x, y)
        cell.  The single source of this rule — the compilation service
        derives fingerprints from it, so it must match what a plain
        ``compile_stencil_program(program)`` call would use."""
        nx, ny, _ = program.interior_shape
        return cls(grid_width=nx, grid_height=ny)

    def canonical(self) -> dict:
        """Process-stable, JSON-serialisable form of every artifact-relevant
        knob.

        ``verify_each`` is deliberately excluded: it only toggles
        verification between passes and cannot change the emitted CSL, so two
        compiles differing only in it share one cached artifact.  ``boundary``
        is encoded as its compact spec, ``None`` meaning "inherit from the
        program" (whose own canonical form carries its boundary);
        :func:`repro.service.fingerprint.fingerprint_payload` normalises an
        explicit override equal to the program's boundary back to ``None``
        so equivalent spellings share one fingerprint.
        """
        return {
            "grid_width": self.grid_width,
            "grid_height": self.grid_height,
            "num_chunks": self.num_chunks,
            "target": self.target,
            "enable_stencil_inlining": self.enable_stencil_inlining,
            "enable_varith_fusion": self.enable_varith_fusion,
            "enable_fmac_fusion": self.enable_fmac_fusion,
            "enable_memory_optimization": self.enable_memory_optimization,
            "boundary": self.boundary.spec if self.boundary is not None else None,
        }


@lru_cache(maxsize=None)
def _pass_description_for(canonical_key: tuple) -> str:
    options = PipelineOptions(**dict(canonical_key))
    return build_pass_pipeline(options).pipeline_description


def pipeline_stamp(options: PipelineOptions) -> dict:
    """The pipeline half of an artifact fingerprint: the version stamp plus
    the exact pass sequence the options select (so toggling an optimisation
    flag, which edits the pass list, also changes the stamp).

    Fingerprints are computed on every service request including warm cache
    hits, so the pass description is memoised per option set rather than
    instantiating all 17 pass objects each time.
    """
    return {
        "version": PIPELINE_VERSION,
        "passes": _pass_description_for(tuple(sorted(options.canonical().items()))),
    }


def build_pass_pipeline(options: PipelineOptions) -> PassManager:
    """The pass list of Figure 3, in order."""
    manager = PassManager(verify_each=options.verify_each)

    # Optimisations on the mathematical form.
    if options.enable_stencil_inlining:
        manager.add(StencilInliningPass())
    manager.add(ArithToVarithPass())
    if options.enable_varith_fusion:
        manager.add(VarithFuseRepeatedOperandsPass())
    manager.add(CanonicalizePass())

    # Group 1: decomposition and data dependencies.
    manager.add(
        DistributeStencilPass(
            topology_x=options.grid_width, topology_y=options.grid_height
        )
    )
    manager.add(TensorizeZDimensionPass())

    # Group 2: placement and communication.
    manager.add(StencilToCslStencilPass(num_chunks=options.num_chunks))
    boundary = (
        options.boundary
        if options.boundary is not None
        else BoundaryCondition.dirichlet()
    )
    manager.add(
        CslWrapperHoistPass(
            width=options.grid_width,
            height=options.grid_height,
            target=options.target,
            boundary_kind=boundary.kind,
            boundary_value=boundary.value,
        )
    )

    # Group 3: memory realisation within a PE.
    manager.add(BufferizePass())
    manager.add(ArithToLinalgPass())
    if options.enable_memory_optimization:
        manager.add(MemoryOptimizationPass())
    if options.enable_fmac_fusion:
        manager.add(LinalgFuseMultiplyAddPass())

    # Group 4: actor execution model.
    manager.add(ScfToTaskGraphPass())
    manager.add(CslStencilToTasksPass())

    # Group 5: lowering to csl-ir.
    manager.add(LinalgToCslPass())
    manager.add(MemrefToDsdPass())
    manager.add(LowerCslWrapperPass())
    return manager


@dataclass
class CompilationResult:
    """The artefacts of one pipeline run."""

    module: ModuleOp
    options: PipelineOptions
    program: StencilProgram
    #: per-pass wall time / rewrite counts / op deltas of the pipeline run.
    statistics: PipelineStatistics | None = None

    @property
    def csl_modules(self):
        from repro.dialects import csl

        return [op for op in self.module.ops if isinstance(op, csl.CslModuleOp)]

    @property
    def program_module(self):
        from repro.dialects import csl

        for op in self.csl_modules:
            if op.kind == csl.ModuleKind.PROGRAM:
                return op
        raise LookupError("compilation produced no program module")

    @property
    def layout_module(self):
        from repro.dialects import csl

        for op in self.csl_modules:
            if op.kind == csl.ModuleKind.LAYOUT:
                return op
        raise LookupError("compilation produced no layout module")


def compile_stencil_program(
    program: StencilProgram, options: PipelineOptions | None = None
) -> CompilationResult:
    """Run the full pipeline: stencil program description -> csl-ir module.

    When the options leave ``boundary`` unset, the program's own boundary
    condition (declared through the front-end) is compiled in.
    """
    if options is None:
        options = PipelineOptions.default_for(program)
    if options.boundary is None:
        options = replace(options, boundary=program.boundary)
    module = build_stencil_module(program)
    module.verify()
    pipeline = build_pass_pipeline(options)
    statistics = pipeline.run(module)
    return CompilationResult(
        module=module, options=options, program=program, statistics=statistics
    )


def compile_module(module: ModuleOp, options: PipelineOptions) -> ModuleOp:
    """Run the full pipeline over an already-built stencil-dialect module."""
    pipeline = build_pass_pipeline(options)
    pipeline.run(module)
    return module
