"""Group 4 (a): convert top-level control flow into a task graph (Section 5.4).

CSL has no way to re-synchronise within a code block, so a time-step loop
surrounding asynchronous exchanges cannot remain a loop: it must be recast as
tasks driven by callbacks (Figure 1 of the paper).  This pass converts the
kernel function's ``scf.for`` loop into the canonical CSL control skeleton:

* ``f_main``      — host-callable entry, activates the loop-condition task;
* ``for_cond0``   — local task: if ``step < timesteps`` call the loop body,
  otherwise call ``for_post0``;
* ``loop_body0``  — a function holding the loop body (split further into
  communicate/compute actors by ``csl-stencil-to-tasks``);
* ``for_inc0``    — increments ``step`` and re-activates ``for_cond0``;
* ``for_post0``   — returns control to the host.

Stencil fields (the kernel's arguments) become module-scope buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dialects import arith, csl, csl_wrapper, func, memref, scf, stencil
from repro.ir import Block, ModulePass, Region
from repro.ir.attributes import IntAttr, StringAttr
from repro.ir.exceptions import PassFailedException
from repro.ir.operation import Operation
from repro.ir.types import MemRefType, TensorType, f32, i16, i32
from repro.ir.value import SSAValue


#: first task id handed out to compiler-generated local tasks.  Lower ids are
#: reserved for the runtime communications library's internal tasks.
FIRST_LOCAL_TASK_ID = 8


@dataclass
class ScfToTaskGraphPass(ModulePass):
    """Lower the kernel function's time-step loop to a control-flow task graph."""

    name = "scf-to-task-graph"

    def apply(self, module: Operation) -> None:
        for wrapper in list(module.walk_type(csl_wrapper.ModuleOp)):
            assert isinstance(wrapper, csl_wrapper.ModuleOp)
            self._rewrite_wrapper(wrapper)

    # ------------------------------------------------------------------ #

    def _rewrite_wrapper(self, wrapper: csl_wrapper.ModuleOp) -> None:
        program_block = wrapper.program_region.block
        kernels = [op for op in program_block.ops if isinstance(op, func.FuncOp)]
        if not kernels:
            return
        kernel = kernels[0]

        loops = [op for op in kernel.body.block.ops if isinstance(op, scf.ForOp)]
        if len(loops) != 1:
            raise PassFailedException(
                "scf-to-task-graph expects exactly one top-level scf.for loop, "
                f"found {len(loops)}"
            )
        loop = loops[0]
        if loop.iter_args:
            raise PassFailedException(
                "scf-to-task-graph does not support loop-carried values"
            )
        timesteps = self._constant_value(loop.upper_bound)

        z_dim = wrapper.param_value("z_dim") or 1

        # Fields (kernel arguments) become module-scope buffers.
        field_globals: list[memref.GlobalOp] = []
        getters: dict[int, memref.GetGlobalOp] = {}
        for index, arg in enumerate(kernel.args):
            name = arg.name_hint or f"field_{index}"
            buffer_type = MemRefType([z_dim], f32)
            global_op = memref.GlobalOp(name, buffer_type)
            field_globals.append(global_op)
            getters[index] = memref.GetGlobalOp(name, buffer_type)

        # --- control skeleton ------------------------------------------------
        cond_task_id = FIRST_LOCAL_TASK_ID
        step_var = csl.VariableOp("step", i32, 0)

        main_fn = csl.FuncOp("f_main")
        main_fn.body.block.add_ops(
            [csl.ActivateOp("for_cond0", cond_task_id), csl.ReturnOp()]
        )

        cond_task = csl.TaskOp("for_cond0", csl.TaskKind.LOCAL, cond_task_id)
        load_step = csl.LoadVarOp("step", i32)
        limit = csl.ConstantOp(timesteps, i32)
        compare = arith.CmpiOp("slt", load_step.result, limit.result)
        then_region = Region([Block(ops=[csl.CallOp("loop_body0"), scf.YieldOp()])])
        else_region = Region([Block(ops=[csl.CallOp("for_post0"), scf.YieldOp()])])
        branch = scf.IfOp(compare.result, [], then_region, else_region)
        cond_task.body.block.add_ops([load_step, limit, compare, branch, csl.ReturnOp()])

        body_fn = csl.FuncOp("loop_body0")
        body_block = body_fn.body.block
        # Move the loop body into the function, dropping its terminator.
        for op in list(loop.body.block.ops):
            if isinstance(op, scf.YieldOp):
                continue
            op.detach()
            body_block.add_op(op)
        body_block.add_ops([csl.CallOp("for_inc0"), csl.ReturnOp()])

        # Replace references to the induction variable (rare in these kernels)
        # and to the field arguments.
        if loop.induction_variable.has_uses:
            step_read = csl.LoadVarOp("step", i32)
            body_block.insert_op(step_read, 0)
            loop.induction_variable.replace_all_uses_with(step_read.result)
        for index, arg in enumerate(kernel.args):
            if arg.has_uses:
                getter = getters[index]
                body_block.insert_op(getter, 0)
                arg.replace_all_uses_with(getter.result)

        inc_fn = csl.FuncOp("for_inc0")
        inc_load = csl.LoadVarOp("step", i32)
        one = csl.ConstantOp(1, i32)
        inc = arith.AddiOp(inc_load.result, one.result)
        inc_fn.body.block.add_ops(
            [
                inc_load,
                one,
                inc,
                csl.StoreVarOp("step", inc.result),
                csl.ActivateOp("for_cond0", cond_task_id),
                csl.ReturnOp(),
            ]
        )

        post_fn = csl.FuncOp("for_post0")
        post_fn.body.block.add_ops([csl.UnblockCmdStreamOp(), csl.ReturnOp()])

        # --- splice into the program region ---------------------------------
        kernel.detach()
        kernel.drop_all_operands()
        new_ops: list[Operation] = [
            *field_globals,
            step_var,
            main_fn,
            cond_task,
            body_fn,
            inc_fn,
            post_fn,
        ]
        for op in new_ops:
            program_block.add_op(op)

        wrapper.attributes["timesteps"] = IntAttr(timesteps)
        wrapper.attributes["entry"] = StringAttr("f_main")

    # ------------------------------------------------------------------ #

    @staticmethod
    def _constant_value(value: SSAValue) -> int:
        owner = value.owner()
        if not isinstance(owner, arith.ConstantOp):
            raise PassFailedException(
                "scf-to-task-graph requires the loop bound to be a constant"
            )
        return int(owner.value)
