"""Stencil inlining (paper Section 5.7).

Merges consecutive ``stencil.apply`` operations into a single fused kernel
when the producer's result is only used by the consumer and the consumer only
reads the produced value at offset zero in the decomposed plane.  This removes
the overhead of separate kernel launches (and, on the WSE, of separate
communication phases) between stencils that are consecutive; for UVKBE it
merges all applies into one.
"""

from __future__ import annotations

from repro.dialects import stencil
from repro.ir import (
    ModulePass,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
)
from repro.ir.operation import Block, Operation, Region
from repro.ir.value import SSAValue


def _single_apply_user(value: SSAValue) -> stencil.ApplyOp | None:
    """The unique stencil.apply consuming ``value``, or None."""
    users = list(value.users())
    if len(users) != 1 or not isinstance(users[0], stencil.ApplyOp):
        return None
    return users[0]


class InlineProducerIntoConsumer(RewritePattern):
    """Fuse a producer apply into its single consumer apply.

    The producer's body is cloned into the consumer at every access offset the
    consumer uses, with access offsets composed.  This mirrors the xDSL
    stencil-inlining behaviour of rerouting all outputs through the fused
    kernel.
    """

    @op_rewrite_pattern
    def match_and_rewrite(self, op: stencil.ApplyOp, rewriter: PatternRewriter) -> None:
        producer = op
        if len(producer.results) != 1:
            return
        consumer = _single_apply_user(producer.results[0])
        if consumer is None:
            return
        # Find which consumer operand corresponds to the producer result.
        try:
            operand_index = list(consumer.operands).index(producer.results[0])
        except ValueError:
            return

        consumer_block = consumer.body.block
        fused_arg = consumer_block.args[operand_index]

        # Inline the producer body at each access of the fused argument.
        accesses = [
            access
            for access in consumer.walk_type(stencil.AccessOp)
            if isinstance(access, stencil.AccessOp) and access.temp is fused_arg
        ]
        for access in accesses:
            replacement = self._clone_producer_at_offset(
                producer, consumer, access, rewriter
            )
            rewriter.replace_op(access, [], new_results=[replacement])

        # Rebuild the consumer with the producer's operands appended and the
        # fused operand removed.
        new_operands = [
            operand for i, operand in enumerate(consumer.operands) if i != operand_index
        ] + list(producer.operands)

        old_block = consumer_block
        new_block = Block(arg_types=[value.type for value in new_operands])
        # Map old block args (minus the fused one) onto the new args.
        kept_old_args = [
            arg for i, arg in enumerate(old_block.args) if i != operand_index
        ]
        for old_arg, new_arg in zip(kept_old_args, new_block.args):
            old_arg.replace_all_uses_with(new_arg)
        # Map producer block args (used by the inlined body clones) onto the
        # appended operands' args.
        producer_args = producer.body.block.args
        appended_args = new_block.args[len(kept_old_args):]
        for old_arg, new_arg in zip(producer_args, appended_args):
            old_arg.replace_all_uses_with(new_arg)
        for inner in list(old_block.ops):
            inner.detach()
            new_block.add_op(inner)

        fused = stencil.ApplyOp(
            operands=new_operands,
            result_types=[result.type for result in consumer.results],
            body=Region([new_block]),
        )
        rewriter.replace_op(consumer, fused)
        if not producer.results[0].has_uses:
            rewriter.erase_op(producer)

    def _clone_producer_at_offset(
        self,
        producer: stencil.ApplyOp,
        consumer: stencil.ApplyOp,
        access: stencil.AccessOp,
        rewriter: PatternRewriter,
    ) -> SSAValue:
        """Clone the producer body before ``access``, composing offsets."""
        offset = access.offset
        value_map: dict[SSAValue, SSAValue] = {}
        # Producer block args keep referring to producer operands for now;
        # they are remapped when the consumer is rebuilt.
        for arg in producer.body.block.args:
            value_map[arg] = arg

        result_value: SSAValue | None = None
        for inner in producer.body.block.ops:
            if isinstance(inner, stencil.ReturnOp):
                result_value = value_map.get(inner.operands[0], inner.operands[0])
                break
            clone = inner._clone_into(value_map)
            if isinstance(clone, stencil.AccessOp):
                composed = tuple(
                    a + b for a, b in zip(clone.offset, offset)
                )
                from repro.ir.attributes import DenseArrayAttr

                clone.attributes["offset"] = DenseArrayAttr(composed)
            rewriter.insert_op_before(clone, access)
        assert result_value is not None, "producer apply has no stencil.return"
        return result_value


class StencilInliningPass(ModulePass):
    name = "stencil-inlining"

    def apply(self, module: Operation) -> None:
        apply_patterns_greedily(module, InlineProducerIntoConsumer())
