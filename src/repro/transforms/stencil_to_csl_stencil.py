"""Group 2 (a): stencil-to-csl-stencil (paper Section 5.2, Listing 4).

Replaces ``dmp.swap`` + ``stencil.apply`` pairs by ``csl_stencil.apply``
operations that make chunked communication explicit:

* the *receive region* is executed once per incoming chunk and reduces the
  remote contributions of that chunk into an accumulator slice;
* the *compute region* runs once after the exchange and combines the
  accumulator with locally-held columns;
* any additional communicated operands (e.g. the second field of UVKBE) are
  materialised through ``csl_stencil.prefetch``.

The pass expects apply bodies in varith form (run ``convert-arith-to-varith``
first) and a z-tensorized grid (run ``tensorize-z-dimension`` first).  The
supported body shape is the star-stencil reduction form the paper targets:
remote contributions combine additively at a single reduction root, each
optionally scaled by a constant (which is then promoted into the receive
region — the coefficient-promotion optimisation of Section 5.7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dialects import arith, csl_stencil, dmp, stencil, tensor, varith
from repro.ir import ModulePass
from repro.ir.attributes import DenseArrayAttr, IntAttr
from repro.ir.exceptions import PassFailedException
from repro.ir.operation import Block, Operation, Region
from repro.ir.types import IndexType, TensorType, f32
from repro.ir.value import BlockArgument, SSAValue
from repro.transforms.utils import remote_directions


def _largest_divisor_at_most(value: int, limit: int) -> int:
    """Largest divisor of ``value`` that is <= ``limit`` (at least 1)."""
    for candidate in range(min(limit, value), 0, -1):
        if value % candidate == 0:
            return candidate
    return 1


@dataclass
class StencilToCslStencilPass(ModulePass):
    """Convert distributed stencil applies into chunked csl-stencil applies."""

    #: requested number of communication chunks (clamped to a divisor of z).
    num_chunks: int = 2

    name = "stencil-to-csl-stencil"

    def apply(self, module: Operation) -> None:
        for apply_op in list(module.walk_type(stencil.ApplyOp)):
            assert isinstance(apply_op, stencil.ApplyOp)
            self._rewrite_apply(apply_op)

    # ------------------------------------------------------------------ #

    def _rewrite_apply(self, apply_op: stencil.ApplyOp) -> None:
        z_core_attr = apply_op.attributes.get("z_core")
        if z_core_attr is None:
            raise PassFailedException(
                "stencil-to-csl-stencil requires tensorize-z-dimension to have run"
            )
        assert isinstance(z_core_attr, IntAttr)
        z_core = z_core_attr.value
        z_total = apply_op.attributes["z_total"].value  # type: ignore[union-attr]
        z_halo_lo = apply_op.attributes["z_halo_lo"].value  # type: ignore[union-attr]

        block = apply_op.body.block
        parent_block = apply_op.parent
        assert parent_block is not None

        # Operands fed by a dmp.swap require communication.
        communicated: list[tuple[int, dmp.SwapOp]] = [
            (index, operand.owner())
            for index, operand in enumerate(apply_op.operands)
            if isinstance(operand.owner(), dmp.SwapOp)
        ]

        if communicated:
            primary_index, primary_swap = communicated[0]
            primary_arg = block.args[primary_index]
            directions = self._argument_directions(apply_op, primary_arg)
            communicated_value = primary_swap.input
        else:
            primary_index = 0
            primary_arg = block.args[0]
            directions = ()
            communicated_value = apply_op.operands[0]

        num_chunks = (
            _largest_divisor_at_most(z_core, max(1, self.num_chunks))
            if directions
            else 1
        )
        chunk_size = z_core // num_chunks

        # Prefetch the remaining communicated operands (e.g. UVKBE's 2nd field).
        prefetches: dict[int, csl_stencil.PrefetchOp] = {}
        for index, swap in communicated[1:]:
            arg = block.args[index]
            arg_directions = self._argument_directions(apply_op, arg)
            prefetch = csl_stencil.PrefetchOp(
                swap.input,
                [csl_stencil.ExchangeDeclAttr(d) for d in arg_directions],
                TensorType([max(1, len(arg_directions)) * z_core], f32),
            )
            prefetch.attributes["z_core"] = IntAttr(z_core)
            prefetch.attributes["z_halo_lo"] = IntAttr(z_halo_lo)
            parent_block.insert_op_before(prefetch, apply_op)
            prefetches[index] = prefetch

        accumulator_type = TensorType([z_core], f32)
        acc_init = tensor.EmptyOp(accumulator_type)
        parent_block.insert_op_before(acc_init, apply_op)

        coefficients = self._per_direction_coefficients(
            apply_op, primary_arg, directions
        )
        receive_region = self._build_receive_region(
            directions, chunk_size, accumulator_type, coefficients
        )
        compute_region = self._build_compute_region(
            apply_op, primary_arg, accumulator_type
        )

        extra_operands: list[SSAValue] = []
        extra_indices: list[int] = []
        for index, operand in enumerate(apply_op.operands):
            if index == primary_index and communicated:
                continue
            if index in prefetches:
                extra_operands.append(prefetches[index].result)
            else:
                extra_operands.append(operand)
            extra_indices.append(index)

        swaps = [csl_stencil.ExchangeDeclAttr(d) for d in directions]
        new_apply = csl_stencil.ApplyOp(
            communicated=communicated_value,
            accumulator=acc_init.result,
            extra_operands=extra_operands,
            result_types=[result.type for result in apply_op.results],
            receive_region=receive_region,
            compute_region=compute_region,
            swaps=swaps,
            num_chunks=num_chunks,
        )
        new_apply.attributes["z_total"] = IntAttr(z_total)
        new_apply.attributes["z_core"] = IntAttr(z_core)
        new_apply.attributes["z_halo_lo"] = IntAttr(z_halo_lo)
        new_apply.attributes["chunk_size"] = IntAttr(chunk_size)
        new_apply.attributes["extra_operand_indices"] = DenseArrayAttr(extra_indices)
        new_apply.attributes["primary_operand_index"] = IntAttr(
            primary_index if communicated else 0
        )
        if coefficients:
            ordered = [coefficients.get(d, 1.0) for d in directions]
            new_apply.attributes["coefficients"] = DenseArrayAttr(ordered)

        parent_block.insert_op_before(new_apply, apply_op)
        for old_result, new_result in zip(apply_op.results, new_apply.results):
            old_result.replace_all_uses_with(new_result)
        apply_op.erase()

        for _, swap in communicated:
            if not swap.results[0].has_uses:
                swap.erase()

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _argument_directions(
        apply_op: stencil.ApplyOp, arg: BlockArgument
    ) -> tuple[tuple[int, int], ...]:
        offsets = [
            access.offset
            for access in apply_op.walk_type(stencil.AccessOp)
            if isinstance(access, stencil.AccessOp) and access.temp is arg
        ]
        return remote_directions(offsets)

    @staticmethod
    def _is_remote_primary_access(op: Operation, primary_arg: BlockArgument) -> bool:
        return (
            isinstance(op, stencil.AccessOp)
            and op.temp is primary_arg
            and tuple(op.offset[:2]) != (0, 0)
        )

    def _classify_remote_only(
        self, block: Block, primary_arg: BlockArgument
    ) -> set[int]:
        """Ids of result values computed exclusively from remote accesses of
        the communicated operand (plus constants).

        Only the shapes whose semantics the chunked accumulator reproduces
        exactly are classified: raw remote accesses, constant scalings of
        remote-only values (coefficient promotion) and additive combinations
        of remote-only values.  Multiplying two remote values together is
        rejected — the accumulator cannot express it.
        """
        return set(self._remote_linear_forms(block, primary_arg).keys())

    def _remote_linear_forms(
        self, block: Block, primary_arg: BlockArgument
    ) -> dict[int, dict[tuple[int, int], float]]:
        """For every remote-only value, its linear form over directions.

        A remote-only value is a linear combination
        ``sum_d coefficient[d] * neighbour_column[d]``; the mapping from value
        id to that coefficient dictionary is returned.  The receive region
        reproduces exactly these linear forms when reducing incoming chunks
        into the accumulator.
        """
        forms: dict[int, dict[tuple[int, int], float]] = {}
        for op in block.ops:
            if not op.results:
                continue
            if self._is_remote_primary_access(op, primary_arg):
                assert isinstance(op, stencil.AccessOp)
                direction = tuple(op.offset[:2])
                forms[id(op.results[0])] = {direction: 1.0}
                continue
            if isinstance(op, arith.ConstantOp):
                continue
            if isinstance(op, varith.MulOp):
                remote_operands = [
                    operand for operand in op.operands if id(operand) in forms
                ]
                constant_operands = [
                    operand
                    for operand in op.operands
                    if isinstance(operand.owner(), arith.ConstantOp)
                ]
                if len(remote_operands) >= 2:
                    raise PassFailedException(
                        "stencil-to-csl-stencil: cannot multiply two remote "
                        "contributions together"
                    )
                if (
                    len(remote_operands) == 1
                    and len(constant_operands) == len(op.operands) - 1
                ):
                    factor = 1.0
                    for operand in constant_operands:
                        factor *= float(operand.owner().value)  # type: ignore[union-attr]
                    base = forms[id(remote_operands[0])]
                    forms[id(op.results[0])] = {
                        direction: coefficient * factor
                        for direction, coefficient in base.items()
                    }
                continue
            if isinstance(op, varith.AddOp):
                if op.operands and all(id(operand) in forms for operand in op.operands):
                    merged: dict[tuple[int, int], float] = {}
                    for operand in op.operands:
                        for direction, coefficient in forms[id(operand)].items():
                            merged[direction] = merged.get(direction, 0.0) + coefficient
                    forms[id(op.results[0])] = merged
                continue
        return forms

    def _per_direction_coefficients(
        self,
        apply_op: stencil.ApplyOp,
        primary_arg: BlockArgument,
        directions: tuple[tuple[int, int], ...],
    ) -> dict[tuple[int, int], float]:
        """Constant factor applied to each remote direction's contribution.

        The accumulator receives the sum of the remote-only subtrees consumed
        at the reduction root, so the per-direction factor is the sum of the
        linear-form coefficients of exactly those subtrees (coefficient
        promotion, Section 5.7).  Directions without an explicit factor
        default to 1.
        """
        if not directions:
            return {}
        block = apply_op.body.block
        forms = self._remote_linear_forms(block, primary_arg)
        if not forms:
            return {}

        consumed: dict[tuple[int, int], float] = {}
        seen: set[int] = set()

        def consume(value: SSAValue) -> None:
            if id(value) in seen:
                return
            seen.add(id(value))
            for direction, coefficient in forms[id(value)].items():
                consumed[direction] = consumed.get(direction, 0.0) + coefficient

        for op in block.ops:
            if op.results and id(op.results[0]) in forms:
                continue
            for operand in op.operands:
                if id(operand) in forms:
                    consume(operand)
        return consumed

    # ------------------------------------------------------------------ #
    # Receive region
    # ------------------------------------------------------------------ #

    def _build_receive_region(
        self,
        directions: tuple[tuple[int, int], ...],
        chunk_size: int,
        accumulator_type: TensorType,
        coefficients: dict[tuple[int, int], float],
    ) -> Region:
        """Reduce one chunk of remote data from every direction into the
        accumulator slice at the chunk's offset."""
        chunk_buffer_type = TensorType([max(1, len(directions)) * chunk_size], f32)
        block = Block(arg_types=[chunk_buffer_type, IndexType(), accumulator_type])
        chunk_arg, offset_arg, acc_arg = block.args

        if not directions:
            block.add_op(csl_stencil.YieldOp([acc_arg]))
            return Region([block])

        chunk_type = TensorType([chunk_size], f32)
        chunk_values: list[SSAValue] = []
        for direction in directions:
            access = csl_stencil.AccessOp(chunk_arg, direction, chunk_type)
            block.add_op(access)
            value: SSAValue = access.result
            coefficient = coefficients.get(direction)
            if coefficient is not None and coefficient != 1.0:
                constant = arith.ConstantOp(coefficient, f32)
                scaled = varith.MulOp([value, constant.result], chunk_type)
                block.add_ops([constant, scaled])
                value = scaled.result
            chunk_values.append(value)

        if len(chunk_values) == 1:
            reduced = chunk_values[0]
        else:
            reduce_op = varith.AddOp(chunk_values, chunk_type)
            block.add_op(reduce_op)
            reduced = reduce_op.result

        insert = tensor.InsertSliceOp(reduced, acc_arg, offset_arg, chunk_size)
        block.add_op(insert)
        block.add_op(csl_stencil.YieldOp([insert.result]))
        return Region([block])

    # ------------------------------------------------------------------ #
    # Compute region
    # ------------------------------------------------------------------ #

    def _build_compute_region(
        self,
        apply_op: stencil.ApplyOp,
        primary_arg: BlockArgument,
        accumulator_type: TensorType,
    ) -> Region:
        """Clone the body, substituting the accumulated remote contributions
        of the communicated operand by a single read of the accumulator."""
        old_block = apply_op.body.block
        remote_only = self._classify_remote_only(old_block, primary_arg)

        arg_types = [arg.type for arg in old_block.args] + [accumulator_type]
        block = Block(arg_types=arg_types)
        acc_arg = block.args[-1]
        value_map: dict[SSAValue, SSAValue] = {
            old_arg: new_arg for old_arg, new_arg in zip(old_block.args, block.args)
        }

        acc_substituted = False
        for op in old_block.ops:
            if op.results and id(op.results[0]) in remote_only:
                continue

            if isinstance(op, stencil.ReturnOp):
                yielded: list[SSAValue] = []
                for value in op.operands:
                    if id(value) in remote_only:
                        yielded.append(acc_arg)
                    else:
                        yielded.append(value_map.get(value, value))
                block.add_op(csl_stencil.YieldOp(yielded))
                continue

            if any(
                id(operand) in remote_only for operand in op.operands
            ) and not isinstance(op, varith.AddOp):
                raise PassFailedException(
                    "stencil-to-csl-stencil: remote contributions must combine "
                    "additively at a single reduction root (star-shaped "
                    f"reduction); found them feeding '{op.name}'"
                )

            if isinstance(op, varith.AddOp) and any(
                id(operand) in remote_only for operand in op.operands
            ):
                kept = [
                    value_map.get(operand, operand)
                    for operand in op.operands
                    if id(operand) not in remote_only
                ]
                if acc_substituted:
                    raise PassFailedException(
                        "stencil-to-csl-stencil: found more than one reduction "
                        "root consuming remote data"
                    )
                acc_substituted = True
                new_add = varith.AddOp([acc_arg, *kept], op.results[0].type)
                value_map[op.results[0]] = new_add.result
                block.add_op(new_add)
                continue

            clone = op._clone_into(value_map)
            if isinstance(clone, stencil.AccessOp):
                replacement = csl_stencil.AccessOp(
                    clone.operands[0], tuple(clone.offset[:2]), clone.results[0].type
                )
                if "z_offset" in clone.attributes:
                    replacement.attributes["z_offset"] = clone.attributes["z_offset"]
                value_map[op.results[0]] = replacement.result
                clone.drop_all_operands()
                clone = replacement
            block.add_op(clone)

        self._remove_dead_ops(block)
        return Region([block])

    @staticmethod
    def _remove_dead_ops(block: Block) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(block.ops):
                if isinstance(op, csl_stencil.YieldOp):
                    continue
                if op.results and not any(result.has_uses for result in op.results):
                    op.erase()
                    changed = True
