"""Group 1 (b): tensorize the z dimension (paper Section 5.1, Listing 3).

Transforms the three-dimensional grid of f32 scalars into a two-dimensional
grid of f32 *tensors*: each stencil element becomes a column of z values that
is mapped to one PE.  Arith operations become rank-polymorphic (they now act
on whole columns), access offsets lose their z component (which is recorded
as a ``z_offset`` attribute resolved against PE-local memory), and the apply
records the column geometry (``z_total``, ``z_core``, ``z_halo_lo``) used by
later stages.
"""

from __future__ import annotations

from repro.dialects import arith, dmp, func, stencil, varith
from repro.ir import ModulePass
from repro.ir.attributes import DenseArrayAttr, IntAttr
from repro.ir.exceptions import PassFailedException
from repro.ir.operation import Operation
from repro.ir.types import FunctionType, TensorType, f32
from repro.ir.value import SSAValue


class TensorizeZDimensionPass(ModulePass):
    """Convert rank-3 stencils into rank-2 stencils over z-column tensors."""

    name = "tensorize-z-dimension"

    def apply(self, module: Operation) -> None:
        for func_op in list(module.walk_type(func.FuncOp)):
            assert isinstance(func_op, func.FuncOp)
            self._rewrite_function(func_op)

    # ------------------------------------------------------------------ #

    def _rewrite_function(self, func_op: func.FuncOp) -> None:
        applies = [
            op for op in func_op.walk_type(stencil.ApplyOp)
            if isinstance(op, stencil.ApplyOp) and self._is_rank3(op)
        ]
        if not applies:
            return

        # The xy halo radius is the maximum over all applies in the function,
        # so every field/temp gets a consistent per-PE view.
        xy_radius = max(self._xy_radius(apply_op) for apply_op in applies)

        self._rewrite_block_arg_types(func_op, xy_radius)

        for op in list(func_op.walk()):
            if isinstance(op, stencil.LoadOp):
                self._rewrite_load(op, xy_radius)
            elif isinstance(op, dmp.SwapOp):
                op.results[0].type = op.input.type
            elif isinstance(op, stencil.ApplyOp) and self._is_rank3(op):
                self._rewrite_apply(op, xy_radius)

    @staticmethod
    def _is_rank3(apply_op: stencil.ApplyOp) -> bool:
        result_type = apply_op.results[0].type
        return isinstance(result_type, stencil.TempType) and result_type.rank == 3

    @staticmethod
    def _xy_radius(apply_op: stencil.ApplyOp) -> int:
        radius = 0
        for access in apply_op.walk_type(stencil.AccessOp):
            assert isinstance(access, stencil.AccessOp)
            if len(access.offset) >= 2:
                radius = max(radius, abs(access.offset[0]), abs(access.offset[1]))
        return max(radius, 1)

    # ------------------------------------------------------------------ #

    def _column_type(self, container, xy_radius: int):
        """Per-PE view of a rank-3 stencil container type."""
        z_lb, z_ub = container.bounds[2]
        z_total = z_ub - z_lb
        bounds = [(-xy_radius, xy_radius + 1), (-xy_radius, xy_radius + 1)]
        return type(container)(bounds, TensorType([z_total], f32))

    def _rewrite_block_arg_types(self, func_op: func.FuncOp, xy_radius: int) -> None:
        new_inputs = []
        for arg in func_op.args:
            if isinstance(arg.type, stencil.FieldType) and arg.type.rank == 3:
                arg.type = self._column_type(arg.type, xy_radius)
            new_inputs.append(arg.type)
        func_op.attributes["function_type"] = FunctionType(
            new_inputs, func_op.function_type.outputs
        )

    def _rewrite_load(self, load: stencil.LoadOp, xy_radius: int) -> None:
        result_type = load.results[0].type
        assert isinstance(result_type, stencil.TempType)
        if result_type.rank != 3:
            return
        load.results[0].type = self._column_type(result_type, xy_radius)

    # ------------------------------------------------------------------ #

    def _rewrite_apply(self, apply_op: stencil.ApplyOp, xy_radius: int) -> None:
        result_type = apply_op.results[0].type
        assert isinstance(result_type, stencil.TempType)
        result_z_lb, result_z_ub = result_type.bounds[2]
        z_core = result_z_ub - result_z_lb

        # z geometry is derived from the first operand's original bounds.
        operand_type = apply_op.operands[0].type
        if isinstance(operand_type, (stencil.TempType, stencil.FieldType)):
            if isinstance(operand_type.element_type, TensorType):
                z_total = operand_type.element_type.shape[0]
                input_z_lb = result_z_lb - (z_total - z_core) // 2
            else:
                input_z_lb, input_z_ub = operand_type.bounds[2]
                z_total = input_z_ub - input_z_lb
        else:
            raise PassFailedException("stencil.apply operand is not a stencil type")
        z_halo_lo = result_z_lb - input_z_lb

        column = TensorType([z_core], f32)

        # Retype results.
        for result in apply_op.results:
            result.type = stencil.TempType([(0, 1), (0, 1)], column)

        # Retype block arguments to match the (already rewritten) operand types.
        block = apply_op.body.block
        for arg, operand in zip(block.args, apply_op.operands):
            arg.type = operand.type

        # Rewrite accesses: drop the z component into a z_offset attribute.
        for access in list(apply_op.walk_type(stencil.AccessOp)):
            assert isinstance(access, stencil.AccessOp)
            if len(access.offset) != 3:
                continue
            dx, dy, dz = access.offset
            access.attributes["offset"] = DenseArrayAttr([dx, dy])
            access.attributes["z_offset"] = IntAttr(dz)
            access.results[0].type = column

        # Rank-polymorphic arithmetic: any op consuming a tensor produces one.
        for op in apply_op.walk():
            if isinstance(op, (arith._BinaryOp, varith.AddOp, varith.MulOp)):
                if any(isinstance(operand.type, TensorType) for operand in op.operands):
                    op.results[0].type = column

        apply_op.attributes["z_total"] = IntAttr(z_total)
        apply_op.attributes["z_core"] = IntAttr(z_core)
        apply_op.attributes["z_halo_lo"] = IntAttr(z_halo_lo)
