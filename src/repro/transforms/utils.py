"""Shared helpers for stencil analysis used across multiple passes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.dialects import stencil
from repro.ir.operation import Operation


#: canonical ordering of the four cardinal directions on the PE grid.
CARDINAL_DIRECTIONS: tuple[tuple[int, int], ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))


@dataclass
class StencilShape:
    """Summary of the access pattern of one stencil.apply body."""

    #: all distinct access offsets (full rank as written in the IR).
    offsets: tuple[tuple[int, ...], ...]

    @property
    def rank(self) -> int:
        return len(self.offsets[0]) if self.offsets else 0

    @property
    def radius(self) -> int:
        """The maximum absolute offset component (the star radius)."""
        radius = 0
        for offset in self.offsets:
            for component in offset:
                radius = max(radius, abs(component))
        return radius

    @property
    def xy_radius(self) -> int:
        """Maximum absolute offset in the first two (decomposed) dimensions."""
        radius = 0
        for offset in self.offsets:
            for component in offset[:2]:
                radius = max(radius, abs(component))
        return radius

    def is_star_shaped(self) -> bool:
        """True if every offset lies on a single axis (no diagonals)."""
        for offset in self.offsets:
            if sum(1 for component in offset if component != 0) > 1:
                return False
        return True

    @property
    def num_points(self) -> int:
        return len(self.offsets)

    def remote_offsets(self) -> tuple[tuple[int, ...], ...]:
        """Offsets requiring communication (non-zero in the x/y plane)."""
        return tuple(
            offset for offset in self.offsets if any(c != 0 for c in offset[:2])
        )

    def local_offsets(self) -> tuple[tuple[int, ...], ...]:
        """Offsets resolved from PE-local memory (zero in the x/y plane)."""
        return tuple(
            offset for offset in self.offsets if all(c == 0 for c in offset[:2])
        )


def analyze_apply(apply_op: stencil.ApplyOp) -> StencilShape:
    """Collect the access pattern of a ``stencil.apply`` body."""
    offsets: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    for access in apply_op.walk_type(stencil.AccessOp):
        assert isinstance(access, stencil.AccessOp)
        if access.offset not in seen:
            seen.add(access.offset)
            offsets.append(access.offset)
    return StencilShape(offsets=tuple(offsets))


def remote_directions(
    offsets: Iterable[tuple[int, ...]]
) -> tuple[tuple[int, int], ...]:
    """Distinct remote (x, y) offsets in a stable, canonical order.

    Orders by the cardinal direction first (E, W, N, S), then by distance,
    matching the ordering the runtime communications library uses to pack the
    receive buffer.
    """
    remote: set[tuple[int, int]] = set()
    for offset in offsets:
        dx, dy = (offset[0], offset[1]) if len(offset) >= 2 else (offset[0], 0)
        if (dx, dy) != (0, 0):
            remote.add((dx, dy))

    def sort_key(direction: tuple[int, int]) -> tuple[int, int]:
        dx, dy = direction
        unit = (1 if dx > 0 else -1 if dx < 0 else 0, 1 if dy > 0 else -1 if dy < 0 else 0)
        cardinal_rank = CARDINAL_DIRECTIONS.index(unit)
        distance = abs(dx) + abs(dy)
        return (cardinal_rank, distance)

    return tuple(sorted(remote, key=sort_key))


def direction_index(
    direction: tuple[int, int], directions: Sequence[tuple[int, int]]
) -> int:
    """Index of a remote (x, y) offset within the canonical direction list."""
    return list(directions).index(tuple(direction))
