"""varith-fuse-repeated-operands (paper Section 5.7).

Rewrites a variadic addition that contains the same operand ``n`` times into
a single multiplication of that operand by the constant ``n`` (combined with
the remaining terms).  On the Acoustic kernel this replaces three DSD
additions with one multiplication.
"""

from __future__ import annotations

from collections import Counter

from repro.dialects import arith, varith
from repro.ir import (
    ModulePass,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    op_rewrite_pattern,
)
from repro.ir.operation import Operation
from repro.ir.types import f32
from repro.ir.value import SSAValue


class FuseRepeatedOperandsPattern(RewritePattern):
    @op_rewrite_pattern
    def match_and_rewrite(self, op: varith.AddOp, rewriter: PatternRewriter) -> None:
        counts = Counter(id(operand) for operand in op.operands)
        if all(count == 1 for count in counts.values()):
            return

        by_id: dict[int, SSAValue] = {id(operand): operand for operand in op.operands}
        new_operands: list[SSAValue] = []
        new_ops: list[Operation] = []
        seen: set[int] = set()
        for operand in op.operands:
            key = id(operand)
            if key in seen:
                continue
            seen.add(key)
            count = counts[key]
            if count == 1:
                new_operands.append(operand)
                continue
            constant = arith.ConstantOp(float(count), f32)
            multiply = varith.MulOp([by_id[key], constant.result], operand.type)
            new_ops.extend([constant, multiply])
            new_operands.append(multiply.result)

        if len(new_operands) == 1:
            rewriter.insert_op_before_matched_op(new_ops)
            rewriter.replace_matched_op([], new_results=[new_operands[0]])
        else:
            replacement = varith.AddOp(new_operands, op.result.type)
            rewriter.replace_matched_op([*new_ops, replacement])


class VarithFuseRepeatedOperandsPass(ModulePass):
    name = "varith-fuse-repeated-operands"

    def apply(self, module: Operation) -> None:
        apply_patterns_greedily(module, FuseRepeatedOperandsPattern())
