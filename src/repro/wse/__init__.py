"""The Wafer-Scale Engine substrate.

The paper evaluates on real Cerebras CS-2 / CS-3 systems; this package is the
substitution documented in DESIGN.md:

* :mod:`repro.wse.machine` — published machine parameters of the WSE2/WSE3
  (PE counts, clock, memory and fabric bandwidth, per-PE SRAM);
* :mod:`repro.wse.dsd`, :mod:`repro.wse.pe` — Data Structure Descriptors and
  per-PE state (buffers, variables, task queue);
* :mod:`repro.wse.interpreter` — executes the generated csl-ir PE program;
* :mod:`repro.wse.runtime` — the chunked, star-shaped halo-exchange runtime
  (Section 5.6) driving receive/done callbacks;
* :mod:`repro.wse.executors` — pluggable execution backends: the per-PE
  ``reference`` interpreter and the whole-grid ``vectorized`` lockstep
  executor (selected via ``WseSimulator(executor=...)`` or the
  ``REPRO_EXECUTOR`` environment variable);
* :mod:`repro.wse.simulator` — the fabric simulator facade: a 2-D grid of
  PEs run to completion in delivery rounds by the chosen backend;
* :mod:`repro.wse.perf_model` — the analytic per-PE cycle model used to
  extrapolate throughput to the paper's problem sizes.
"""

from repro.wse.executors import (
    SimulationStatistics,
    available_executors,
    default_executor_name,
)
from repro.wse.machine import WSE2, WSE3, WseMachineSpec
from repro.wse.simulator import WseSimulator

__all__ = [
    "WSE2",
    "WSE3",
    "SimulationStatistics",
    "WseMachineSpec",
    "WseSimulator",
    "available_executors",
    "default_executor_name",
]
