"""Plan-to-kernel code generation for the ``compiled`` executor.

The vectorized backend still *interprets* the csl-ir program once per
delivery round: every op pays a dict dispatch, every DSD operand a slice
construction, and the halo exchange allocates fresh gather/concatenate
arrays per chunk.  On small fabrics that dispatch overhead dominates; on
large fabrics the per-round allocations do.  This module removes both by
walking the :class:`~repro.wse.plan.ExecutionPlan` **once** and emitting a
single fused per-round Python/NumPy function as source text, materialised
via ``exec``:

* every callable becomes a plain Python function (``counters`` bump +
  straight-line statements) — task activations append bound functions to a
  queue, direct calls are direct calls;
* every *static* DSD access becomes a named whole-grid view bound once at
  kernel-bind time; only runtime-offset DSDs (receive-callback chunk bases)
  slice per call;
* DSD compute builtins lower to allocation-free ``np.add/subtract/multiply
  (..., out=view)`` forms whenever the static operand layout proves the
  destination never partially overlaps a source — otherwise they fall back
  to the interpreter's exact ``dest[:] = expr`` statement, so results stay
  byte-identical either way;
* the chunked halo exchange unrolls into per-direction copies into
  preallocated staging buffers: gatherable directions are fancy-index
  gathers through the plan's fold tables, Dirichlet directions write only
  the interior rectangle over a border prefilled once at bind time.

Kernels are cached process-wide in an in-memory memo keyed by a *kernel
fingerprint* (SHA-256 over the printed program module, the plan's canonical
form and :data:`CODEGEN_VERSION`), and optionally persisted through a
source store (see :mod:`repro.service.kernels`) so compilation is paid once
fleet-wide.  Set ``REPRO_COMPILED_DUMP`` to a directory to retain the
emitted source of every kernel for debugging.

Only the constructs the pipeline generates are compilable; anything else
raises :class:`KernelCodegenError` and the ``compiled`` executor falls back
to plain vectorized interpretation.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.dialects import arith, csl, scf
from repro.ir.attributes import StringAttr
from repro.ir.operation import Operation
from repro.ir.printer import print_module
from repro.wse.plan import (
    ExchangePlan,
    ExecutionPlan,
    ShardGeometry,
    _callable_blocks,
    seam_publication,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.wse.interpreter import ProgramImage

#: bump when the emitted kernel semantics change; folded into kernel
#: fingerprints (stale memo/store entries then miss) and into run-level
#: fingerprints so cached run artifacts invalidate alongside.
#: v2: temporal-block (multi-round) emission mode; unblocked emission is
#: byte-identical to v1.
CODEGEN_VERSION = 2

#: environment variable naming a directory to retain emitted kernel source
#: in (``kernel_<fingerprint12>.py`` per kernel) for debugging.
DUMP_ENV_VAR = "REPRO_COMPILED_DUMP"

#: environment variable forcing the temporal block depth — how many delivery
#: rounds the compiled/tiled backends fuse per kernel invocation.
FUSION_ENV_VAR = "REPRO_FUSION_ROUNDS"


def resolve_block_depth(explicit: int | None = None) -> int:
    """The temporal block depth to run with.

    Precedence: an explicit constructor argument, then the
    ``REPRO_FUSION_ROUNDS`` environment override, then 1 (unblocked).
    """
    if explicit is not None:
        value = int(explicit)
    else:
        raw = os.environ.get(FUSION_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"invalid {FUSION_ENV_VAR}={raw!r}: expected a positive "
                f"integer block depth"
            ) from None
    if value < 1:
        raise ValueError(f"temporal block depth must be >= 1, got {value}")
    return value


class KernelCodegenError(Exception):
    """The program uses a construct the kernel generator does not fuse."""


# --------------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------------- #


def kernel_fingerprint(
    image: "ProgramImage",
    plan: ExecutionPlan,
    box: tuple[int, int, int, int] | None = None,
    geometry: ShardGeometry | None = None,
    rounds: int = 1,
) -> str:
    """Content fingerprint of one (program module, plan[, shard box]) kernel.

    Hashes the deterministically printed program module together with the
    plan's canonical form and the codegen version, so two processes that
    compiled the same program to the same plan share one kernel — and any
    change to the program, the planning semantics or the emitter invalidates
    it exactly once.  Shard-box kernels (the tiled backend's per-shard
    replicas) additionally fold the box and the whole shard geometry, since
    seam publication slots depend on every band/stripe edge.  Temporal-block
    kernels fold their depth (``rounds > 1``) so each (plan, box, R) variant
    caches exactly once; ``rounds == 1`` leaves the payload untouched —
    unblocked fingerprints are insensitive to the parameter existing.
    """
    payload = {
        "codegen_version": CODEGEN_VERSION,
        "module": print_module(image.module),
        "plan": plan.canonical(),
    }
    if box is not None:
        assert geometry is not None
        payload["shard"] = {"box": list(box), "geometry": geometry.canonical()}
    if rounds != 1:
        payload["rounds"] = rounds
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Source building
# --------------------------------------------------------------------------- #


class SourceBuilder:
    """An indent-aware line emitter for generated Python source."""

    def __init__(self, indent: int = 0):
        self._lines: list[str] = []
        self._indent = indent

    def line(self, text: str = "") -> None:
        self._lines.append(("    " * self._indent + text) if text else "")

    @contextmanager
    def indented(self):
        self._indent += 1
        try:
            yield self
        finally:
            self._indent -= 1

    def extend(self, other: "SourceBuilder") -> None:
        self._lines.extend(other._lines)

    def __len__(self) -> int:
        return len(self._lines)

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


@dataclass(frozen=True)
class _DsdExpr:
    """A DSD value during emission: static layout + optional runtime offset.

    ``runtime`` is a Python expression (already ``int(...)``-wrapped) added
    to ``offset`` at execution time, or ``None`` for fully static DSDs.
    """

    buffer: str
    offset: int
    length: int
    stride: int
    runtime: str | None = None

    @property
    def view_key(self) -> tuple:
        return (self.buffer, self.offset, self.length, self.stride, self.runtime)


_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def _atom(expression: str) -> str:
    """Wrap a subexpression so it composes safely inside a larger one."""
    if _IDENTIFIER.match(expression):
        return expression
    if re.fullmatch(r"\d+(\.\d+)?", expression):
        return expression
    return f"({expression})"


class _KernelEmitter:
    """Walks one program image + plan and emits the kernel source."""

    #: ops the interpreter treats as no-ops (host/layout surface).
    NOOP_OPS = (
        csl.ImportModuleOp,
        csl.ExportOp,
        csl.RpcOp,
        csl.MemberCallOp,
        csl.MemberAccessOp,
    )

    BINARY_OPS = {
        arith.AddiOp: "+",
        arith.SubiOp: "-",
        arith.MuliOp: "*",
        arith.AddfOp: "+",
        arith.SubfOp: "-",
        arith.MulfOp: "*",
        arith.DivfOp: "/",
    }

    CMP_OPS = {
        "eq": "==",
        "ne": "!=",
        "slt": "<",
        "sle": "<=",
        "sgt": ">",
        "sge": ">=",
    }

    def __init__(
        self,
        image: "ProgramImage",
        plan: ExecutionPlan,
        box: tuple[int, int, int, int] | None = None,
        geometry: ShardGeometry | None = None,
        rounds: int = 1,
    ):
        self.image = image
        self.plan = plan
        #: ``(y0, y1, x0, x1)`` for a shard-box kernel, ``None`` for the
        #: whole-grid kernel (whose emission this mode must not perturb).
        self.box = box
        self.geometry = geometry
        #: temporal block depth; ``> 1`` grows the in-kernel round loop
        #: (``run_block``) and the direct-to-receive delivery.  Shard-box
        #: kernels block through extended-window plans instead, never here.
        self.rounds = rounds
        assert rounds == 1 or box is None, (
            "temporal blocks and shard boxes compose via BlockPlanView, "
            "not via box= + rounds="
        )
        self._fn_names: dict[str, str] = {}
        self._buffer_names: dict[str, str] = {}
        self._views: dict[tuple, str] = {}  # (buffer, offset, length, stride)
        self._gathers: dict[tuple[int, int], tuple[str, str]] = {}
        self._scratch: dict[int, str] = {}  # dest length -> name
        #: (eid, exchange plan, authoritative source buffer) per comms op.
        self._exchanges: list[tuple[int, ExchangePlan, str]] = []
        #: shard-mode fancy-index constants: (values, orient) -> name.
        self._indices: dict[tuple[tuple[int, ...], str], str] = {}
        #: exchanges delivered straight into the receive slab (block mode):
        #: their staging slabs are never allocated.
        self._direct_eids: set[int] = set()
        #: direct-mode exchanges whose constant-fill borders are written
        #: lazily under a ``fl<eid>`` once-flag (receive buffer proven
        #: unwritten outside delivery).
        self._fill_flags: set[int] = set()
        self._write_sets: dict[str, set[str] | None] = {}
        self._temp = 0
        if box is not None:
            assert geometry is not None
            pub_rows, pub_cols = seam_publication(plan, geometry)
            self._pub_row_slots = {row: slot for slot, row in enumerate(pub_rows)}
            self._pub_col_slots = {col: slot for slot, col in enumerate(pub_cols)}

    @property
    def _num_pes(self) -> int:
        if self.box is None:
            return self.plan.width * self.plan.height
        y0, y1, x0, x1 = self.box
        return (y1 - y0) * (x1 - x0)

    @property
    def _grid_dims(self) -> tuple[int, int]:
        """(height, width) of the arrays this kernel operates on."""
        if self.box is None:
            return self.plan.height, self.plan.width
        y0, y1, x0, x1 = self.box
        return y1 - y0, x1 - x0

    # -- naming --------------------------------------------------------- #

    def _assign_names(self) -> None:
        used: set[str] = set()
        for name in sorted(self.image.callables):
            base = "fn_" + re.sub(r"[^0-9A-Za-z_]", "_", name)
            candidate, suffix = base, 1
            while candidate in used:
                candidate = f"{base}_{suffix}"
                suffix += 1
            used.add(candidate)
            self._fn_names[name] = candidate
        for buffer in sorted(self.plan.buffers):
            base = "b_" + re.sub(r"[^0-9A-Za-z_]", "_", buffer)
            candidate, suffix = base, 1
            while candidate in used:
                candidate = f"{base}_{suffix}"
                suffix += 1
            used.add(candidate)
            self._buffer_names[buffer] = candidate

    def _fn(self, name: str) -> str:
        fn = self._fn_names.get(name)
        if fn is None:
            raise KernelCodegenError(f"reference to unknown callable '{name}'")
        return fn

    def _buffer(self, name: str) -> str:
        local = self._buffer_names.get(name)
        if local is None:
            raise KernelCodegenError(f"reference to unknown buffer '{name}'")
        return local

    def _static_view(self, dsd: _DsdExpr) -> str:
        key = (dsd.buffer, dsd.offset, dsd.length, dsd.stride)
        name = self._views.get(key)
        if name is None:
            name = f"v{len(self._views)}"
            self._views[key] = name
        return name

    def _gather(self, direction: tuple[int, int]) -> tuple[str, str]:
        names = self._gathers.get(direction)
        if names is None:
            tag = "_".join(
                ("m" + str(-c)) if c < 0 else ("p" + str(c)) for c in direction
            )
            names = (f"gr_{tag}", f"gc_{tag}")
            self._gathers[direction] = names
        return names

    def _scratch_for(self, length: int) -> str:
        name = self._scratch.get(length)
        if name is None:
            name = f"scr{length}"
            self._scratch[length] = name
        return name

    def _fresh(self) -> str:
        self._temp += 1
        return f"t{self._temp}"

    def _index_name(self, values: list[int], orient: str) -> str:
        """A bind-time ``np.intp`` index-array constant (deduplicated).

        ``orient`` is ``"1d"`` for a lone advanced index, ``"row"``/``"col"``
        for the broadcast pair of a doubly-advanced selection."""
        key = (tuple(values), orient)
        name = self._indices.get(key)
        if name is None:
            name = f"ix{len(self._indices)}"
            self._indices[key] = name
        return name

    @staticmethod
    def _contiguous(values: list[int]) -> bool:
        return all(b - a == 1 for a, b in zip(values, values[1:]))

    def _sel_exprs(self, rows: list[int], cols: list[int]) -> tuple[str, str]:
        """Row/column index expressions selecting ``rows x cols`` of a 3-D
        array.  Contiguous runs become slices; a lone ragged axis becomes a
        1-D advanced index (position-preserving next to slices); two ragged
        axes become an outer-broadcast ``(R,1) x (1,C)`` pair."""
        rows_contiguous = self._contiguous(rows)
        cols_contiguous = self._contiguous(cols)
        if rows_contiguous and cols_contiguous:
            return f"{rows[0]}:{rows[-1] + 1}", f"{cols[0]}:{cols[-1] + 1}"
        if rows_contiguous:
            return f"{rows[0]}:{rows[-1] + 1}", self._index_name(cols, "1d")
        if cols_contiguous:
            return self._index_name(rows, "1d"), f"{cols[0]}:{cols[-1] + 1}"
        return self._index_name(rows, "row"), self._index_name(cols, "col")

    @staticmethod
    def _box_axis(
        table_axis: tuple[int | None, ...], lo: int, hi: int
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """Classify one axis of a halo table restricted to ``[lo, hi)``.

        Returns ``(own, remote)`` where ``own`` pairs each local destination
        index with its *local* source index (source inside the box) and
        ``remote`` pairs it with the *global* source index (source owned by
        a sibling shard, read through its seam publication).  Dirichlet
        off-fabric destinations (``None`` sources) appear in neither — they
        keep the bind-time constant fill, exactly like the full-grid path.
        """
        own: list[tuple[int, int]] = []
        remote: list[tuple[int, int]] = []
        for local in range(hi - lo):
            src = table_axis[lo + local]
            if src is None:
                continue
            if lo <= src < hi:
                own.append((local, src - lo))
            else:
                remote.append((local, src))
        return own, remote

    # -- value resolution ----------------------------------------------- #

    def _entry(self, value, env: dict[int, Any]):
        entry = env.get(id(value))
        if entry is None:
            raise KernelCodegenError(
                "use of a value that was never defined while emitting "
                f"(type {value.type})"
            )
        return entry

    def _scalar(self, value, env: dict[int, Any]) -> str:
        entry = self._entry(value, env)
        if isinstance(entry, _DsdExpr):
            raise KernelCodegenError("a DSD value was used where a scalar is")
        return entry

    def _slice(self, dsd: _DsdExpr) -> str:
        stop = dsd.offset + dsd.length * dsd.stride
        step = f":{dsd.stride}" if dsd.stride != 1 else ""
        return f"{dsd.offset}:{stop}{step}"

    def _operand_view(
        self, dsd: _DsdExpr, builder: SourceBuilder
    ) -> str:
        """The NumPy view expression of a DSD operand.

        Static DSDs resolve to kernel-bind-time named views; runtime-offset
        DSDs slice inside the emitted function (with the same range check
        ``Dsd.resolve_columns`` performs)."""
        if dsd.runtime is None:
            return self._static_view(dsd)
        offset_name = self._fresh()
        builder.line(f"{offset_name} = {dsd.offset} + {dsd.runtime}")
        view_name = self._fresh()
        stop = f"{offset_name} + {dsd.length * dsd.stride}"
        step = f":{dsd.stride}" if dsd.stride != 1 else ""
        builder.line(
            f"{view_name} = {self._buffer(dsd.buffer)}"
            f"[:, :, {offset_name}:{stop}{step}]"
        )
        builder.line(
            f"if {view_name}.shape[2] != {dsd.length}: "
            f"raise IndexError(\"DSD over '{dsd.buffer}' out of range\")"
        )
        return view_name

    # -- callable emission ---------------------------------------------- #

    def _emit_callable(self, name: str, builder: SourceBuilder) -> None:
        callable_op = self.image.callables[name]
        block = callable_op.regions[0].blocks[0]
        env: dict[int, Any] = {}
        if block.args:
            env[id(block.args[0])] = "arg"
        builder.line(f"def {self._fn_names[name]}(arg=0):")
        with builder.indented():
            builder.line("counters['tasks_run'] += 1")
            self._emit_block(block, env, builder)

    def _emit_block(self, block, env: dict[int, Any], b: SourceBuilder) -> None:
        for op in block.ops:
            if isinstance(op, (csl.ReturnOp, scf.YieldOp)):
                return
            self._emit_op(op, env, b)

    def _emit_op(self, op: Operation, env: dict[int, Any], b: SourceBuilder):
        if isinstance(op, (csl.ConstantOp, arith.ConstantOp)):
            env[id(op.results[0])] = repr(op.value)
        elif isinstance(op, csl.LoadVarOp):
            name = self._fresh()
            b.line(f"{name} = variables.get({op.var!r}, 0)")
            env[id(op.result)] = name
        elif isinstance(op, csl.StoreVarOp):
            b.line(f"variables[{op.var!r}] = {self._scalar(op.value, env)}")
        elif type(op) in self.BINARY_OPS:
            operator = self.BINARY_OPS[type(op)]
            name = self._fresh()
            lhs = _atom(self._scalar(op.lhs, env))
            rhs = _atom(self._scalar(op.rhs, env))
            b.line(f"{name} = {lhs} {operator} {rhs}")
            env[id(op.result)] = name
        elif isinstance(op, arith.CmpiOp):
            operator = self.CMP_OPS[op.predicate]
            name = self._fresh()
            lhs = _atom(self._scalar(op.lhs, env))
            rhs = _atom(self._scalar(op.rhs, env))
            b.line(f"{name} = bool({lhs} {operator} {rhs})")
            env[id(op.result)] = name
        elif isinstance(op, scf.IfOp):
            self._emit_if(op, env, b)
        elif isinstance(op, csl.CallOp):
            b.line(f"{self._fn(op.callee)}()")
        elif isinstance(op, csl.ActivateOp):
            b.line(f"queue.append(({self._fn(op.task_name)}, 0))")
        elif isinstance(op, csl.GetMemDsdOp):
            env[id(op.result)] = self._dsd_of_get(op, env)
        elif isinstance(op, csl.IncrementDsdOffsetOp):
            env[id(op.result)] = self._dsd_of_increment(op, env)
        elif isinstance(op, csl.DSD_BUILTIN_OPS):
            self._emit_builtin(op, env, b)
        elif isinstance(op, csl.CommsExchangeOp):
            self._emit_exchange_schedule(op, env, b)
        elif isinstance(op, csl.UnblockCmdStreamOp):
            b.line("state.halted = True")
        elif isinstance(op, self.NOOP_OPS):
            pass  # results stay undefined, exactly like the interpreter
        else:
            raise KernelCodegenError(f"unsupported operation '{op.name}'")

    def _emit_if(self, op: scf.IfOp, env: dict[int, Any], b: SourceBuilder):
        condition = self._scalar(op.condition, env)
        b.line(f"if {condition}:")
        with b.indented():
            before = len(b)
            region = op.then_region
            if region.blocks and region.blocks[0].ops:
                self._emit_block(region.blocks[0], env, b)
            if len(b) == before:
                b.line("pass")
        region = op.else_region
        if region.blocks and region.blocks[0].ops:
            b.line("else:")
            with b.indented():
                before = len(b)
                self._emit_block(region.blocks[0], env, b)
                if len(b) == before:
                    b.line("pass")

    # -- DSD values ------------------------------------------------------ #

    def _dsd_of_get(self, op: csl.GetMemDsdOp, env: dict[int, Any]) -> _DsdExpr:
        planned = self.plan.static_dsd(op)
        if planned is not None:
            return _DsdExpr(
                planned.buffer, planned.offset, planned.length, planned.stride
            )
        buffer_attr = op.attributes.get("buffer")
        if isinstance(buffer_attr, StringAttr):
            buffer_name = buffer_attr.data
        elif op.operands:
            source = self._entry(op.operands[0], env)
            if not isinstance(source, _DsdExpr):
                raise KernelCodegenError("csl.get_mem_dsd operand is not a DSD")
            buffer_name = source.buffer
        else:
            raise KernelCodegenError(
                "csl.get_mem_dsd has neither buffer nor operand"
            )
        return _DsdExpr(buffer_name, op.offset, op.length, op.stride)

    def _dsd_of_increment(
        self, op: csl.IncrementDsdOffsetOp, env: dict[int, Any]
    ) -> _DsdExpr:
        planned = self.plan.static_dsd(op)
        if planned is not None:
            return _DsdExpr(
                planned.buffer, planned.offset, planned.length, planned.stride
            )
        base = self._entry(op.operands[0], env)
        if not isinstance(base, _DsdExpr):
            raise KernelCodegenError(
                "csl.increment_dsd_offset operand is not a DSD"
            )
        runtime = base.runtime
        if len(op.operands) > 1:
            extra = _atom(self._scalar(op.operands[1], env))
            term = f"int({extra})"
            runtime = term if runtime is None else f"{runtime} + {term}"
        return _DsdExpr(
            base.buffer,
            base.offset + op.offset,
            base.length,
            base.stride,
            runtime,
        )

    # -- DSD compute builtins -------------------------------------------- #

    def _hazard(self, dest: _DsdExpr, sources: list[Any]) -> bool:
        """True when a source view shares the destination buffer with a
        *different* layout — the interpreter's full-RHS-then-assign order
        is then load-bearing and the out=-form must not be used."""
        for source in sources:
            if not isinstance(source, _DsdExpr):
                continue
            if source.buffer != dest.buffer:
                continue
            if source.view_key != dest.view_key:
                return True
        return False

    def _emit_builtin(self, op, env: dict[int, Any], b: SourceBuilder) -> None:
        dest = self._entry(op.dest, env)
        if not isinstance(dest, _DsdExpr):
            raise KernelCodegenError(f"'{op.name}' destination is not a DSD")
        sources = [self._entry(source, env) for source in op.sources]
        hazard = self._hazard(dest, sources)
        if isinstance(op, csl.FmacsOp) and any(
            isinstance(s, _DsdExpr) and s.length != dest.length for s in sources
        ):
            hazard = True  # scratch shape follows dest; odd shapes fall back

        views = [
            self._operand_view(s, b) if isinstance(s, _DsdExpr) else _atom(s)
            for s in sources
        ]
        dest_view = self._operand_view(dest, b)

        if isinstance(op, csl.FmovsOp):
            (src,) = views
            if hazard or not isinstance(sources[0], _DsdExpr):
                b.line(f"{dest_view}[:] = {src}")
            else:
                b.line(f"np.copyto({dest_view}, {src})")
        elif isinstance(op, csl.FmacsOp):
            acc, src, coeff = views
            if hazard:
                b.line(f"{dest_view}[:] = {acc} + {src} * {coeff}")
            elif isinstance(sources[1], _DsdExpr):
                scratch = self._scratch_for(dest.length)
                b.line(f"np.multiply({src}, {coeff}, out={scratch})")
                b.line(f"np.add({acc}, {scratch}, out={dest_view})")
            else:
                b.line(f"np.add({acc}, {src} * {coeff}, out={dest_view})")
        else:
            ufunc, operator = {
                csl.FaddsOp: ("np.add", "+"),
                csl.FsubsOp: ("np.subtract", "-"),
                csl.FmulsOp: ("np.multiply", "*"),
            }[type(op)]
            a, c = views
            if hazard:
                b.line(f"{dest_view}[:] = {a} {operator} {c}")
            else:
                b.line(f"{ufunc}({a}, {c}, out={dest_view})")
        b.line("counters['dsd_ops'] += 1")
        b.line(f"counters['dsd_elements'] += {dest.length}")

    # -- the comms exchange ---------------------------------------------- #

    def _emit_exchange_schedule(
        self, op: csl.CommsExchangeOp, env: dict[int, Any], b: SourceBuilder
    ) -> None:
        source = self._entry(op.buffer, env)
        if not isinstance(source, _DsdExpr):
            raise KernelCodegenError(
                "csl.comms_exchange buffer operand is not a DSD"
            )
        planned = self.plan.exchange_plan(op)
        if planned is None:
            attributes = op.attributes
            planned = ExchangePlan(
                source_buffer=source.buffer,
                source_offset=attributes["src_offset"].value,
                source_length=attributes["src_len"].value,
                chunk_size=attributes["chunk_size"].value,
                num_chunks=op.num_chunks,
                directions=tuple((d[0], d[1]) for d in op.directions),
                coefficients=(
                    tuple(op.coefficients)
                    if op.coefficients is not None
                    else None
                ),
                receive_buffer=attributes["recv_buffer"].string_value,
                receive_callback=op.recv_callback,
                done_callback=op.done_callback,
            )
        for callback in (planned.receive_callback, planned.done_callback):
            if callback and callback not in self.image.callables:
                raise KernelCodegenError(
                    f"exchange callback '{callback}' is not a callable"
                )
        if planned.receive_buffer not in self.plan.buffers:
            raise KernelCodegenError(
                f"exchange receive buffer '{planned.receive_buffer}' is "
                f"not a program buffer"
            )
        eid = len(self._exchanges)
        # The runtime DSD operand's buffer stays authoritative, exactly as
        # in the interpreter's planned path.
        self._exchanges.append((eid, planned, source.buffer))
        b.line("counters['exchanges'] += 1")
        b.line(f"pending[0] = {eid}")

    # -- temporal-block write-set analysis -------------------------------- #

    def _written_buffers(self, name: str) -> set[str] | None:
        """Buffers the direct-call closure of a callable may write.

        Follows ``csl.call`` into callees and both ``scf.if`` regions;
        ``csl.activate`` targets are deferred to the task queue — which only
        drains after the enclosing delivery completed — so they are not part
        of the closure.  Returns ``None`` when a DSD destination cannot be
        resolved to a buffer statically (conservative: treat as writing
        everything).  Memoised per callable.
        """
        if name in self._write_sets:
            return self._write_sets[name]
        self._write_sets[name] = None  # cycle guard: recursion -> unknown
        callable_op = self.image.callables.get(name)
        if callable_op is None:
            self._write_sets[name] = None
            return None
        written: set[str] = set()
        env: dict[int, str | None] = {}
        unknown = False
        for block in _callable_blocks(callable_op):
            for op in block.ops:
                if isinstance(op, csl.GetMemDsdOp):
                    env[id(op.results[0])] = self._trace_get_buffer(op, env)
                elif isinstance(op, csl.IncrementDsdOffsetOp):
                    planned = self.plan.static_dsd(op)
                    if planned is not None:
                        env[id(op.results[0])] = planned.buffer
                    else:
                        env[id(op.results[0])] = env.get(id(op.operands[0]))
                elif isinstance(op, csl.DSD_BUILTIN_OPS):
                    buffer = env.get(id(op.dest))
                    if buffer is None:
                        unknown = True
                    else:
                        written.add(buffer)
                elif isinstance(op, csl.CallOp):
                    callee_writes = self._written_buffers(op.callee)
                    if callee_writes is None:
                        unknown = True
                    else:
                        written |= callee_writes
        result = None if unknown else written
        self._write_sets[name] = result
        return result

    def _trace_get_buffer(
        self, op: csl.GetMemDsdOp, env: dict[int, str | None]
    ) -> str | None:
        planned = self.plan.static_dsd(op)
        if planned is not None:
            return planned.buffer
        buffer_attr = op.attributes.get("buffer")
        if isinstance(buffer_attr, StringAttr):
            return buffer_attr.data
        if op.operands:
            return env.get(id(op.operands[0]))
        return None

    def _direct_staging_safe(
        self, exchange: ExchangePlan, source_buffer: str
    ) -> bool:
        """May this exchange stage each chunk straight into the receive slab?

        The unblocked kernel stages *every* chunk before any receive
        callback runs; interleaving stage and callback is byte-equivalent
        exactly when the callback's direct-call closure writes neither the
        source (later chunks would re-read modified data) nor the receive
        buffer (its slab state between chunks is observable).
        """
        if exchange.receive_buffer == source_buffer:
            return False
        if not exchange.receive_callback:
            return True
        writes = self._written_buffers(exchange.receive_callback)
        if writes is None:
            return False
        return (
            source_buffer not in writes
            and exchange.receive_buffer not in writes
        )

    def _recv_preserved(self, receive_buffer: str) -> bool:
        """True when no callable of the program writes the receive buffer —
        the constant-fill borders written by one delivery then survive until
        the next, so the fill only needs writing once per kernel binding."""
        for name in self.image.callables:
            writes = self._written_buffers(name)
            if writes is None or receive_buffer in writes:
                return False
        return True

    @staticmethod
    def _shift_run(
        axis: tuple[int | None, ...], delta: int
    ) -> tuple[int, int]:
        """Destination bounds ``[lo, hi)`` of a fill-path table axis.

        The in-fabric cells of a constant-fill (Dirichlet) axis must form
        one contiguous pure-shift run (``axis[i] == i + delta``) for the
        single shifted-slice copy to represent them; for whole-fabric tables
        this reproduces :meth:`HaloTable.interior_box` exactly, and for the
        extended-window tables of a temporal block it tightens the bounds to
        the cells whose sources actually sit inside the window.
        """
        present = [i for i, src in enumerate(axis) if src is not None]
        if not present:
            return 0, 0
        lo, hi = present[0], present[-1] + 1
        if hi - lo != len(present) or any(
            axis[i] != i + delta for i in present
        ):
            raise KernelCodegenError(
                "constant-fill halo table is not one contiguous shifted run"
            )
        return lo, hi

    @staticmethod
    def _axis_runs(
        axis: tuple[int, ...]
    ) -> list[tuple[int, int, int]]:
        """Maximal ``(dest_lo, dest_hi, src_lo)`` runs of a gather axis in
        which the source index steps with the destination — each run is one
        basic-slice copy."""
        runs: list[tuple[int, int, int]] = []
        start = 0
        for i in range(1, len(axis) + 1):
            if i == len(axis) or axis[i] != axis[i - 1] + 1:
                runs.append((start, i, axis[start]))
                start = i
        return runs

    # -- delivery emission ------------------------------------------------ #

    def _emit_deliver_fn(
        self,
        eid: int,
        exchange: ExchangePlan,
        source_buffer: str,
        b: SourceBuilder,
    ) -> None:
        if self.box is not None:
            self._emit_box_exchange_fns(eid, exchange, source_buffer, b)
            return
        if self.rounds > 1 and self._direct_staging_safe(
            exchange, source_buffer
        ):
            self._emit_block_deliver_fn(eid, exchange, source_buffer, b)
            return
        depth = exchange.chunk_size * len(exchange.directions)
        source = self._buffer(source_buffer)
        b.line(f"def deliver_{eid}():")
        with b.indented():
            body_start = len(b)
            total = exchange.num_chunks * exchange.chunk_size * len(
                exchange.directions
            )
            # Phase 1: stage every chunk before any callback may write.
            for chunk in range(exchange.num_chunks):
                start = exchange.source_offset + chunk * exchange.chunk_size
                stop = start + exchange.chunk_size
                for slot, direction in enumerate(exchange.directions):
                    self._emit_stage_direction(
                        eid, exchange, chunk, slot, direction,
                        source, start, stop, b,
                    )
            if total:
                b.line(f"counters['wavelets_sent'] += {total}")
            # Phase 2: deliver chunk by chunk, receive callback per chunk.
            receive_view = (
                self._static_view(
                    _DsdExpr(exchange.receive_buffer, 0, depth, 1)
                )
                if depth
                else None
            )
            for chunk in range(exchange.num_chunks):
                if receive_view is not None:
                    b.line(f"np.copyto({receive_view}, st{eid}_{chunk})")
                if exchange.receive_callback:
                    argument = chunk * exchange.chunk_size
                    b.line(f"{self._fn(exchange.receive_callback)}({argument})")
            if exchange.done_callback:
                b.line(
                    f"queue.append(({self._fn(exchange.done_callback)}, 0))"
                )
            if len(b) == body_start:  # zero-chunk, no-callback degenerate
                b.line("pass")

    def _emit_block_deliver_fn(
        self,
        eid: int,
        exchange: ExchangePlan,
        source_buffer: str,
        b: SourceBuilder,
    ) -> None:
        """Fused-block delivery: stage each chunk straight into the receive
        slab, skipping the per-chunk full-slab copy.

        Legal because :meth:`_direct_staging_safe` proved the receive
        callback writes neither the source buffer (later chunks re-read the
        same data the up-front staging would have) nor the receive buffer
        (the slab content each callback observes equals the unblocked
        ``np.copyto`` result).  Constant-fill borders are re-established at
        the top of the delivery — or once per kernel binding when no task
        of the program ever writes the receive buffer.
        """
        depth = exchange.chunk_size * len(exchange.directions)
        source = self._buffer(source_buffer)
        self._direct_eids.add(eid)
        receive_view = (
            self._static_view(_DsdExpr(exchange.receive_buffer, 0, depth, 1))
            if depth
            else None
        )
        fill_slots = [
            (slot, direction)
            for slot, direction in enumerate(exchange.directions)
            if self.plan.gather_indices(direction) is None
        ]
        once = bool(fill_slots) and self._recv_preserved(
            exchange.receive_buffer
        )
        if once:
            self._fill_flags.add(eid)

        def emit_fills(bb: SourceBuilder) -> None:
            for slot, direction in fill_slots:
                fill = self.plan.halo_table(direction).fill_value
                z0 = slot * exchange.chunk_size
                z1 = z0 + exchange.chunk_size
                value = f"np.float32({fill!r})"
                if exchange.coefficients is not None:
                    value = f"{value} * c{eid}_{slot}"
                bb.line(f"{receive_view}[:, :, {z0}:{z1}] = {value}")

        b.line(f"def deliver_{eid}():")
        with b.indented():
            body_start = len(b)
            total = exchange.num_chunks * exchange.chunk_size * len(
                exchange.directions
            )
            if total:
                b.line(f"counters['wavelets_sent'] += {total}")
            if fill_slots and receive_view is not None:
                if once:
                    b.line(f"if fl{eid}[0]:")
                    with b.indented():
                        b.line(f"fl{eid}[0] = False")
                        emit_fills(b)
                else:
                    emit_fills(b)
            for chunk in range(exchange.num_chunks):
                start = exchange.source_offset + chunk * exchange.chunk_size
                stop = start + exchange.chunk_size
                for slot, direction in enumerate(exchange.directions):
                    self._emit_direct_stage(
                        eid, exchange, slot, direction,
                        source, start, stop, receive_view, b,
                    )
                if exchange.receive_callback:
                    argument = chunk * exchange.chunk_size
                    b.line(f"{self._fn(exchange.receive_callback)}({argument})")
            if exchange.done_callback:
                b.line(
                    f"queue.append(({self._fn(exchange.done_callback)}, 0))"
                )
            if len(b) == body_start:
                b.line("pass")

    def _emit_direct_stage(
        self,
        eid: int,
        exchange: ExchangePlan,
        slot: int,
        direction: tuple[int, int],
        source: str,
        start: int,
        stop: int,
        receive_view: str | None,
        b: SourceBuilder,
    ) -> None:
        """One direction-slot of one chunk, written into the receive slab.

        Gathers whose fold tables decompose into a few contiguous runs per
        axis (interior shifts, periodic/reflect wraps) become basic-slice
        copies — no fancy-index temporary; ragged tables keep the one-shot
        fancy gather.  Constant-fill directions copy only the shifted run
        over the borders established by the delivery prologue.
        """
        if receive_view is None:
            return
        z0 = slot * exchange.chunk_size
        z1 = z0 + exchange.chunk_size
        coefficient = (
            f"c{eid}_{slot}" if exchange.coefficients is not None else None
        )
        table = self.plan.halo_table(direction)

        def copy(dest: str, src: str) -> None:
            if coefficient is None:
                b.line(f"np.copyto({dest}, {src})")
            else:
                b.line(f"np.multiply({src}, {coefficient}, out={dest})")

        if self.plan.gather_indices(direction) is None:
            dx, dy = direction
            y0, y1 = self._shift_run(table.rows, dy)
            x0, x1 = self._shift_run(table.cols, dx)
            if y0 >= y1 or x0 >= x1:
                return
            copy(
                f"{receive_view}[{y0}:{y1}, {x0}:{x1}, {z0}:{z1}]",
                f"{source}[{y0 + dy}:{y1 + dy}, {x0 + dx}:{x1 + dx}, "
                f"{start}:{stop}]",
            )
            return
        row_runs = self._axis_runs(table.rows)
        col_runs = self._axis_runs(table.cols)
        if len(row_runs) * len(col_runs) <= 4:
            for ry0, ry1, sy in row_runs:
                for cx0, cx1, sx in col_runs:
                    copy(
                        f"{receive_view}[{ry0}:{ry1}, {cx0}:{cx1}, "
                        f"{z0}:{z1}]",
                        f"{source}[{sy}:{sy + ry1 - ry0}, "
                        f"{sx}:{sx + cx1 - cx0}, {start}:{stop}]",
                    )
            return
        rows, cols = self._gather(direction)
        dest = f"{receive_view}[:, :, {z0}:{z1}]"
        gathered = f"{source}[{rows}, {cols}, {start}:{stop}]"
        if coefficient is None:
            b.line(f"{dest} = {gathered}")
        else:
            b.line(f"np.multiply({gathered}, {coefficient}, out={dest})")

    # -- shard-box exchange (overlapped tiled protocol) ------------------- #

    def _emit_box_exchange_fns(
        self,
        eid: int,
        exchange: ExchangePlan,
        source_buffer: str,
        b: SourceBuilder,
    ) -> None:
        """The four per-exchange hooks of a shard-box kernel.

        ``publish_<eid>`` copies the shard's seam rows/columns of the source
        buffer into the shared snapshots; ``stage_interior_<eid>`` stages
        every destination whose (boundary-folded) source lies inside the box
        — legal while siblings still compute; ``stage_rim_<eid>`` stages the
        remaining in-fabric destinations out of sibling snapshots — legal
        only once the needed siblings published; ``deliver_<eid>`` is the
        unchanged phase-2 copy+callback sequence.  The interior/rim split is
        a partition of the full-grid staging, so the staged bytes — and the
        per-PE counters — are identical to the single-process kernel.
        """
        depth = exchange.chunk_size * len(exchange.directions)
        span = exchange.num_chunks * exchange.chunk_size
        offset = exchange.source_offset
        source = self._buffer(source_buffer)
        y0, y1, x0, x1 = self.box

        b.line(f"def publish_{eid}():")
        with b.indented():
            body_start = len(b)
            if span:
                for row, slot in self._pub_row_slots.items():
                    if y0 <= row < y1:
                        b.line(
                            f"rs_{eid}[{slot}, {x0}:{x1}] = "
                            f"{source}[{row - y0}, :, {offset}:{offset + span}]"
                        )
                for col, slot in self._pub_col_slots.items():
                    if x0 <= col < x1:
                        b.line(
                            f"cs_{eid}[{y0}:{y1}, {slot}] = "
                            f"{source}[:, {col - x0}, {offset}:{offset + span}]"
                        )
            if len(b) == body_start:
                b.line("pass")

        total = exchange.num_chunks * exchange.chunk_size * len(
            exchange.directions
        )
        for rim in (False, True):
            b.line(f"def stage_{'rim' if rim else 'interior'}_{eid}():")
            with b.indented():
                body_start = len(b)
                for chunk in range(exchange.num_chunks):
                    start = offset + chunk * exchange.chunk_size
                    stop = start + exchange.chunk_size
                    for slot, direction in enumerate(exchange.directions):
                        self._emit_box_stage_direction(
                            eid, exchange, chunk, slot, direction,
                            source, start, stop, b, rim,
                        )
                if not rim and total:
                    b.line(f"counters['wavelets_sent'] += {total}")
                if len(b) == body_start:
                    b.line("pass")

        b.line(f"def deliver_{eid}():")
        with b.indented():
            body_start = len(b)
            receive_view = (
                self._static_view(
                    _DsdExpr(exchange.receive_buffer, 0, depth, 1)
                )
                if depth
                else None
            )
            for chunk in range(exchange.num_chunks):
                if receive_view is not None:
                    b.line(f"np.copyto({receive_view}, st{eid}_{chunk})")
                if exchange.receive_callback:
                    argument = chunk * exchange.chunk_size
                    b.line(f"{self._fn(exchange.receive_callback)}({argument})")
            if exchange.done_callback:
                b.line(
                    f"queue.append(({self._fn(exchange.done_callback)}, 0))"
                )
            if len(b) == body_start:
                b.line("pass")

    def _emit_box_stage_direction(
        self,
        eid: int,
        exchange: ExchangePlan,
        chunk: int,
        slot: int,
        direction: tuple[int, int],
        source: str,
        start: int,
        stop: int,
        b: SourceBuilder,
        rim: bool,
    ) -> None:
        """One direction-slot of one chunk, restricted to the shard box.

        The destination cells split by where their folded source lives:
        inside the box (interior — copied from the live shard view), in a
        sibling shard (rim — copied from the sibling's seam snapshot), or
        off-fabric (Dirichlet — left at the bind-time constant prefill).
        Remote *rows* read whole strips of the row snapshot (every shard of
        the source band publishes its column segment), so diagonal-corner
        sources need no extra region.
        """
        z0 = slot * exchange.chunk_size
        z1 = z0 + exchange.chunk_size
        coefficient = (
            f"c{eid}_{slot}" if exchange.coefficients is not None else None
        )
        table = self.plan.halo_table(direction)
        y0, y1, x0, x1 = self.box
        own_rows, remote_rows = self._box_axis(table.rows, y0, y1)
        own_cols, remote_cols = self._box_axis(table.cols, x0, x1)
        offset = exchange.source_offset

        def copy(dest_rows, dest_cols, src_expr):
            dr, dc = self._sel_exprs(
                [d for d, _ in dest_rows], [d for d, _ in dest_cols]
            )
            value = src_expr if coefficient is None else (
                f"{src_expr} * {coefficient}"
            )
            b.line(f"st{eid}_{chunk}[{dr}, {dc}, {z0}:{z1}] = {value}")

        if not rim:
            if own_rows and own_cols:
                sr, sc = self._sel_exprs(
                    [s for _, s in own_rows], [s for _, s in own_cols]
                )
                copy(own_rows, own_cols,
                     f"{source}[{sr}, {sc}, {start}:{stop}]")
            return
        zs, ze = start - offset, stop - offset
        # Remote rows x every in-fabric column: full-width row strips.
        in_fabric_cols = sorted(
            [(d, x0 + s) for d, s in own_cols] + remote_cols
        )
        if remote_rows and in_fabric_cols:
            sr, sc = self._sel_exprs(
                [self._pub_row_slots[s] for _, s in remote_rows],
                [g for _, g in in_fabric_cols],
            )
            copy(remote_rows, in_fabric_cols,
                 f"rs_{eid}[{sr}, {sc}, {zs}:{ze}]")
        # Own rows x remote columns: column strips of the source stripe.
        if own_rows and remote_cols:
            sr, sc = self._sel_exprs(
                [y0 + s for _, s in own_rows],
                [self._pub_col_slots[s] for _, s in remote_cols],
            )
            copy(own_rows, remote_cols,
                 f"cs_{eid}[{sr}, {sc}, {zs}:{ze}]")

    def _emit_stage_direction(
        self,
        eid: int,
        exchange: ExchangePlan,
        chunk: int,
        slot: int,
        direction: tuple[int, int],
        source: str,
        start: int,
        stop: int,
        b: SourceBuilder,
    ) -> None:
        z0 = slot * exchange.chunk_size
        z1 = z0 + exchange.chunk_size
        staging = f"st{eid}_{chunk}[:, :, {z0}:{z1}]"
        coefficient = (
            f"c{eid}_{slot}" if exchange.coefficients is not None else None
        )
        if self.plan.gather_indices(direction) is not None:
            rows, cols = self._gather(direction)
            gathered = f"{source}[{rows}, {cols}, {start}:{stop}]"
            if coefficient is None:
                b.line(f"{staging} = {gathered}")
            else:
                b.line(f"np.multiply({gathered}, {coefficient}, out={staging})")
            return
        # Dirichlet fill path: the staging border was prefilled at bind
        # time; only the interior rectangle moves per round.  The bounds
        # come from the table's contiguous shifted run — identical to the
        # geometric interior box on whole-fabric tables, tighter on the
        # extended-window tables of a temporal block.
        table = self.plan.halo_table(direction)
        dx, dy = direction
        y0, y1 = self._shift_run(table.rows, dy)
        x0, x1 = self._shift_run(table.cols, dx)
        if y0 >= y1 or x0 >= x1:
            return
        staging = (
            f"st{eid}_{chunk}[{y0}:{y1}, {x0}:{x1}, {z0}:{z1}]"
        )
        shifted = (
            f"{source}[{y0 + dy}:{y1 + dy}, {x0 + dx}:{x1 + dx}, "
            f"{start}:{stop}]"
        )
        if coefficient is None:
            b.line(f"{staging} = {shifted}")
        else:
            b.line(f"np.multiply({shifted}, {coefficient}, out={staging})")

    def _emit_box_dispatcher(
        self, b: SourceBuilder, name: str, returns: int | None
    ) -> None:
        """A pending-eid dispatcher for one shard-protocol hook."""
        b.line(f"def {name}():")
        with b.indented():
            b.line("eid = pending[0]")
            b.line("if eid < 0:")
            with b.indented():
                b.line("return 0" if returns is not None else "return")
            for eid, _, _ in self._exchanges:
                keyword = "if" if eid == 0 else "elif"
                b.line(f"{keyword} eid == {eid}:")
                with b.indented():
                    b.line(f"{name}_{eid}()")
            if returns is not None:
                b.line(f"return {returns}")

    # -- assembly --------------------------------------------------------- #

    def emit(self, fingerprint: str | None = None) -> str:
        self._assign_names()

        callables = SourceBuilder(indent=1)
        for name in sorted(self.image.callables):
            self._emit_callable(name, callables)

        delivery = SourceBuilder(indent=1)
        for eid, exchange, source_buffer in self._exchanges:
            self._emit_deliver_fn(eid, exchange, source_buffer, delivery)
        if self.box is not None:
            self._emit_box_dispatcher(delivery, "publish", returns=None)
            self._emit_box_dispatcher(
                delivery, "stage_interior", returns=self._num_pes
            )
            self._emit_box_dispatcher(delivery, "stage_rim", returns=None)
        delivery.line("def deliver():")
        with delivery.indented():
            delivery.line("eid = pending[0]")
            delivery.line("if eid < 0:")
            with delivery.indented():
                delivery.line("return 0")
            delivery.line("pending[0] = -1")
            for eid, _, _ in self._exchanges:
                keyword = "if" if eid == 0 else "elif"
                delivery.line(f"{keyword} eid == {eid}:")
                with delivery.indented():
                    delivery.line(f"deliver_{eid}()")
            delivery.line(f"return {self._num_pes}")

        out = SourceBuilder()
        boundary = self.plan.boundary
        out.line(
            f"# kernel generated by repro.wse.codegen "
            f"(codegen v{CODEGEN_VERSION}) -- do not edit"
        )
        out.line(
            f"# entry {self.plan.entry!r}; grid "
            f"{self.plan.width}x{self.plan.height}; "
            f"boundary {boundary.kind}({boundary.value!r})"
        )
        if self.rounds > 1:
            out.line(
                f"# temporal block: {self.rounds} rounds per invocation"
            )
        if fingerprint:
            out.line(f"# fingerprint {fingerprint}")
        if self.box is not None:
            y0, y1, x0, x1 = self.box
            out.line(
                f"# shard box rows [{y0}, {y1}) cols [{x0}, {x1}) of a "
                f"{self.geometry.kx}x{self.geometry.ky} decomposition"
            )
            meta = {
                "exchanges": [
                    [eid, exchange.num_chunks * exchange.chunk_size]
                    for eid, exchange, _ in self._exchanges
                ],
                "pub_rows": len(self._pub_row_slots),
                "pub_cols": len(self._pub_col_slots),
            }
            out.line(f"SHARD_META = {meta!r}")
        out.line("def make_kernel(state, plan):")
        with out.indented():
            out.line("counters = state.counters")
            out.line("variables = state.variables")
            out.line("queue = deque()")
            out.line("pending = [-1]")
            for buffer in sorted(self.plan.buffers):
                out.line(f"{self._buffer_names[buffer]} = state.buffers[{buffer!r}]")
            if self.box is not None:
                for eid, _, _ in self._exchanges:
                    out.line(
                        f"rs_{eid}, cs_{eid} = state.seam_snapshots[{eid}]"
                    )
                for (values, orient), name in self._indices.items():
                    expression = f"np.asarray({values!r}, dtype=np.intp)"
                    if orient == "row":
                        expression += "[:, None]"
                    elif orient == "col":
                        expression += "[None, :]"
                    out.line(f"{name} = {expression}")
            # Static whole-grid DSD views, bound (and range-checked) once.
            for key, name in self._views.items():
                buffer, offset, length, stride = key
                dsd = _DsdExpr(buffer, offset, length, stride)
                out.line(
                    f"{name} = {self._buffer(buffer)}[:, :, {self._slice(dsd)}]"
                )
                out.line(
                    f"if {name}.shape[2] != {length}: "
                    f"raise IndexError(\"DSD over '{buffer}' out of range\")"
                )
            # Plan fold tables for the gatherable directions.
            for direction, (rows, cols) in self._gathers.items():
                out.line(
                    f"{rows}, {cols} = plan.gather_indices(({direction[0]}, "
                    f"{direction[1]}))"
                )
            # Per-exchange constants, staging buffers and border prefill.
            height, width = self._grid_dims
            grid = f"{height}, {width}"
            for eid, exchange, _ in self._exchanges:
                if exchange.coefficients is not None:
                    for slot, coefficient in enumerate(exchange.coefficients):
                        out.line(
                            f"c{eid}_{slot} = np.float32({coefficient!r})"
                        )
                if eid in self._fill_flags:
                    out.line(f"fl{eid} = [True]")
                if eid in self._direct_eids:
                    continue  # stages straight into the receive slab
                depth = exchange.chunk_size * len(exchange.directions)
                for chunk in range(exchange.num_chunks):
                    out.line(
                        f"st{eid}_{chunk} = np.empty(({grid}, {depth}), "
                        f"dtype=np.float32)"
                    )
                    for slot, direction in enumerate(exchange.directions):
                        if self.plan.gather_indices(direction) is not None:
                            continue
                        fill = self.plan.halo_table(direction).fill_value
                        z0 = slot * exchange.chunk_size
                        z1 = z0 + exchange.chunk_size
                        value = f"np.float32({fill!r})"
                        if exchange.coefficients is not None:
                            value = f"{value} * c{eid}_{slot}"
                        out.line(
                            f"st{eid}_{chunk}[:, :, {z0}:{z1}] = {value}"
                        )
            for length in sorted(self._scratch):
                out.line(
                    f"{self._scratch[length]} = np.empty(({grid}, {length}), "
                    f"dtype=np.float32)"
                )
            out.extend(callables)
            out.extend(delivery)
            out.line("def drain():")
            with out.indented():
                out.line("while queue and not state.halted:")
                with out.indented():
                    out.line("fn, a = queue.popleft()")
                    out.line("fn(a)")
            out.line("def settled():")
            with out.indented():
                out.line(
                    "return state.halted or (not queue and pending[0] < 0)"
                )
            if self.rounds > 1:
                # The in-kernel round loop: exactly the executor's
                # drain/settled/deliver schedule, minus one Python boundary
                # crossing per round.  ``budget`` bounds the rounds executed
                # per invocation; the caller re-invokes until settled.
                out.line("def run_block(budget):")
                with out.indented():
                    out.line("executed = 0")
                    out.line("while executed < budget:")
                    with out.indented():
                        out.line("drain()")
                        out.line(
                            "if state.halted or "
                            "(not queue and pending[0] < 0):"
                        )
                        with out.indented():
                            out.line("return executed, 'settled'")
                        out.line("eid = pending[0]")
                        out.line("if eid < 0:")
                        with out.indented():
                            out.line("return executed, 'deadlock'")
                        out.line("pending[0] = -1")
                        for eid, _, _ in self._exchanges:
                            keyword = "if" if eid == 0 else "elif"
                            out.line(f"{keyword} eid == {eid}:")
                            with out.indented():
                                out.line(f"deliver_{eid}()")
                        out.line("executed += 1")
                    out.line("return executed, 'budget'")
            fns = ", ".join(
                f"{name!r}: {self._fn_names[name]}"
                for name in sorted(self.image.callables)
            )
            out.line("return {")
            with out.indented():
                out.line(f"'fns': {{{fns}}},")
                out.line("'drain': drain, 'deliver': deliver, "
                         "'settled': settled,")
                if self.box is not None:
                    out.line("'publish': publish, "
                             "'stage_interior': stage_interior,")
                    out.line("'stage_rim': stage_rim,")
                if self.rounds > 1:
                    out.line("'run_block': run_block,")
                out.line("'queue': queue, 'pending': pending,")
            out.line("}")
        return out.text()


def generate_kernel_source(
    image: "ProgramImage",
    plan: ExecutionPlan,
    fingerprint: str | None = None,
    box: tuple[int, int, int, int] | None = None,
    geometry: ShardGeometry | None = None,
    rounds: int = 1,
) -> str:
    """Emit the fused per-round kernel of one (image, plan) as Python source.

    The emission is deterministic: the same image and plan produce
    byte-identical source (names are assigned in sorted/traversal order and
    no environmental state leaks in), which the golden dump test pins.
    With ``box``/``geometry`` the kernel is restricted to one shard box and
    grows the overlapped-exchange hooks (``publish`` / ``stage_interior`` /
    ``stage_rim``) plus a module-level ``SHARD_META`` literal.  With
    ``rounds > 1`` the kernel is a temporal block: it grows a ``run_block``
    hook executing up to that many delivery rounds per invocation, and
    deliveries stage straight into the receive slab where provably safe;
    ``rounds == 1`` emission is byte-identical to not passing the parameter.
    """
    return _KernelEmitter(image, plan, box, geometry, rounds).emit(fingerprint)


# --------------------------------------------------------------------------- #
# The process-wide kernel cache
# --------------------------------------------------------------------------- #


@dataclass
class CompiledKernel:
    """One materialised kernel: fingerprint, source text and factory.

    ``meta`` is the ``SHARD_META`` literal of shard-box kernels (exchange
    snapshot spans and publication slot counts — what the tiled executor
    needs to allocate the shared seam snapshots), ``None`` for whole-grid
    kernels.
    """

    fingerprint: str
    source: str
    make: Callable
    meta: dict | None = None

    def instantiate(self, state, plan: ExecutionPlan) -> dict:
        """Bind the kernel to one executor's live state and plan tables."""
        return self.make(state, plan)


@dataclass
class KernelCacheStatistics:
    """Counters of the process-wide kernel memo (plus store round-trips)."""

    #: served straight from the in-process memo (no codegen, no exec).
    memory_hits: int = 0
    #: source served by a kernel store and exec'd (no codegen).
    disk_hits: int = 0
    #: full code generations.
    codegens: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.codegens


_MEMO: dict[str, CompiledKernel] = {}
_STATISTICS = KernelCacheStatistics()


def kernel_cache_statistics() -> KernelCacheStatistics:
    """The live process-wide kernel cache counters."""
    return _STATISTICS


def reset_kernel_cache() -> None:
    """Empty the memo and zero the counters (tests and benchmarks)."""
    global _STATISTICS
    _MEMO.clear()
    _STATISTICS = KernelCacheStatistics()


def _materialise(fingerprint: str, source: str) -> CompiledKernel:
    namespace: dict[str, Any] = {"np": np, "deque": deque}
    code = compile(source, f"<kernel {fingerprint[:12]}>", "exec")
    exec(code, namespace)
    return CompiledKernel(
        fingerprint,
        source,
        namespace["make_kernel"],
        namespace.get("SHARD_META"),
    )


def _dump(fingerprint: str, source: str) -> None:
    directory = os.environ.get(DUMP_ENV_VAR, "").strip()
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"kernel_{fingerprint[:12]}.py")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(source)


def get_kernel(
    image: "ProgramImage",
    plan: ExecutionPlan,
    store=None,
    box: tuple[int, int, int, int] | None = None,
    geometry: ShardGeometry | None = None,
    rounds: int = 1,
) -> CompiledKernel:
    """The compiled kernel of one (image, plan[, shard box][, block depth]),
    cached by fingerprint.

    Lookup order: the in-process memo, then ``store`` (any object with
    ``get(fingerprint) -> str | None`` and ``put(fingerprint, source)`` —
    see :class:`repro.service.kernels.KernelSourceStore`), then a fresh
    code generation (which populates the store).  Raises
    :class:`KernelCodegenError` when the program cannot be fused; nothing
    is cached in that case.
    """
    fingerprint = kernel_fingerprint(image, plan, box, geometry, rounds)
    kernel = _MEMO.get(fingerprint)
    if kernel is not None:
        _STATISTICS.memory_hits += 1
        return kernel
    source = store.get(fingerprint) if store is not None else None
    if source is not None:
        _STATISTICS.disk_hits += 1
    else:
        source = generate_kernel_source(
            image, plan, fingerprint, box, geometry, rounds
        )
        _STATISTICS.codegens += 1
        if store is not None:
            store.put(fingerprint, source)
    _dump(fingerprint, source)
    kernel = _materialise(fingerprint, source)
    _MEMO[fingerprint] = kernel
    return kernel
