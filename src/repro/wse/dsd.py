"""Data Structure Descriptors as seen by the simulator.

A DSD is an affine iterator over a PE-local buffer: ``(buffer, offset,
length, stride)``.  The DSD compute builtins resolve them to NumPy views of
the owning PE's buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dsd:
    """A 1-D memory DSD."""

    buffer: str
    offset: int
    length: int
    stride: int = 1

    def shifted(self, extra_offset: int) -> "Dsd":
        return Dsd(self.buffer, self.offset + extra_offset, self.length, self.stride)

    def resolve(self, buffers: dict[str, np.ndarray]) -> np.ndarray:
        """A writable NumPy view of the described elements."""
        array = buffers[self.buffer]
        stop = self.offset + self.length * self.stride
        view = array[self.offset : stop : self.stride]
        if view.shape[0] != self.length:
            raise IndexError(
                f"DSD over '{self.buffer}' out of range: offset={self.offset} "
                f"length={self.length} stride={self.stride} buffer={array.shape[0]}"
            )
        return view

    def resolve_columns(self, buffers: dict[str, np.ndarray]) -> np.ndarray:
        """A writable view over whole-grid ``(height, width, z)`` buffers.

        The iterator runs along the z axis of every PE's column at once — the
        vectorized executor's batched equivalent of :meth:`resolve`.
        """
        array = buffers[self.buffer]
        stop = self.offset + self.length * self.stride
        view = array[:, :, self.offset : stop : self.stride]
        if view.shape[-1] != self.length:
            raise IndexError(
                f"DSD over '{self.buffer}' out of range: offset={self.offset} "
                f"length={self.length} stride={self.stride} "
                f"buffer={array.shape[-1]}"
            )
        return view
