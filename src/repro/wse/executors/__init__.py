"""Pluggable execution backends for the WSE fabric simulator.

Two backends ship in-tree:

* ``reference`` — the original per-PE Python interpreter
  (:mod:`repro.wse.executors.reference`): one interpreter loop per PE,
  maximally literal, O(width × height) slow.  The backend of record.
* ``vectorized`` — the lockstep executor
  (:mod:`repro.wse.executors.vectorized`): interprets the SPMD program image
  once and executes every csl-ir op as whole-grid NumPy array math.
  Bit-identical to the reference and several times faster at 8×8+ grids.

Selection, in priority order: the ``executor=`` argument of
:class:`repro.wse.simulator.WseSimulator`, the ``REPRO_EXECUTOR``
environment variable, then the built-in default (``vectorized``).
"""

from repro.wse.executors.base import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV_VAR,
    Executor,
    SimulationStatistics,
    available_executors,
    default_executor_name,
    executor_by_name,
    register_executor,
)

# Importing the backend modules registers them.
from repro.wse.executors.reference import ReferenceExecutor
from repro.wse.executors.vectorized import VectorizedExecutor

__all__ = [
    "DEFAULT_EXECUTOR",
    "EXECUTOR_ENV_VAR",
    "Executor",
    "ReferenceExecutor",
    "SimulationStatistics",
    "VectorizedExecutor",
    "available_executors",
    "default_executor_name",
    "executor_by_name",
    "register_executor",
]
