"""Pluggable execution backends for the WSE fabric simulator.

Five backends ship in-tree, all replaying the same pre-compiled
:class:`~repro.wse.plan.ExecutionPlan`:

* ``reference`` — the original per-PE Python interpreter
  (:mod:`repro.wse.executors.reference`): one interpreter loop per PE,
  maximally literal, O(width × height) slow.  The backend of record.
* ``vectorized`` — the lockstep executor
  (:mod:`repro.wse.executors.vectorized`): interprets the SPMD program image
  once and executes every csl-ir op as whole-grid NumPy array math.
  Bit-identical to the reference and several times faster at 8×8+ grids.
* ``compiled`` — the generated-kernel executor
  (:mod:`repro.wse.executors.compiled`): code-generates the whole delivery
  round from the plan into one fused Python/NumPy function
  (:mod:`repro.wse.codegen`), cached process-wide by content fingerprint.
  Bit-identical to ``vectorized`` and the fastest single-process backend.
* ``tiled`` — the sharded multiprocess executor
  (:mod:`repro.wse.executors.tiled`): partitions the fabric into kx×ky
  shards run on a persistent pool of forked worker processes over
  shared-memory buffers, each shard replaying a box-restricted compiled
  kernel with the seam exchange overlapped against interior compute.
  Bit-identical to ``vectorized`` and faster on large (64×64+) grids
  with 2+ CPUs.
* ``auto`` — the profile-guided dispatcher
  (:mod:`repro.wse.executors.auto`): picks one of the four real backends
  per workload from recorded ``BENCH_*.json`` trajectory rows and the
  host cost model, then delegates everything to it; the decision and its
  rationale are stamped on the run's statistics.

Selection, in priority order: the ``executor=`` argument of
:class:`repro.wse.simulator.WseSimulator`, the ``REPRO_EXECUTOR``
environment variable, then the built-in default (``vectorized``).  Unknown
names raise and list the registered backends.
"""

from repro.wse.executors.base import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV_VAR,
    Executor,
    SimulationStatistics,
    available_executors,
    default_executor_name,
    executor_by_name,
    register_executor,
)

# Importing the backend modules registers them.
from repro.wse.executors.auto import AutoExecutor
from repro.wse.executors.compiled import CompiledExecutor
from repro.wse.executors.reference import ReferenceExecutor
from repro.wse.executors.tiled import TiledExecutor
from repro.wse.executors.vectorized import VectorizedExecutor

__all__ = [
    "DEFAULT_EXECUTOR",
    "EXECUTOR_ENV_VAR",
    "AutoExecutor",
    "CompiledExecutor",
    "Executor",
    "ReferenceExecutor",
    "SimulationStatistics",
    "TiledExecutor",
    "VectorizedExecutor",
    "available_executors",
    "default_executor_name",
    "executor_by_name",
    "register_executor",
]
