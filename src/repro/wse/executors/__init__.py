"""Pluggable execution backends for the WSE fabric simulator.

Four backends ship in-tree, all replaying the same pre-compiled
:class:`~repro.wse.plan.ExecutionPlan`:

* ``reference`` — the original per-PE Python interpreter
  (:mod:`repro.wse.executors.reference`): one interpreter loop per PE,
  maximally literal, O(width × height) slow.  The backend of record.
* ``vectorized`` — the lockstep executor
  (:mod:`repro.wse.executors.vectorized`): interprets the SPMD program image
  once and executes every csl-ir op as whole-grid NumPy array math.
  Bit-identical to the reference and several times faster at 8×8+ grids.
* ``compiled`` — the generated-kernel executor
  (:mod:`repro.wse.executors.compiled`): code-generates the whole delivery
  round from the plan into one fused Python/NumPy function
  (:mod:`repro.wse.codegen`), cached process-wide by content fingerprint.
  Bit-identical to ``vectorized`` and the fastest single-process backend.
* ``tiled`` — the sharded multiprocess executor
  (:mod:`repro.wse.executors.tiled`): partitions the fabric into K×K shards
  run on forked worker processes over shared-memory buffers, with per-round
  seam exchange.  Bit-identical to ``vectorized`` and faster on large
  (32×32+) grids with 2+ CPUs.

Selection, in priority order: the ``executor=`` argument of
:class:`repro.wse.simulator.WseSimulator`, the ``REPRO_EXECUTOR``
environment variable, then the built-in default (``vectorized``).  Unknown
names raise and list the registered backends.
"""

from repro.wse.executors.base import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV_VAR,
    Executor,
    SimulationStatistics,
    available_executors,
    default_executor_name,
    executor_by_name,
    register_executor,
)

# Importing the backend modules registers them.
from repro.wse.executors.compiled import CompiledExecutor
from repro.wse.executors.reference import ReferenceExecutor
from repro.wse.executors.tiled import TiledExecutor
from repro.wse.executors.vectorized import VectorizedExecutor

__all__ = [
    "DEFAULT_EXECUTOR",
    "EXECUTOR_ENV_VAR",
    "CompiledExecutor",
    "Executor",
    "ReferenceExecutor",
    "SimulationStatistics",
    "TiledExecutor",
    "VectorizedExecutor",
    "available_executors",
    "default_executor_name",
    "executor_by_name",
    "register_executor",
]
