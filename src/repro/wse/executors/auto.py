"""The ``auto`` backend: profile-guided dispatch over the real backends.

Every backend replays the same execution plan with identical observable
results, so the only open question per workload is *which one is fastest
on this host* — small fabrics favour the reference/vectorized paths
(kernel generation and forking cost more than they save), large fabrics
favour ``compiled``, and large fabrics on multi-core hosts favour the
sharded ``tiled``/``compiled`` composition.  This dispatcher makes that
choice per simulator instance and then delegates everything to the chosen
backend.

The decision is profile-guided in the spirit of PGO surveys: recorded
``BENCH_simulator.json`` trajectory rows (written by the throughput
benchmarks, host-specific) are consulted first — an exact grid match is
trusted outright, a near-miss is scaled by the PE-count ratio — and only
workloads the trajectory has never seen fall back to the analytic host
cost model in :func:`repro.wse.perf_model.predict_host_seconds`, whose
coefficients are themselves fitted against recorded trajectories.  The
decision and its rationale are stamped on the run's
:class:`SimulationStatistics` (``backend_decision`` /
``backend_rationale``) so every result is auditable.

Environment knobs: ``REPRO_AUTO_BACKEND`` forces the delegate (the
dispatcher still stamps the rationale as forced); ``REPRO_AUTO_TRAJECTORY``
points at an alternative trajectory file (defaults to
``BENCH_simulator.json`` in the working directory, then the repo root).
"""

from __future__ import annotations

import math
import os
import time
from pathlib import Path

import numpy as np

from repro.dialects import arith, csl, scf
from repro.wse.codegen import FUSION_ENV_VAR
from repro.wse.executors.base import (
    Executor,
    SimulationStatistics,
    executor_by_name,
    register_executor,
)
from repro.wse.executors.tiled import shard_grid, usable_cpu_count

#: force the delegate backend, bypassing the decision procedure.
FORCE_ENV_VAR = "REPRO_AUTO_BACKEND"

#: trajectory file consulted for recorded backend timings.
TRAJECTORY_ENV_VAR = "REPRO_AUTO_TRAJECTORY"

#: opt-in flag: when set (non-empty), the dispatcher appends its own
#: observed timing after each run to the trajectory file, so dispatch
#: improves online without anyone re-running the benchmarks.
RECORD_ENV_VAR = "REPRO_AUTO_RECORD"

#: the name online observation rows are recorded under (the dispatcher
#: has no benchmark registry to name the workload from).
OBSERVED_NAME = "auto-observed"

#: delivery rounds assumed when the image's comms schedule cannot be
#: recognised (hand-built test images; the pipeline's generated programs
#: all match :func:`estimate_delivery_rounds`'s loop pattern).
NOMINAL_ROUNDS = 8

#: backends the dispatcher considers (tiled joins when it can actually
#: shard and fork).
_SERIAL_CANDIDATES = ("reference", "vectorized", "compiled")


def _trajectory_path() -> Path:
    override = os.environ.get(TRAJECTORY_ENV_VAR)
    if override:
        return Path(override)
    local = Path.cwd() / "BENCH_simulator.json"
    if local.exists():
        return local
    return Path(__file__).resolve().parents[4] / "BENCH_simulator.json"


def load_recorded_rows(path: Path | None = None) -> list[dict]:
    """The recorded trajectory rows, or ``[]`` when none are available.

    A missing, unreadable or stale-schema trajectory must never break a
    simulation — the dispatcher just falls back to the analytic model.
    """
    from repro.eval.trajectory import read_trajectory

    try:
        return read_trajectory(path if path is not None else _trajectory_path())
    except Exception:
        return []


def _walk_ops(op):
    """The operation and every op nested in its regions, pre-order."""
    yield op
    for region in op.regions:
        for block in region.blocks:
            for child in block.ops:
                yield from _walk_ops(child)


def _count_comms(image, name: str, seen: set[str]) -> int:
    """Comms ops one iteration of the time loop executes, starting at the
    callable ``name`` and following the whole activation chain — direct
    calls, receive/done callbacks and task activations — until it wraps
    back to a callable already on the path (the loop condition)."""
    if name in seen:
        return 0
    seen.add(name)
    callable_op = image.callables.get(name)
    if callable_op is None:
        return 0
    count = 0
    for op in _walk_ops(callable_op):
        if isinstance(op, csl.CommsExchangeOp):
            count += 1
            for callback in (op.recv_callback, op.done_callback):
                if callback:
                    count += _count_comms(image, callback, seen)
        elif isinstance(op, csl.CallOp):
            count += _count_comms(image, op.callee, seen)
        elif isinstance(op, csl.ActivateOp):
            count += _count_comms(image, op.task_name, seen)
    return count


def estimate_delivery_rounds(image) -> int:
    """Delivery rounds one run of ``image`` will take, from its comms
    schedule — or :data:`NOMINAL_ROUNDS` when the schedule is opaque.

    The pipeline lowers every time loop to one shape: a condition task
    loading the step variable, comparing it (``slt``/``sle``) against a
    constant bound, and branching into the loop body, whose activation
    chain re-enters the condition after all exchanges complete.  Trip
    count times exchanges per iteration *is* the delivery-round count —
    each ``csl.comms_exchange`` blocks exactly one round.
    """
    for name, callable_op in image.callables.items():
        for op in _walk_ops(callable_op):
            if not isinstance(op, scf.IfOp):
                continue
            condition = op.condition.owner()
            if (
                not isinstance(condition, arith.CmpiOp)
                or condition.predicate not in ("slt", "sle")
            ):
                continue
            step = condition.lhs.owner()
            bound = condition.rhs.owner()
            if not isinstance(step, csl.LoadVarOp) or not isinstance(
                bound, (csl.ConstantOp, arith.ConstantOp)
            ):
                continue
            initial = image.variables.get(step.var, 0)
            trips = int(bound.value) - int(initial)
            if condition.predicate == "sle":
                trips += 1
            # The walk from the loop body counts one iteration's
            # exchanges: seeding the condition task as already-seen stops
            # the activation chain where it wraps around.
            seen = {name}
            comms = sum(
                _count_comms(image, body_call.callee, seen)
                for block in op.then_region.blocks
                for child in block.ops
                for body_call in _walk_ops(child)
                if isinstance(body_call, csl.CallOp)
            )
            if trips > 0 and comms > 0:
                return trips * comms
    return NOMINAL_ROUNDS


def choose_block_depth(
    executor: str,
    width: int,
    height: int,
    rounds: int,
    cpus: int | None = None,
) -> int:
    """The temporal block depth R the dispatcher asks its delegate for.

    ``compiled`` blocks whenever the loop is long enough to fill a block:
    whole-grid blocking fuses R rounds per Python crossing at zero extra
    compute, so the largest supported depth not exceeding the loop wins.
    ``tiled`` additionally pays margin recompute and full-grid bank
    copies per block, so it only blocks when its shards are wide relative
    to the deep halo (the margin's share of the extended window stays
    small).  The reference/vectorized backends do not block.
    """
    if executor == "compiled":
        for depth in (4, 2):
            if rounds >= depth:
                return depth
        return 1
    if executor == "tiled":
        kx, ky = shard_grid(width, height, cpus)
        side = min(width // kx, height // ky)
        for depth in (4, 2):
            if rounds >= 2 * depth and side >= 16 * depth:
                return depth
        return 1
    return 1


class BackendSelector:
    """Ranks execution backends for a workload: records first, model second."""

    def __init__(self, records: list[dict] | None = None, cpus: int | None = None):
        self.records = (
            records if records is not None else load_recorded_rows()
        )
        self.cpus = cpus if cpus is not None else usable_cpu_count()

    def candidates(self, width: int, height: int) -> tuple[str, ...]:
        kx, ky = shard_grid(width, height, self.cpus)
        if self.cpus >= 2 and kx * ky > 1:
            return _SERIAL_CANDIDATES + ("tiled",)
        return _SERIAL_CANDIDATES

    def _recorded_seconds(
        self, executor: str, width: int, height: int
    ) -> tuple[float, str] | None:
        """Best recorded seconds for this backend, exact grid or scaled.

        Warm-cache rows are preferred over cold (steady-state dispatch
        should not price one-time kernel generation the store has already
        amortised fleet-wide).
        """
        rows = [row for row in self.records if row["executor"] == executor]
        if not rows:
            return None

        def preferred(candidates: list[dict]) -> dict:
            warm = [row for row in candidates if row.get("cache") == "warm"]
            pool = warm or candidates
            return min(pool, key=lambda row: row["seconds"])

        grid = f"{width}x{height}"
        exact = [row for row in rows if row["grid"] == grid]
        if exact:
            row = preferred(exact)
            return float(row["seconds"]), f"recorded on {grid}"

        pes = width * height

        def row_pes(row: dict) -> int:
            w, _, h = row["grid"].partition("x")
            return int(w) * int(h)

        nearest = preferred(
            sorted(
                rows,
                key=lambda row: abs(
                    math.log(max(1, row_pes(row))) - math.log(max(1, pes))
                ),
            )[:1]
        )
        scale = pes / max(1, row_pes(nearest))
        return (
            float(nearest["seconds"]) * scale,
            f"scaled from recorded {nearest['grid']}",
        )

    def predict(
        self,
        executor: str,
        width: int,
        height: int,
        depth: int,
        rounds: int = NOMINAL_ROUNDS,
    ) -> tuple[float, str]:
        """Predicted host seconds and the basis of the prediction."""
        from repro.wse.perf_model import predict_host_seconds

        recorded = self._recorded_seconds(executor, width, height)
        if recorded is not None:
            return recorded
        kx, ky = shard_grid(width, height, self.cpus)
        seconds = predict_host_seconds(
            executor,
            pes=width * height,
            depth=depth,
            rounds=rounds,
            cpus=self.cpus,
            shards=kx * ky,
        )
        return seconds, "host cost model"

    def choose(
        self,
        width: int,
        height: int,
        depth: int,
        rounds: int = NOMINAL_ROUNDS,
    ) -> tuple[str, str]:
        """The chosen backend name and a human-readable rationale."""
        scored = {
            name: self.predict(name, width, height, depth, rounds)
            for name in self.candidates(width, height)
        }
        best = min(scored, key=lambda name: scored[name][0])
        seconds, basis = scored[best]
        ranking = ", ".join(
            f"{name}={scored[name][0]:.4g}s"
            for name in sorted(scored, key=lambda name: scored[name][0])
        )
        rationale = (
            f"{best} predicted fastest for {width}x{height} "
            f"(depth {depth}, {self.cpus} cpus) via {basis}: {ranking}"
        )
        return best, rationale


@register_executor
class AutoExecutor(Executor):
    """Dispatch to the predicted-fastest backend; delegate everything."""

    name = "auto"

    def __init__(self, image, width, height, plan=None):
        # The statistics property below consults the delegate; it must
        # exist (as None) before super().__init__ assigns statistics.
        self._delegate: Executor | None = None
        self._own_statistics = SimulationStatistics()
        super().__init__(image, width, height, plan)
        rounds = estimate_delivery_rounds(image)
        forced = os.environ.get(FORCE_ENV_VAR, "").strip()
        if forced:
            choice = forced
            rationale = f"forced by {FORCE_ENV_VAR}={forced}"
        else:
            selector = BackendSelector()
            depth = max(self.plan.buffers.values(), default=1)
            choice, rationale = selector.choose(
                width, height, depth, rounds=rounds
            )
        delegate_cls = executor_by_name(choice)
        kwargs = {}
        #: the temporal block depth priced for this workload (1 = unblocked).
        self.block_depth = 1
        if choice in ("compiled", "tiled") and not os.environ.get(
            FUSION_ENV_VAR
        ):
            # The env override stays authoritative when present; otherwise
            # the dispatcher prices R from the estimated round count.
            self.block_depth = choose_block_depth(choice, width, height, rounds)
            if self.block_depth > 1:
                kwargs["rounds_per_block"] = self.block_depth
        self._delegate = delegate_cls(image, width, height, self.plan, **kwargs)
        #: the decision surface: which backend runs, and why.
        self.backend_name = choice
        self.backend_rationale = rationale
        self._stamp()

    # The delegate owns the live statistics; before it exists, assignments
    # from the base constructor land on a private placeholder.
    @property
    def statistics(self) -> SimulationStatistics:
        if self._delegate is None:
            return self._own_statistics
        return self._delegate.statistics

    @statistics.setter
    def statistics(self, value: SimulationStatistics) -> None:
        if self._delegate is None:
            self._own_statistics = value
        else:
            self._delegate.statistics = value

    def _stamp(self) -> None:
        statistics = self.statistics
        statistics.backend_decision = self.backend_name
        statistics.backend_rationale = self.backend_rationale

    # -- delegation ------------------------------------------------------ #

    def load_field(self, name: str, columns: np.ndarray) -> None:
        self._delegate.load_field(name, columns)

    def read_field(self, name: str) -> np.ndarray:
        return self._delegate.read_field(name)

    def pe(self, x: int, y: int):
        return self._delegate.pe(x, y)

    @property
    def grid(self) -> list[list]:
        return self._delegate.grid

    def launch(self, entry: str | None = None) -> None:
        self._delegate.launch(entry)

    def run(self, max_rounds: int = 1_000_000) -> SimulationStatistics:
        rounds_before = self._delegate.statistics.rounds
        started = time.perf_counter()
        statistics = self._delegate.run(max_rounds)
        elapsed = time.perf_counter() - started
        self._stamp()
        if os.environ.get(RECORD_ENV_VAR) and statistics.rounds > rounds_before:
            self._record_observation(elapsed)
        return statistics

    def _record_observation(self, seconds: float) -> None:
        """Append this run's observed timing to the trajectory (opt-in).

        One row per (workload, grid, backend, day): reruns the same day
        replace their row, so the file stays bounded while the recorded
        corpus still tracks host drift.  Recording must never break a
        simulation — any failure is swallowed.
        """
        from repro.eval.trajectory import make_record, merge_trajectory

        try:
            record = make_record(
                OBSERVED_NAME,
                f"{self.width}x{self.height}",
                self.backend_name,
                seconds,
                1.0,
                r=self.block_depth if self.block_depth > 1 else None,
                day=time.strftime("%Y-%m-%d"),
            )
            merge_trajectory(_trajectory_path(), [record])
        except Exception:
            pass

    # -- unused base hooks (the delegate drives its own rounds) ---------- #

    def _drain_tasks(self) -> None:  # pragma: no cover
        raise AssertionError("auto delegates execution to its chosen backend")

    def _all_settled(self) -> bool:  # pragma: no cover
        raise AssertionError("auto delegates execution to its chosen backend")

    def _deliver_round(self) -> int:  # pragma: no cover
        raise AssertionError("auto delegates execution to its chosen backend")

    def _collect_statistics(self) -> None:  # pragma: no cover
        raise AssertionError("auto delegates execution to its chosen backend")
