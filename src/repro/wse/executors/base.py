"""The execution-backend protocol and registry.

An *executor* owns the runtime state of one simulated fabric — PE buffers,
module variables, task queues — and drives the generated csl-ir program to
completion in delivery rounds.  Every executor exposes the same host-side
API (``load_field`` / ``execute`` / ``read_field`` / ``pe`` / ``statistics``)
so :class:`repro.wse.simulator.WseSimulator` can act as a thin facade over
whichever backend is selected.

Backends register themselves under a short name; the active backend is
chosen per simulator instance (``WseSimulator(..., executor="...")``) or
process-wide through the ``REPRO_EXECUTOR`` environment variable.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, ClassVar, Iterable

import numpy as np

from repro.ir.exceptions import InterpretationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.wse.interpreter import ProgramImage
    from repro.wse.plan import ExecutionPlan

#: environment variable selecting the process-wide default backend.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: backend used when neither the API nor the environment chooses one.
DEFAULT_EXECUTOR = "vectorized"


@dataclass
class SimulationStatistics:
    """Aggregate activity counters of one simulation run.

    The counters are *semantically identical* across executors: every backend
    must report the numbers the per-PE reference interpretation would have
    produced, whatever its internal execution strategy.
    """

    rounds: int = 0
    tasks_run: int = 0
    exchanges: int = 0
    dsd_ops: int = 0
    dsd_elements: int = 0
    wavelets_sent: int = 0
    max_pe_memory_bytes: int = 0
    #: host-side synchronisation costs of partitioned execution (the tiled
    #: backend's publication spin-wait and round barrier).  Real work, but
    #: backend-specific: excluded from equality so cross-backend statistics
    #: comparisons stay meaningful; still summed by :meth:`merge`.
    seam_spins: int = field(default=0, compare=False)
    seam_backoffs: int = field(default=0, compare=False)
    barrier_waits: int = field(default=0, compare=False)
    #: which backend the ``auto`` dispatcher delegated to, and why.  Not
    #: activity counters: excluded from equality (cross-backend statistics
    #: comparisons stay meaningful) and from :meth:`merge`.
    backend_decision: str = field(default="", compare=False)
    backend_rationale: str = field(default="", compare=False)
    #: delivery rounds fused per kernel invocation (temporal blocking);
    #: 0 when the backend ran unblocked.  Descriptive, not additive.
    block_depth: int = field(default=0, compare=False)

    #: descriptive fields :meth:`merge` must not fold.
    _METADATA_FIELDS: ClassVar[frozenset[str]] = frozenset(
        {"backend_decision", "backend_rationale", "block_depth"}
    )

    @classmethod
    def merge(
        cls, parts: "Iterable[SimulationStatistics]"
    ) -> "SimulationStatistics":
        """Fold several statistics into one: counters sum, peak memory maxes.

        This is the aggregation rule for partitioned execution — the tiled
        backend merges its per-shard statistics with it — and for any host
        rolling several runs up into one report.  ``max_pe_memory_bytes`` is
        a per-PE peak, not activity, so it takes the maximum; metadata
        fields pass through from the first part carrying them.
        """
        merged = cls()
        for part in parts:
            for spec in fields(cls):
                if spec.name in cls._METADATA_FIELDS:
                    if not getattr(merged, spec.name):
                        setattr(merged, spec.name, getattr(part, spec.name))
                elif spec.name == "max_pe_memory_bytes":
                    merged.max_pe_memory_bytes = max(
                        merged.max_pe_memory_bytes, part.max_pe_memory_bytes
                    )
                else:
                    setattr(
                        merged,
                        spec.name,
                        getattr(merged, spec.name) + getattr(part, spec.name),
                    )
        return merged


def missing_field_error(name: str, available, coords: tuple[int, int]) -> KeyError:
    """The diagnosable error for a host access to an unknown field."""
    listing = ", ".join(sorted(available)) or "<none>"
    return KeyError(
        f"unknown field '{name}' on PE {coords}; available buffers: {listing}"
    )


class Executor(ABC):
    """One execution backend for a pre-processed program image.

    Subclasses implement the four hooks of the delivery-round loop
    (:meth:`_drain_tasks`, :meth:`_all_settled`, :meth:`_deliver_round`,
    :meth:`_collect_statistics`) plus host-side data movement; the loop
    itself — and with it the deadlock/divergence diagnostics — is shared.
    """

    #: registry key; subclasses must override.
    name = "abstract"

    def __init__(
        self,
        image: "ProgramImage",
        width: int,
        height: int,
        plan: "ExecutionPlan | None" = None,
    ):
        from repro.wse.plan import ExecutionPlan

        self.image = image
        self.width = width
        self.height = height
        #: the pre-compiled execution plan every backend replays.  The
        #: simulator facade compiles it once and hands it down; direct
        #: constructions (tests, tools) get their own.
        self.plan = (
            plan
            if plan is not None
            else ExecutionPlan.compile(image, width, height)
        )
        self.statistics = SimulationStatistics()
        #: set by :meth:`launch`, consumed by :meth:`run`: a run with no
        #: newly-launched entry is a settled no-op on every backend.
        self._pending_launch = False

    # ------------------------------------------------------------------ #
    # Host-side data movement (the memcpy library's role)
    # ------------------------------------------------------------------ #

    @abstractmethod
    def load_field(self, name: str, columns: np.ndarray) -> None:
        """Scatter a ``(width, height, z)`` array of columns onto the PEs."""

    @abstractmethod
    def read_field(self, name: str) -> np.ndarray:
        """Gather a field back into a ``(width, height, z)`` array."""

    @abstractmethod
    def pe(self, x: int, y: int):
        """Per-PE state view: ``buffers``, ``counters``, ``memory_in_use()``."""

    def _check_pe_coords(self, x: int, y: int) -> None:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(
                f"PE ({x}, {y}) outside the {self.width}x{self.height} fabric"
            )

    @property
    @abstractmethod
    def grid(self) -> list[list]:
        """The full fabric as rows of per-PE state views."""

    def _check_columns(self, name: str, columns: np.ndarray, z_length: int) -> None:
        if columns.shape[:2] != (self.width, self.height):
            raise ValueError(
                f"expected columns of shape ({self.width}, {self.height}, z), "
                f"got {columns.shape}"
            )
        if columns.shape[2] != z_length:
            raise ValueError(
                f"column length {columns.shape[2]} does not match buffer "
                f"'{name}' of length {z_length}"
            )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    @abstractmethod
    def launch(self, entry: str | None = None) -> None:
        """Invoke the host-callable entry point on every PE."""

    def run(self, max_rounds: int = 1_000_000) -> SimulationStatistics:
        """Run delivery rounds until every PE has halted.

        Without a :meth:`launch` since the last run there is nothing to
        drive: the statistics are returned unchanged (re-collecting would
        double-fold the cumulative per-PE counters).  The guard lives here
        so the no-op semantics are identical on every backend; backends
        with their own round scheduling override :meth:`_run_rounds`.
        """
        if not self._pending_launch:
            return self.statistics
        self._pending_launch = False
        return self._run_rounds(max_rounds)

    def _run_rounds(self, max_rounds: int) -> SimulationStatistics:
        """Drive the delivery-round loop (hook-based default)."""
        for _ in range(max_rounds):
            self._drain_tasks()
            if self._all_settled():
                break
            delivered = self._deliver_round()
            self.statistics.rounds += 1
            if delivered == 0:
                raise InterpretationError(
                    "deadlock: PEs are neither halted nor waiting on an exchange"
                )
        else:
            raise InterpretationError(f"simulation exceeded {max_rounds} rounds")

        self._collect_statistics()
        return self.statistics

    def execute(self, entry: str | None = None) -> SimulationStatistics:
        """Convenience: launch then run to completion."""
        self.launch(entry)
        return self.run()

    # ------------------------------------------------------------------ #
    # Delivery-round hooks
    # ------------------------------------------------------------------ #

    @abstractmethod
    def _drain_tasks(self) -> None:
        """Run every PE's queued tasks until it halts or blocks."""

    @abstractmethod
    def _all_settled(self) -> bool:
        """True when every PE is halted or idle (simulation complete)."""

    @abstractmethod
    def _deliver_round(self) -> int:
        """Deliver all pending exchanges; returns the number delivered."""

    @abstractmethod
    def _collect_statistics(self) -> None:
        """Fold per-PE activity into :attr:`statistics`."""


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

_REGISTRY: dict[str, type[Executor]] = {}


def register_executor(cls: type[Executor]) -> type[Executor]:
    """Class decorator registering an executor under its ``name``.

    Re-registering the same class is a no-op (module re-imports); a
    *different* class claiming a taken name is rejected — silently shadowing
    a backend would make ``REPRO_EXECUTOR`` selection ambiguous.
    """
    if cls.name == Executor.name:
        raise ValueError("executors must define a registry name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"executor name '{cls.name}' is already registered to "
            f"{existing.__qualname__}; pick a distinct registry name"
        )
    _REGISTRY[cls.name] = cls
    return cls


def available_executors() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def executor_by_name(name: str) -> type[Executor]:
    """Look up a backend; unknown names raise with the available choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown executor '{name}'; available executors: "
            f"{', '.join(available_executors())}"
        ) from None


def default_executor_name() -> str:
    """The process-wide default: ``REPRO_EXECUTOR`` or the built-in default."""
    return os.environ.get(EXECUTOR_ENV_VAR) or DEFAULT_EXECUTOR
