"""The compiled backend: one generated, fused per-round kernel.

Where the ``vectorized`` backend still *interprets* the csl-ir program once
per delivery round (dict dispatch per op, slice construction per DSD
operand, fresh staging arrays per exchange), this backend asks
:mod:`repro.wse.codegen` to walk the :class:`~repro.wse.plan.ExecutionPlan`
once and emit the whole round as a single Python/NumPy function: straight
-line task bodies, bind-time hoisted DSD views, ``out=``-form ufuncs and
preallocated exchange staging.  The generated kernel is cached process-wide
by its content fingerprint (and optionally through a service-level source
store), so repeated simulations of the same program pay code generation
exactly once.

The numerical semantics are the interpreter's, statement for statement —
fields and :class:`~repro.wse.executors.base.SimulationStatistics` stay
bit-identical to ``vectorized`` (the golden equivalence tests pin this).

Programs using constructs the generator does not fuse (none the pipeline
emits, but hand-built test images can) fall back to plain vectorized
interpretation; :attr:`CompiledExecutor.fallback_reason` records why.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir.exceptions import InterpretationError
from repro.wse.codegen import KernelCodegenError, get_kernel
from repro.wse.executors.base import register_executor
from repro.wse.executors.vectorized import VectorizedExecutor
from repro.wse.interpreter import ProgramImage

if TYPE_CHECKING:  # pragma: no cover
    from repro.wse.plan import ExecutionPlan


@register_executor
class CompiledExecutor(VectorizedExecutor):
    """Run the fused generated kernel; interpret only as a fallback."""

    name = "compiled"

    def __init__(
        self,
        image: ProgramImage,
        width: int,
        height: int,
        plan: "ExecutionPlan | None" = None,
    ):
        super().__init__(image, width, height, plan)
        #: the bound kernel hooks, or None when interpretation is active.
        self.kernel: dict | None = None
        #: why code generation was declined, for diagnostics and tests.
        self.fallback_reason: str | None = None
        #: content fingerprint of the generated kernel (None on fallback).
        self.kernel_fingerprint: str | None = None
        try:
            compiled = get_kernel(image, self.plan)
        except KernelCodegenError as error:
            self.fallback_reason = str(error)
        else:
            self.kernel_fingerprint = compiled.fingerprint
            self.kernel = compiled.instantiate(self.state, self.plan)

    # ------------------------------------------------------------------ #
    # Execution hooks: delegate to the kernel, fall back to the
    # inherited vectorized interpretation when codegen declined.
    # ------------------------------------------------------------------ #

    def launch(self, entry: str | None = None) -> None:
        if self.kernel is None:
            super().launch(entry)
            return
        entry_name = entry if entry is not None else self.image.entry
        fn = self.kernel["fns"].get(entry_name)
        if fn is None:
            raise InterpretationError(f"unknown function or task '{entry_name}'")
        fn()
        self._pending_launch = True

    def _drain_tasks(self) -> None:
        if self.kernel is None:
            super()._drain_tasks()
            return
        self.kernel["drain"]()

    def _all_settled(self) -> bool:
        if self.kernel is None:
            return super()._all_settled()
        return self.kernel["settled"]()

    def _deliver_round(self) -> int:
        if self.kernel is None:
            return super()._deliver_round()
        return self.kernel["deliver"]()
