"""The compiled backend: one generated, fused per-round kernel.

Where the ``vectorized`` backend still *interprets* the csl-ir program once
per delivery round (dict dispatch per op, slice construction per DSD
operand, fresh staging arrays per exchange), this backend asks
:mod:`repro.wse.codegen` to walk the :class:`~repro.wse.plan.ExecutionPlan`
once and emit the whole round as a single Python/NumPy function: straight
-line task bodies, bind-time hoisted DSD views, ``out=``-form ufuncs and
preallocated exchange staging.  The generated kernel is cached process-wide
by its content fingerprint (and optionally through a service-level source
store), so repeated simulations of the same program pay code generation
exactly once.

The numerical semantics are the interpreter's, statement for statement —
fields and :class:`~repro.wse.executors.base.SimulationStatistics` stay
bit-identical to ``vectorized`` (the golden equivalence tests pin this).

Programs using constructs the generator does not fuse (none the pipeline
emits, but hand-built test images can) fall back to plain vectorized
interpretation; :attr:`CompiledExecutor.fallback_reason` records why.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir.exceptions import InterpretationError
from repro.wse.codegen import (
    KernelCodegenError,
    get_kernel,
    resolve_block_depth,
)
from repro.wse.executors.base import SimulationStatistics, register_executor
from repro.wse.executors.vectorized import VectorizedExecutor
from repro.wse.interpreter import ProgramImage

if TYPE_CHECKING:  # pragma: no cover
    from repro.wse.plan import ExecutionPlan


@register_executor
class CompiledExecutor(VectorizedExecutor):
    """Run the fused generated kernel; interpret only as a fallback.

    With a temporal block depth R > 1 (``rounds_per_block`` argument or the
    ``REPRO_FUSION_ROUNDS`` environment override) the bound kernel carries
    the round loop itself (``run_block``): up to R delivery rounds execute
    per Python boundary crossing, byte-identical to unblocked execution.
    """

    name = "compiled"

    def __init__(
        self,
        image: ProgramImage,
        width: int,
        height: int,
        plan: "ExecutionPlan | None" = None,
        rounds_per_block: int | None = None,
    ):
        super().__init__(image, width, height, plan)
        #: the bound kernel hooks, or None when interpretation is active.
        self.kernel: dict | None = None
        #: why code generation was declined, for diagnostics and tests.
        self.fallback_reason: str | None = None
        #: why the temporal block was declined (runs unblocked instead).
        self.block_fallback_reason: str | None = None
        #: content fingerprint of the generated kernel (None on fallback).
        self.kernel_fingerprint: str | None = None
        self._rounds_per_block = resolve_block_depth(rounds_per_block)
        compiled = None
        if self._rounds_per_block > 1:
            # The blocked kernel *is* the kernel: binding a second unblocked
            # kernel to the same state would create a parallel task queue.
            try:
                compiled = get_kernel(
                    image, self.plan, rounds=self._rounds_per_block
                )
            except KernelCodegenError as error:
                self.block_fallback_reason = str(error)
                self._rounds_per_block = 1
            except TypeError:
                # A replacement get_kernel (tests monkeypatch it) that
                # predates the rounds parameter: run unblocked through it.
                self.block_fallback_reason = (
                    "kernel provider does not support temporal blocking"
                )
                self._rounds_per_block = 1
        if compiled is None:
            try:
                compiled = get_kernel(image, self.plan)
            except KernelCodegenError as error:
                self.fallback_reason = str(error)
        if compiled is not None:
            self.kernel_fingerprint = compiled.fingerprint
            self.kernel = compiled.instantiate(self.state, self.plan)

    # ------------------------------------------------------------------ #
    # Execution hooks: delegate to the kernel, fall back to the
    # inherited vectorized interpretation when codegen declined.
    # ------------------------------------------------------------------ #

    def launch(self, entry: str | None = None) -> None:
        if self.kernel is None:
            super().launch(entry)
            return
        entry_name = entry if entry is not None else self.image.entry
        fn = self.kernel["fns"].get(entry_name)
        if fn is None:
            raise InterpretationError(f"unknown function or task '{entry_name}'")
        fn()
        self._pending_launch = True

    def _drain_tasks(self) -> None:
        if self.kernel is None:
            super()._drain_tasks()
            return
        self.kernel["drain"]()

    def _all_settled(self) -> bool:
        if self.kernel is None:
            return super()._all_settled()
        return self.kernel["settled"]()

    def _deliver_round(self) -> int:
        if self.kernel is None:
            return super()._deliver_round()
        return self.kernel["deliver"]()

    def _run_rounds(self, max_rounds: int) -> SimulationStatistics:
        if self.kernel is None or "run_block" not in self.kernel:
            return super()._run_rounds(max_rounds)
        # Temporal blocking: the kernel's run_block executes up to R rounds
        # per invocation on exactly the base drain/settled/deliver schedule,
        # so termination, deadlock and round-budget semantics match the
        # inherited loop case for case.
        run_block = self.kernel["run_block"]
        remaining = max_rounds
        while True:
            if remaining <= 0:
                raise InterpretationError(
                    f"simulation exceeded {max_rounds} rounds"
                )
            executed, status = run_block(
                min(self._rounds_per_block, remaining)
            )
            self.statistics.rounds += executed
            remaining -= executed
            if status == "settled":
                break
            if status == "deadlock":
                raise InterpretationError(
                    "deadlock: PEs are neither halted nor waiting on an "
                    "exchange"
                )
        self._collect_statistics()
        self.statistics.block_depth = self._rounds_per_block
        return self.statistics
