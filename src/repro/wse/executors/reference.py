"""The per-PE reference backend: one Python interpreter loop per PE.

This is the original execution strategy of the fabric simulator — an
independent :class:`~repro.wse.interpreter.PeInterpreter` per processing
element, with the chunked halo exchange delivered PE by PE through
:class:`~repro.wse.runtime.CommsRuntime`.  It is O(width × height) slow but
maximally literal, which makes it the backend of record: the vectorized
backend is validated bit-for-bit against it.
"""

from __future__ import annotations

import numpy as np

from repro.wse.executors.base import (
    Executor,
    missing_field_error,
    register_executor,
)
from repro.wse.interpreter import PeInterpreter, ProgramImage
from repro.wse.pe import ProcessingElement
from repro.wse.runtime import CommsRuntime


@register_executor
class ReferenceExecutor(Executor):
    """Interpret the program image once per PE (the original simulator)."""

    name = "reference"

    def __init__(
        self,
        image: ProgramImage,
        width: int,
        height: int,
        plan=None,
    ):
        super().__init__(image, width, height, plan)
        self._grid: list[list[ProcessingElement]] = [
            [ProcessingElement(x, y) for x in range(width)] for y in range(height)
        ]
        self.interpreters: dict[tuple[int, int], PeInterpreter] = {}
        for row in self._grid:
            for pe in row:
                interpreter = PeInterpreter(image, pe, self.plan)
                interpreter.initialise()
                self.interpreters[(pe.x, pe.y)] = interpreter
        self.runtime = CommsRuntime(
            self._grid, boundary=self.plan.boundary, plan=self.plan
        )

    # ------------------------------------------------------------------ #

    @property
    def grid(self) -> list[list[ProcessingElement]]:
        return self._grid

    def pe(self, x: int, y: int) -> ProcessingElement:
        self._check_pe_coords(x, y)
        return self._grid[y][x]

    def _field_buffer(self, pe: ProcessingElement, name: str) -> np.ndarray:
        try:
            return pe.buffers[name]
        except KeyError:
            raise missing_field_error(name, pe.buffers, (pe.x, pe.y)) from None

    def load_field(self, name: str, columns: np.ndarray) -> None:
        self._check_columns(
            name, columns, self._field_buffer(self.pe(0, 0), name).shape[0]
        )
        for y in range(self.height):
            for x in range(self.width):
                buffer = self._field_buffer(self.pe(x, y), name)
                buffer[:] = columns[x, y].astype(np.float32)

    def read_field(self, name: str) -> np.ndarray:
        z_length = self._field_buffer(self.pe(0, 0), name).shape[0]
        result = np.zeros((self.width, self.height, z_length), dtype=np.float32)
        for y in range(self.height):
            for x in range(self.width):
                result[x, y, :] = self._field_buffer(self.pe(x, y), name)
        return result

    # ------------------------------------------------------------------ #

    def launch(self, entry: str | None = None) -> None:
        entry_name = entry if entry is not None else self.image.entry
        for interpreter in self.interpreters.values():
            interpreter.run_callable(entry_name)
        self._pending_launch = True

    def _drain_tasks(self) -> None:
        for interpreter in self.interpreters.values():
            interpreter.run_pending_tasks()

    def _all_settled(self) -> bool:
        return all(pe.halted or pe.is_idle for row in self._grid for pe in row)

    def _deliver_round(self) -> int:
        return self.runtime.deliver_round(self.interpreters)

    def _collect_statistics(self) -> None:
        stats = self.statistics
        for row in self._grid:
            for pe in row:
                stats.tasks_run += pe.counters["tasks_run"]
                stats.exchanges += pe.counters["exchanges"]
                stats.dsd_ops += pe.counters["dsd_ops"]
                stats.dsd_elements += pe.counters["dsd_elements"]
                stats.wavelets_sent += pe.counters["wavelets_sent"]
                stats.max_pe_memory_bytes = max(
                    stats.max_pe_memory_bytes, pe.memory_in_use()
                )
