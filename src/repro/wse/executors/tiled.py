"""The tiled backend: K×K fabric shards on a multiprocess pool.

The vectorized lockstep executor turned the per-PE interpretation into
whole-grid array math; this backend distributes that math.  The fabric is
partitioned into a K×K grid of rectangular *shards*, each owned by one
worker process.  Every buffer of the program lives in one full-grid
shared-memory array (an anonymous ``mmap`` backing a
``multiprocessing.RawArray``), so

* each worker's compute is ordinary lockstep interpretation over *views*
  restricted to its shard rows/columns — the identical NumPy ufuncs on a
  sub-rectangle are bit-identical to the vectorized whole-grid op;
* the per-round *seam exchange* between shards needs no copies or message
  passing: a shard gathers the halo data it pulls from neighbouring shards
  straight out of the shared full-grid source array, using the same
  plan-compiled fold tables as every other backend (outer fabric borders
  keep the program's boundary semantics; seams are plain interior reads).

Correctness of the two-phase exchange (all sends snapshot neighbour values
*as scheduled*, before any receive callback mutates a buffer) is preserved
across processes by two barriers per delivery round: one after all shards
have drained their tasks (no shard snapshots while another still computes),
one after all shards have snapshotted (no shard writes while another still
reads).  Because the programs are strictly SPMD, every shard runs the same
uniform control flow and settles in the same round, so no further consensus
is needed.

Shard workers are forked, which shares the program image and plan for free;
platforms without ``fork`` (and degenerate 1-shard grids) fall back to
driving the shards sequentially in-process on the exact same two-phase
schedule — bit-identical, merely not parallel.  ``REPRO_TILED_SHARDS``
overrides the shard-grid extent K; when unset K is derived from the usable
CPU count (one worker per CPU, square-ish) and clamped so no shard is
thinner than :data:`MIN_SHARD_SIDE` PEs per side — below that, fork and
barrier overhead dominate the per-shard array math.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import traceback
from dataclasses import dataclass

import numpy as np

from repro.ir.exceptions import InterpretationError
from repro.wse.executors.base import (
    Executor,
    SimulationStatistics,
    missing_field_error,
    register_executor,
)
from repro.wse.executors.vectorized import (
    GridState,
    LockstepInterpreter,
    deliver_exchange_chunks,
    stage_exchange_chunks,
)
from repro.wse.interpreter import ProgramImage
from repro.wse.pe import PE_COUNTER_NAMES, new_pe_counters
from repro.wse.plan import ExecutionPlan

#: environment variable overriding the shard-grid extent (K of K×K).
SHARD_ENV_VAR = "REPRO_TILED_SHARDS"

#: smallest shard side the auto heuristic will create: thinner shards pay
#: more in fork + per-round barrier overhead than their slice of the array
#: math is worth.
MIN_SHARD_SIDE = 4

#: ceiling on any single barrier wait / result collection (seconds); shard
#: divergence (which SPMD uniformity rules out) surfaces as an error
#: instead of a hang.
SYNC_TIMEOUT_SECONDS = 600.0


def usable_cpu_count() -> int:
    """CPUs this process may actually schedule shard workers on.

    Affinity-aware: plain ``os.cpu_count()`` over-reports inside
    affinity-restricted containers, which would fork workers that only
    time-slice one core.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def shard_extent(width: int, height: int, cpus: int | None = None) -> int:
    """The shard-grid extent K: ``REPRO_TILED_SHARDS``, clamped so no
    shard is empty — or, when the variable is unset, a K derived from the
    usable CPU count (K² workers ≈ one per CPU) and the fabric (no shard
    thinner than :data:`MIN_SHARD_SIDE` PEs per side)."""
    override = os.environ.get(SHARD_ENV_VAR, "").strip()
    if override:
        try:
            requested = int(override)
        except ValueError:
            raise ValueError(
                f"invalid {SHARD_ENV_VAR}={override!r}: expected a positive "
                f"integer shard-grid extent"
            ) from None
        if requested < 1:
            raise ValueError(
                f"invalid {SHARD_ENV_VAR}={requested}: the shard-grid extent "
                f"must be >= 1"
            )
        return max(1, min(requested, width, height))
    if cpus is None:
        cpus = usable_cpu_count()
    derived = min(
        math.isqrt(max(1, cpus)),
        width // MIN_SHARD_SIDE,
        height // MIN_SHARD_SIDE,
    )
    return max(1, min(derived, width, height))


def shard_boxes(
    width: int, height: int, extent: int
) -> tuple[tuple[int, int, int, int], ...]:
    """K×K rectangular shards ``(y0, y1, x0, x1)`` tiling the fabric.

    Rows and columns are split into K nearly-equal bands (the first
    ``remainder`` bands one wider), so every PE belongs to exactly one
    shard and uneven fabrics stay balanced.
    """

    def bands(total: int) -> list[tuple[int, int]]:
        base, remainder = divmod(total, extent)
        edges = [0]
        for band in range(extent):
            edges.append(edges[-1] + base + (1 if band < remainder else 0))
        return [(edges[i], edges[i + 1]) for i in range(extent)]

    return tuple(
        (y0, y1, x0, x1)
        for y0, y1 in bands(height)
        for x0, x1 in bands(width)
    )


@dataclass
class ShardResult:
    """What one shard worker reports back after running to completion."""

    rounds: int
    counters: dict[str, int]
    variables: dict[str, float]
    halted: bool
    pe_memory_bytes: int


class ShardState(GridState):
    """One shard's lockstep state over views of the shared full-grid buffers.

    A :class:`~repro.wse.executors.vectorized.GridState` whose ``buffers``
    are writable sub-rectangle views of the parent's shared-memory arrays,
    so every DSD compute op the interpreter executes touches exactly this
    shard's rows and columns of shared memory — and whose allocation hook
    maps onto those pre-existing views instead of allocating.
    """

    def __init__(
        self,
        full_buffers: dict[str, np.ndarray],
        box: tuple[int, int, int, int],
    ):
        y0, y1, x0, x1 = box
        super().__init__(width=x1 - x0, height=y1 - y0)
        self.buffers = {
            name: array[y0:y1, x0:x1] for name, array in full_buffers.items()
        }

    def allocate(self, name: str, size: int) -> None:
        # The parent pre-allocated every buffer in shared memory; an unknown
        # allocation here would be a plan/image mismatch.
        if name not in self.buffers:
            raise InterpretationError(
                f"shard asked to allocate unknown buffer '{name}'"
            )


class ShardRunner:
    """Replays the execution plan for one shard of the fabric.

    Exposes the four steps of a delivery round — :meth:`drain`,
    :attr:`settled`, :meth:`stage`, :meth:`deliver` — so the same runner
    serves both the barrier-stepped worker processes and the sequential
    in-process fallback.
    """

    def __init__(
        self,
        image: ProgramImage,
        plan: ExecutionPlan,
        full_buffers: dict[str, np.ndarray],
        box: tuple[int, int, int, int],
        variables: dict[str, float] | None = None,
        halted: bool = False,
    ):
        self.plan = plan
        self.full_buffers = full_buffers
        self.box = box
        y0, y1, x0, x1 = box
        self.shard_height = y1 - y0
        self.shard_width = x1 - x0
        self.state = ShardState(full_buffers, box)
        # Scalar state carried over from a previous run of the same
        # executor (the other backends keep one live interpreter state, so
        # a relaunch must resume from it to stay interchangeable).
        if variables:
            self.state.variables.update(variables)
        self.state.halted = halted
        self.interpreter = LockstepInterpreter(image, self.state, plan)
        self.interpreter.initialise()
        self._staged: list[np.ndarray] | None = None
        #: per-direction shard gather spec, resolved from the plan's global
        #: fold tables once and replayed every round.
        self._gathers: dict[tuple[int, int], tuple] = {}

    # -- plan restriction ------------------------------------------------ #

    def _shard_gather(self, direction: tuple[int, int]):
        """The plan's halo table restricted to this shard's rows/columns.

        ``("gather", rows, cols)`` — every source coordinate resolves onto
        the fabric: one fancy-index gather from the shared full-grid array.
        ``("fill", fill_value, dest_box, source_box)`` — Dirichlet path:
        constant fill with an interior shifted-slice rectangle (both boxes
        in local shard coordinates / global source coordinates).
        """
        key = (direction[0], direction[1])
        spec = self._gathers.get(key)
        if spec is None:
            table = self.plan.halo_table(key)
            y0, y1, x0, x1 = self.box
            rows = table.rows[y0:y1]
            cols = table.cols[x0:x1]
            if None not in rows and None not in cols:
                spec = (
                    "gather",
                    np.asarray(rows, dtype=np.intp)[:, None],
                    np.asarray(cols, dtype=np.intp)[None, :],
                )
            else:
                dx, dy = key
                gy0, gy1, gx0, gx1 = table.interior_box()
                ly0, ly1 = max(y0, gy0), min(y1, gy1)
                lx0, lx1 = max(x0, gx0), min(x1, gx1)
                spec = (
                    "fill",
                    table.fill_value,
                    (ly0 - y0, ly1 - y0, lx0 - x0, lx1 - x0),
                    (ly0 + dy, ly1 + dy, lx0 + dx, lx1 + dx),
                )
            self._gathers[key] = spec
        return spec

    def _shard_chunk(
        self, source: np.ndarray, direction: tuple[int, int], start: int, stop: int
    ) -> np.ndarray:
        """The chunk every PE of this shard pulls along ``direction``.

        Reads from the shared *full-grid* source array: pulls that cross a
        shard seam land on a neighbouring shard's rows/columns (written
        before the drain barrier), pulls off the fabric follow the plan's
        boundary folding.
        """
        spec = self._shard_gather(direction)
        if spec[0] == "gather":
            _, rows, cols = spec
            return source[rows, cols, start:stop]
        _, fill_value, dest_box, source_box = spec
        out = np.full(
            (self.shard_height, self.shard_width, stop - start),
            fill_value,
            dtype=np.float32,
        )
        dy0, dy1, dx0, dx1 = dest_box
        sy0, sy1, sx0, sx1 = source_box
        if dy0 < dy1 and dx0 < dx1:
            out[dy0:dy1, dx0:dx1] = source[sy0:sy1, sx0:sx1, start:stop]
        return out

    # -- the four round steps -------------------------------------------- #

    def launch(self, entry: str | None = None) -> None:
        self.interpreter.run_callable(entry if entry is not None else self.plan.entry)

    def drain(self) -> None:
        self.interpreter.run_pending_tasks()

    @property
    def settled(self) -> bool:
        return self.state.halted or self.state.is_idle

    def stage(self) -> int:
        """Phase 1: snapshot everything this shard will receive.

        The shared :func:`stage_exchange_chunks` over the shard
        sub-rectangle, gathering from the shared *full-grid* source array.
        Returns the number of PEs whose exchange was staged — 0 when
        nothing is pending.
        """
        exchange = self.state.pending_exchange
        if exchange is None:
            self._staged = None
            return 0
        source = self.full_buffers[exchange.source_buffer]
        self._staged = stage_exchange_chunks(
            exchange,
            lambda direction, start, stop: self._shard_chunk(
                source, direction, start, stop
            ),
            self.shard_height,
            self.shard_width,
            self.state.counters,
        )
        return self.shard_width * self.shard_height

    def deliver(self) -> None:
        """Phase 2: the shared delivery over this shard's buffer views."""
        exchange = self.state.pending_exchange
        if exchange is None or self._staged is None:
            return
        self.state.pending_exchange = None
        deliver_exchange_chunks(
            self.state, self.interpreter, exchange, self._staged
        )
        self._staged = None

    def result(self, rounds: int) -> ShardResult:
        return ShardResult(
            rounds=rounds,
            counters=dict(self.state.counters),
            variables=dict(self.state.variables),
            halted=self.state.halted,
            pe_memory_bytes=self.state.memory_in_use(),
        )


def _settled_consensus(flags) -> bool:
    """Shared termination decision of one delivery round.

    True when every shard settled this round; raises when the SPMD
    uniformity contract broke (some settled, some did not).  Both the
    barrier-stepped workers and the sequential driver decide through this
    one function, so the divergence diagnostics cannot drift apart.
    """
    if all(flags):
        return True
    if any(flags):
        raise InterpretationError(
            "shards diverged: the SPMD program settled on some shards "
            "but not others"
        )
    return False


def _run_shard_loop(
    runner: ShardRunner,
    entry: str | None,
    max_rounds: int,
    index: int,
    settled_flags,
    barrier,
) -> ShardResult:
    """The shard lifecycle: launch, then barrier-stepped delivery rounds.

    Each round has two rendezvous points: after every shard has drained
    its tasks (which also publishes and checks the per-shard settled
    flags), and after every shard has snapshotted what it will receive.
    The settled flags turn termination into a consensus: all shards
    settle in the same round (SPMD uniformity) and break *together* after
    the same barrier — no shard ever leaves siblings waiting — while a
    divergence bug is detected and raised within one round instead of
    timing a barrier out.
    """
    runner.launch(entry)
    rounds = 0
    for _ in range(max_rounds):
        runner.drain()
        settled_flags[index] = 1 if runner.settled else 0
        barrier.wait(SYNC_TIMEOUT_SECONDS)  # all drained, all flags visible
        if _settled_consensus(settled_flags[:]):
            return runner.result(rounds)
        delivered = runner.stage()
        if delivered == 0:
            raise InterpretationError(
                "deadlock: PEs are neither halted nor waiting on an exchange"
            )
        barrier.wait(SYNC_TIMEOUT_SECONDS)  # all staged before any write
        runner.deliver()
        rounds += 1
    raise InterpretationError(f"simulation exceeded {max_rounds} rounds")


def _shard_worker(
    image: ProgramImage,
    plan: ExecutionPlan,
    full_buffers: dict[str, np.ndarray],
    box: tuple[int, int, int, int],
    index: int,
    settled_flags,
    barrier,
    results,
    entry: str | None,
    max_rounds: int,
    variables: dict[str, float],
    halted: bool,
) -> None:
    """Entry point of one forked shard process."""
    try:
        runner = ShardRunner(
            image, plan, full_buffers, box, variables=variables, halted=halted
        )
        result = _run_shard_loop(
            runner, entry, max_rounds, index, settled_flags, barrier
        )
        results.put((index, "ok", result))
    except BaseException:
        # Release siblings parked on a barrier, then report the failure.
        try:
            barrier.abort()
        except Exception:
            pass
        results.put((index, "error", traceback.format_exc()))


@register_executor
class TiledExecutor(Executor):
    """Partition the fabric into shards; replay the plan on a process pool."""

    name = "tiled"

    def __init__(
        self,
        image: ProgramImage,
        width: int,
        height: int,
        plan: ExecutionPlan | None = None,
    ):
        super().__init__(image, width, height, plan)
        extent = shard_extent(width, height)
        self.boxes = shard_boxes(width, height, extent)
        #: anonymous shared-memory backing for every program buffer, so
        #: forked shard workers and the parent see one coherent grid.
        self._shared = {
            name: multiprocessing.RawArray("f", height * width * size)
            for name, size in self.plan.buffers.items()
        }
        self.buffers: dict[str, np.ndarray] = {
            name: np.frombuffer(raw, dtype=np.float32).reshape(
                height, width, self.plan.buffers[name]
            )
            for name, raw in self._shared.items()
        }
        self._entry: str | None = None
        self._grid_views: list[list[_TiledPeView]] | None = None
        #: per-PE-uniform activity counters, folded in after each run (the
        #: per-PE state views read these; lockstep shards all report the
        #: same values).
        self._pe_counters: dict[str, int] = new_pe_counters()
        self._variables: dict[str, float] = dict(self.plan.variables)
        self._halted = False

    # ------------------------------------------------------------------ #
    # Host-side data movement
    # ------------------------------------------------------------------ #

    def _field_array(self, name: str) -> np.ndarray:
        try:
            return self.buffers[name]
        except KeyError:
            raise missing_field_error(name, self.buffers, (0, 0)) from None

    def load_field(self, name: str, columns: np.ndarray) -> None:
        array = self._field_array(name)
        self._check_columns(name, columns, array.shape[-1])
        array[:] = columns.transpose(1, 0, 2).astype(np.float32)

    def read_field(self, name: str) -> np.ndarray:
        array = self._field_array(name)
        return np.ascontiguousarray(array.transpose(1, 0, 2))

    def pe(self, x: int, y: int) -> "_TiledPeView":
        self._check_pe_coords(x, y)
        return _TiledPeView(self, x, y)

    @property
    def grid(self) -> list[list["_TiledPeView"]]:
        if self._grid_views is None:
            self._grid_views = [
                [_TiledPeView(self, x, y) for x in range(self.width)]
                for y in range(self.height)
            ]
        return self._grid_views

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def launch(self, entry: str | None = None) -> None:
        """Record the entry point; shards launch inside :meth:`run` (the
        worker processes must execute the entry themselves so their scalar
        state stays process-local)."""
        self._entry = entry
        self._pending_launch = True

    def _run_rounds(self, max_rounds: int) -> SimulationStatistics:
        entry = self._entry
        if len(self.boxes) > 1 and "fork" in multiprocessing.get_all_start_methods():
            results = self._run_forked(entry, max_rounds)
        else:
            results = self._run_sequential(entry, max_rounds)
        self._fold_results(results)
        return self.statistics

    def _run_sequential(
        self, entry: str | None, max_rounds: int
    ) -> list[ShardResult]:
        """Drive every shard in-process on the two-phase round schedule."""
        runners = [
            ShardRunner(
                self.image,
                self.plan,
                self.buffers,
                box,
                variables=dict(self._variables),
                halted=self._halted,
            )
            for box in self.boxes
        ]
        for runner in runners:
            runner.launch(entry)
        rounds = 0
        for _ in range(max_rounds):
            for runner in runners:
                runner.drain()
            if _settled_consensus([runner.settled for runner in runners]):
                return [runner.result(rounds) for runner in runners]
            delivered = sum(runner.stage() for runner in runners)
            if delivered == 0:
                raise InterpretationError(
                    "deadlock: PEs are neither halted nor waiting on an "
                    "exchange"
                )
            for runner in runners:
                runner.deliver()
            rounds += 1
        raise InterpretationError(f"simulation exceeded {max_rounds} rounds")

    def _run_forked(
        self, entry: str | None, max_rounds: int
    ) -> list[ShardResult]:
        """Fork one worker per shard; two barriers per round keep the
        snapshot/deliver phases exchange-correct across processes."""
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(len(self.boxes))
        settled_flags = multiprocessing.RawArray("b", len(self.boxes))
        results_queue = context.Queue()
        workers = [
            context.Process(
                target=_shard_worker,
                args=(
                    self.image,
                    self.plan,
                    self.buffers,
                    box,
                    index,
                    settled_flags,
                    barrier,
                    results_queue,
                    entry,
                    max_rounds,
                    dict(self._variables),
                    self._halted,
                ),
                daemon=True,
            )
            for index, box in enumerate(self.boxes)
        ]
        for worker in workers:
            worker.start()

        results: dict[int, ShardResult] = {}
        failure: str | None = None
        symptom: str | None = None
        pending = set(range(len(self.boxes)))
        try:
            # Workers report once, after their whole run: poll with a short
            # timeout and keep waiting as long as they are alive, so a long
            # simulation is never killed by the sync timeout (which bounds
            # individual barrier waits, not total runtime).  Only a worker
            # that died without reporting is a failure.
            grace_polls = 0
            while pending:
                try:
                    index, status, payload = results_queue.get(timeout=1.0)
                except Exception:
                    if any(
                        not workers[index].is_alive() for index in pending
                    ):
                        # Allow a few more polls: an exiting worker's queue
                        # feeder may still be flushing its final message.
                        grace_polls += 1
                        if grace_polls >= 5:
                            failure = (
                                "shard worker died without reporting a result"
                            )
                            break
                    continue
                grace_polls = 0
                if status == "error":
                    if "BrokenBarrierError" in payload and pending - {index}:
                        # A sibling's abort broke this shard out of its
                        # barrier wait: a symptom, not the diagnosis.  Keep
                        # draining for the shard that aborted — whichever
                        # report wins the queue race, the real error is the
                        # one the parent raises.
                        symptom = payload
                        pending.discard(index)
                        continue
                    failure = payload
                    break
                results[index] = payload
                pending.discard(index)
            if failure is None and symptom is not None:
                failure = symptom
        finally:
            for worker in workers:
                if failure is not None and worker.is_alive():
                    worker.terminate()
                worker.join(timeout=30)
        if failure is not None:
            raise InterpretationError(f"tiled shard worker failed:\n{failure}")
        return [results[index] for index in range(len(self.boxes))]

    def _fold_results(self, results: list[ShardResult]) -> None:
        """Merge per-shard results into the executor-level surface."""
        rounds = {result.rounds for result in results}
        if len(rounds) != 1:
            raise InterpretationError(
                f"shards diverged: delivery-round counts {sorted(rounds)} "
                f"are not uniform across the SPMD fabric"
            )
        first = results[0]
        # Per-PE counters accumulate across runs (the other backends keep
        # one live state whose counters only ever grow); statistics fold
        # the *cumulative* counters per run, exactly as the vectorized
        # backend's collection pass reads its live counter dict.
        for name, value in first.counters.items():
            self._pe_counters[name] += value
        shard_statistics = [
            SimulationStatistics(
                max_pe_memory_bytes=result.pe_memory_bytes,
                **{
                    name: self._pe_counters[name] * pes
                    for name in PE_COUNTER_NAMES
                },
            )
            for result, pes in zip(results, self._shard_pe_counts())
        ]
        self.statistics = SimulationStatistics.merge(
            [self.statistics, SimulationStatistics(rounds=rounds.pop())]
            + shard_statistics
        )
        self._variables = dict(first.variables)
        self._halted = first.halted

    def _shard_pe_counts(self) -> list[int]:
        return [(y1 - y0) * (x1 - x0) for y0, y1, x0, x1 in self.boxes]

    # -- unused base hooks (this backend drives rounds in its shards) ---- #

    def _drain_tasks(self) -> None:  # pragma: no cover
        raise AssertionError("tiled drives delivery rounds inside its shards")

    def _all_settled(self) -> bool:  # pragma: no cover
        raise AssertionError("tiled drives delivery rounds inside its shards")

    def _deliver_round(self) -> int:  # pragma: no cover
        raise AssertionError("tiled drives delivery rounds inside its shards")

    def _collect_statistics(self) -> None:  # pragma: no cover
        raise AssertionError("tiled folds statistics per shard result")


class _TiledPeView:
    """One PE's slice of the shared grid, mirroring the vectorized view."""

    def __init__(self, executor: TiledExecutor, x: int, y: int):
        self._executor = executor
        self.x = x
        self.y = y

    @property
    def buffers(self) -> dict[str, np.ndarray]:
        return {
            name: array[self.y, self.x]
            for name, array in self._executor.buffers.items()
        }

    @property
    def counters(self) -> dict[str, int]:
        return self._executor._pe_counters

    @property
    def variables(self) -> dict[str, float]:
        return self._executor._variables

    @property
    def halted(self) -> bool:
        return self._executor._halted

    def memory_in_use(self) -> int:
        return self._executor.plan.memory_per_pe_bytes()
