"""The tiled backend: compiled shard kernels on a persistent process pool.

The vectorized lockstep executor turned the per-PE interpretation into
whole-grid array math; this backend distributes that math.  The fabric is
partitioned into a ``kx x ky`` grid of rectangular *shards*, each owned by
one worker process.  Every buffer of the program lives in one full-grid
shared-memory array (an anonymous ``mmap`` backing a
``multiprocessing.RawArray``), so each worker's compute operates on *views*
restricted to its shard rows/columns — the identical NumPy ufuncs on a
sub-rectangle are bit-identical to the vectorized whole-grid op.

Three design decisions make the shards pay for themselves:

* **Compiled shard kernels.**  Each shard replays the fused per-round
  kernel :mod:`repro.wse.codegen` emits restricted to its box (staging
  split into interior/rim regions against the shard geometry) instead of
  interpreting the plan tables per round.  Kernels are cached process-wide
  and fleet-wide through the service :class:`KernelSourceStore` under the
  plan fingerprint + box key.  Programs the generator cannot fuse fall
  back to interpreted shards (:attr:`TiledExecutor.tiled_fallback_reason`).
* **Overlapped seam exchange.**  The historical protocol paid two barriers
  per delivery round (drain -> stage -> deliver).  The compiled protocol
  pays one: after draining, a shard *publishes* its seam rows/columns into
  shared snapshot strips and flags the round in a per-shard publication
  counter, then stages its *interior* (sources inside the box — legal while
  siblings still compute), spin-waits only for the publication flags of the
  shards it actually reads from, stages the *rim* out of the snapshots, and
  delivers.  The round ends at the single barrier, which doubles as the
  settled-consensus point (monotone progress values, so a shard racing into
  the next round can never corrupt a sibling's consensus read).
* **A persistent worker pool.**  Workers are forked once per executor and
  reused across delivery rounds *and* across runs in the same process
  (command pipes carry launch entry + resumed scalar state; a fresh kernel
  binding per run keeps no stale closure state).  ``fork`` shares the
  image, plan and compiled kernels for free.

Platforms without ``fork`` (and degenerate 1-shard grids) drive the shards
sequentially in-process on the exact same schedule — bit-identical, merely
not parallel.  ``REPRO_TILED_SHARDS`` overrides the shard grid (K along
both axes, clamped to the fabric); when unset the grid is derived from the
usable CPU count (one worker per CPU) and clamped so no shard is thinner
than :data:`MIN_SHARD_SIDE` PEs per side along either axis — below that,
fork and barrier overhead dominate the per-shard array math.
"""

from __future__ import annotations

import math
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import traceback
import weakref
from dataclasses import dataclass

import numpy as np

from repro.ir.exceptions import InterpretationError
from repro.wse.codegen import (
    CompiledKernel,
    KernelCodegenError,
    get_kernel,
    resolve_block_depth,
)
from repro.wse.executors.base import (
    Executor,
    SimulationStatistics,
    missing_field_error,
    register_executor,
)
from repro.wse.executors.vectorized import (
    GridState,
    LockstepInterpreter,
    deliver_exchange_chunks,
    stage_exchange_chunks,
)
from repro.wse.interpreter import ProgramImage
from repro.wse.pe import PE_COUNTER_NAMES, new_pe_counters
from repro.wse.plan import (
    BlockHaloError,
    BlockHaloSpec,
    BlockPlanView,
    ExecutionPlan,
    ShardGeometry,
)

#: environment variable overriding the shard-grid extent (K of K×K).
SHARD_ENV_VAR = "REPRO_TILED_SHARDS"

#: smallest shard side the auto heuristic will create: thinner shards pay
#: more in fork + per-round barrier overhead than their slice of the array
#: math is worth.
MIN_SHARD_SIDE = 4

#: ceiling on any single barrier wait / publication wait / result
#: collection (seconds); shard divergence (which SPMD uniformity rules
#: out) surfaces as an error instead of a hang.
SYNC_TIMEOUT_SECONDS = 600.0

#: publication-wait spins before the first sleep: a sibling mid-round
#: publishes within microseconds, so the wait yields the GIL-free slice
#: but stays on-CPU while the seam is imminent.
SPIN_LIMIT = 200

#: first backoff sleep once the spin limit is exhausted (seconds); each
#: further backoff doubles it (exponent clamped so the shift cannot
#: overflow) up to :data:`BACKOFF_CAP_SECONDS`.
BACKOFF_INITIAL_SECONDS = 50e-6

#: ceiling on one backoff sleep — a shard parked behind a slow sibling
#: polls at least this often, bounding the wake-up latency it adds to
#: the round once the sibling does publish.
BACKOFF_CAP_SECONDS = 1e-3


def usable_cpu_count() -> int:
    """CPUs this process may actually schedule shard workers on.

    Affinity-aware: plain ``os.cpu_count()`` over-reports inside
    affinity-restricted containers, which would fork workers that only
    time-slice one core.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def shard_grid(
    width: int, height: int, cpus: int | None = None
) -> tuple[int, int]:
    """The shard grid ``(kx, ky)``: ``REPRO_TILED_SHARDS`` (K along both
    axes, clamped so no shard is empty) — or, when the variable is unset, a
    grid derived from the usable CPU count (``kx * ky`` workers ≈ one per
    CPU) and clamped per axis so no shard is thinner than
    :data:`MIN_SHARD_SIDE` PEs.  The per-axis clamp is what keeps ragged
    fabrics (e.g. 64x8) sharded along their long axis instead of collapsing
    to one shard."""
    override = os.environ.get(SHARD_ENV_VAR, "").strip()
    if override:
        try:
            requested = int(override)
        except ValueError:
            raise ValueError(
                f"invalid {SHARD_ENV_VAR}={override!r}: expected a positive "
                f"integer shard-grid extent"
            ) from None
        if requested < 1:
            raise ValueError(
                f"invalid {SHARD_ENV_VAR}={requested}: the shard-grid extent "
                f"must be >= 1"
            )
        return max(1, min(requested, width)), max(1, min(requested, height))
    if cpus is None:
        cpus = usable_cpu_count()
    cpus = max(1, cpus)
    ky = max(1, min(math.isqrt(cpus), height // MIN_SHARD_SIDE))
    kx = max(1, min(cpus // ky, width // MIN_SHARD_SIDE))
    return kx, ky


def shard_boxes(
    width: int, height: int, kx: int, ky: int
) -> tuple[tuple[int, int, int, int], ...]:
    """``kx x ky`` rectangular shards ``(y0, y1, x0, x1)`` tiling the fabric.

    Rows and columns are split into nearly-equal bands (the first
    ``remainder`` bands one wider), so every PE belongs to exactly one
    shard and uneven fabrics stay balanced.
    """
    return ShardGeometry.build(width, height, kx, ky).boxes()


@dataclass
class ShardResult:
    """What one shard worker reports back after running to completion."""

    rounds: int
    counters: dict[str, int]
    variables: dict[str, float]
    halted: bool
    pe_memory_bytes: int
    #: temporal-block kernel invocations (0 when the shard ran unblocked).
    blocks: int = 0
    #: publication-wait iterations before sleeping kicked in.
    seam_spins: int = 0
    #: publication-wait backoff sleeps (exponential, capped).
    seam_backoffs: int = 0
    #: round/block barrier rendezvous this shard entered.
    barrier_waits: int = 0


class ShardState(GridState):
    """One shard's lockstep state over views of the shared full-grid buffers.

    A :class:`~repro.wse.executors.vectorized.GridState` whose ``buffers``
    are writable sub-rectangle views of the parent's shared-memory arrays,
    so every DSD compute op touches exactly this shard's rows and columns
    of shared memory — and whose allocation hook maps onto those
    pre-existing views instead of allocating.  Compiled shard kernels
    additionally read :attr:`seam_snapshots` (eid -> (row strip, column
    strip) shared arrays) for their rim staging.
    """

    def __init__(
        self,
        full_buffers: dict[str, np.ndarray],
        box: tuple[int, int, int, int],
    ):
        y0, y1, x0, x1 = box
        super().__init__(width=x1 - x0, height=y1 - y0)
        self.buffers = {
            name: array[y0:y1, x0:x1] for name, array in full_buffers.items()
        }
        #: eid -> (row snapshot, column snapshot); bound by compiled shard
        #: kernels, unused by interpreted shards.
        self.seam_snapshots: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def allocate(self, name: str, size: int) -> None:
        # The parent pre-allocated every buffer in shared memory; an unknown
        # allocation here would be a plan/image mismatch.
        if name not in self.buffers:
            raise InterpretationError(
                f"shard asked to allocate unknown buffer '{name}'"
            )


class ShardRunner:
    """Replays the execution plan for one shard of the fabric (interpreted).

    Exposes the four steps of a delivery round — :meth:`drain`,
    :attr:`settled`, :meth:`stage`, :meth:`deliver` — so the same runner
    serves both the barrier-stepped worker processes and the sequential
    in-process fallback.  This interpreted runner is the fallback for
    programs :mod:`repro.wse.codegen` cannot fuse; fusable programs run
    :class:`CompiledShardRunner` instead.
    """

    def __init__(
        self,
        image: ProgramImage,
        plan: ExecutionPlan,
        full_buffers: dict[str, np.ndarray],
        box: tuple[int, int, int, int],
        variables: dict[str, float] | None = None,
        halted: bool = False,
    ):
        self.plan = plan
        self.full_buffers = full_buffers
        self.box = box
        y0, y1, x0, x1 = box
        self.shard_height = y1 - y0
        self.shard_width = x1 - x0
        self.state = ShardState(full_buffers, box)
        # Scalar state carried over from a previous run of the same
        # executor (the other backends keep one live interpreter state, so
        # a relaunch must resume from it to stay interchangeable).
        if variables:
            self.state.variables.update(variables)
        self.state.halted = halted
        self.interpreter = LockstepInterpreter(image, self.state, plan)
        self.interpreter.initialise()
        self._staged: list[np.ndarray] | None = None
        #: per-direction shard gather spec, resolved from the plan's global
        #: fold tables once and replayed every round.
        self._gathers: dict[tuple[int, int], tuple] = {}

    # -- plan restriction ------------------------------------------------ #

    def _shard_gather(self, direction: tuple[int, int]):
        """The plan's halo table restricted to this shard's rows/columns.

        ``("gather", rows, cols)`` — every source coordinate resolves onto
        the fabric: one fancy-index gather from the shared full-grid array.
        ``("fill", fill_value, dest_box, source_box)`` — Dirichlet path:
        constant fill with an interior shifted-slice rectangle (both boxes
        in local shard coordinates / global source coordinates).
        """
        key = (direction[0], direction[1])
        spec = self._gathers.get(key)
        if spec is None:
            table = self.plan.halo_table(key)
            y0, y1, x0, x1 = self.box
            rows = table.rows[y0:y1]
            cols = table.cols[x0:x1]
            if None not in rows and None not in cols:
                spec = (
                    "gather",
                    np.asarray(rows, dtype=np.intp)[:, None],
                    np.asarray(cols, dtype=np.intp)[None, :],
                )
            else:
                dx, dy = key
                gy0, gy1, gx0, gx1 = table.interior_box()
                ly0, ly1 = max(y0, gy0), min(y1, gy1)
                lx0, lx1 = max(x0, gx0), min(x1, gx1)
                spec = (
                    "fill",
                    table.fill_value,
                    (ly0 - y0, ly1 - y0, lx0 - x0, lx1 - x0),
                    (ly0 + dy, ly1 + dy, lx0 + dx, lx1 + dx),
                )
            self._gathers[key] = spec
        return spec

    def _shard_chunk(
        self, source: np.ndarray, direction: tuple[int, int], start: int, stop: int
    ) -> np.ndarray:
        """The chunk every PE of this shard pulls along ``direction``.

        Reads from the shared *full-grid* source array: pulls that cross a
        shard seam land on a neighbouring shard's rows/columns (written
        before the drain barrier), pulls off the fabric follow the plan's
        boundary folding.
        """
        spec = self._shard_gather(direction)
        if spec[0] == "gather":
            _, rows, cols = spec
            return source[rows, cols, start:stop]
        _, fill_value, dest_box, source_box = spec
        out = np.full(
            (self.shard_height, self.shard_width, stop - start),
            fill_value,
            dtype=np.float32,
        )
        dy0, dy1, dx0, dx1 = dest_box
        sy0, sy1, sx0, sx1 = source_box
        if dy0 < dy1 and dx0 < dx1:
            out[dy0:dy1, dx0:dx1] = source[sy0:sy1, sx0:sx1, start:stop]
        return out

    # -- the four round steps -------------------------------------------- #

    def launch(self, entry: str | None = None) -> None:
        self.interpreter.run_callable(entry if entry is not None else self.plan.entry)

    def drain(self) -> None:
        self.interpreter.run_pending_tasks()

    @property
    def settled(self) -> bool:
        return self.state.halted or self.state.is_idle

    def stage(self) -> int:
        """Phase 1: snapshot everything this shard will receive.

        The shared :func:`stage_exchange_chunks` over the shard
        sub-rectangle, gathering from the shared *full-grid* source array.
        Returns the number of PEs whose exchange was staged — 0 when
        nothing is pending.
        """
        exchange = self.state.pending_exchange
        if exchange is None:
            self._staged = None
            return 0
        source = self.full_buffers[exchange.source_buffer]
        self._staged = stage_exchange_chunks(
            exchange,
            lambda direction, start, stop: self._shard_chunk(
                source, direction, start, stop
            ),
            self.shard_height,
            self.shard_width,
            self.state.counters,
        )
        return self.shard_width * self.shard_height

    def deliver(self) -> None:
        """Phase 2: the shared delivery over this shard's buffer views."""
        exchange = self.state.pending_exchange
        if exchange is None or self._staged is None:
            return
        self.state.pending_exchange = None
        deliver_exchange_chunks(
            self.state, self.interpreter, exchange, self._staged
        )
        self._staged = None

    def result(self, rounds: int, **sync_counters: int) -> ShardResult:
        return ShardResult(
            rounds=rounds,
            counters=dict(self.state.counters),
            variables=dict(self.state.variables),
            halted=self.state.halted,
            pe_memory_bytes=self.state.memory_in_use(),
            **sync_counters,
        )


class CompiledShardRunner:
    """Replays the fused shard-box kernel for one shard of the fabric.

    The compiled analogue of :class:`ShardRunner`: the same round-step
    surface, but every step delegates to the generated kernel's hooks, and
    the exchange is the overlapped publish / stage-interior / stage-rim /
    deliver protocol instead of one monolithic staging pass.  A fresh
    runner is bound per run — kernel closures capture the counters and
    variables dicts, so reuse across runs would leak state; the expensive
    part (code generation) is cached behind ``kernel`` anyway.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        kernel: CompiledKernel,
        full_buffers: dict[str, np.ndarray],
        box: tuple[int, int, int, int],
        snapshots: dict[int, tuple[np.ndarray, np.ndarray]],
        variables: dict[str, float] | None = None,
        halted: bool = False,
    ):
        self.plan = plan
        self.box = box
        self.state = ShardState(full_buffers, box)
        self.state.seam_snapshots = snapshots
        if variables:
            self.state.variables.update(variables)
        # Mirror the interpreter's initialise(): image-declared variables
        # default in without clobbering resumed values.
        for name, value in plan.variables.items():
            self.state.variables.setdefault(name, value)
        self.state.halted = halted
        self.hooks = kernel.instantiate(self.state, plan)

    def launch(self, entry: str | None = None) -> None:
        name = entry if entry is not None else self.plan.entry
        fn = self.hooks["fns"].get(name)
        if fn is None:
            raise InterpretationError(f"unknown function or task '{name}'")
        fn()

    def drain(self) -> None:
        self.hooks["drain"]()

    @property
    def settled(self) -> bool:
        return self.hooks["settled"]()

    def publish(self) -> None:
        self.hooks["publish"]()

    def stage_interior(self) -> int:
        return self.hooks["stage_interior"]()

    def stage_rim(self) -> None:
        self.hooks["stage_rim"]()

    def deliver(self) -> None:
        self.hooks["deliver"]()

    def result(self, rounds: int, **sync_counters: int) -> ShardResult:
        return ShardResult(
            rounds=rounds,
            counters=dict(self.state.counters),
            variables=dict(self.state.variables),
            halted=self.state.halted,
            pe_memory_bytes=self.state.memory_in_use(),
            **sync_counters,
        )


class BlockShardRunner:
    """Replays the depth-R temporal-block kernel for one shard.

    Unlike the other runners this one owns a *private* extended-window
    :class:`~repro.wse.executors.vectorized.GridState` — the shard box plus
    a ``rounds * radius`` halo margin per axis — rather than views of the
    shared grid.  Each block gathers the window in from one shared bank
    (:meth:`gather_in`, exact by the boundary fold), runs up to R delivery
    rounds entirely locally through the kernel's ``run_block`` hook (the
    deep fold-composed halo tables keep the core exact while the margin
    decays), and writes its core back to the opposite bank
    (:meth:`write_back`).  Scalar state — variables, task queue, pending
    exchange, halt flag — persists across blocks; only the arrays are
    re-synced.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        view: BlockPlanView,
        kernel: CompiledKernel,
        banks: tuple[dict[str, np.ndarray], dict[str, np.ndarray]],
        variables: dict[str, float] | None = None,
        halted: bool = False,
    ):
        spec = view.spec
        self.plan = plan
        self.box = spec.box
        self.depth = spec.rounds
        self.banks = banks
        self.state = GridState(width=spec.width, height=spec.height)
        # The kernel binds buffer views at instantiation, so the extended
        # arrays must exist first (the entry's allocations then no-op).
        for name, size in plan.buffers.items():
            self.state.allocate(name, size)
        if variables:
            self.state.variables.update(variables)
        for name, value in plan.variables.items():
            self.state.variables.setdefault(name, value)
        self.state.halted = halted
        self.hooks = kernel.instantiate(self.state, view)
        self._rows, self._cols = spec.gather_maps()
        self._core = spec.core_slices()

    def launch(self, entry: str | None = None) -> None:
        name = entry if entry is not None else self.plan.entry
        fn = self.hooks["fns"].get(name)
        if fn is None:
            raise InterpretationError(f"unknown function or task '{name}'")
        fn()

    def gather_in(self, bank: int) -> None:
        """Seed the extended window from a full-grid bank (fold-exact)."""
        source = self.banks[bank]
        for name, array in self.state.buffers.items():
            array[:] = source[name][self._rows, self._cols]

    def run_block(self, budget: int) -> tuple[int, str]:
        """Up to ``budget`` delivery rounds in-kernel; ``(executed, status)``."""
        return self.hooks["run_block"](budget)

    def write_back(self, bank: int) -> None:
        """Publish the core rows/columns into a full-grid bank."""
        target = self.banks[bank]
        ys, xs = self._core
        y0, y1, x0, x1 = self.box
        for name, array in self.state.buffers.items():
            target[name][y0:y1, x0:x1] = array[ys, xs]

    def result(self, rounds: int, **sync_counters: int) -> ShardResult:
        return ShardResult(
            rounds=rounds,
            counters=dict(self.state.counters),
            variables=dict(self.state.variables),
            halted=self.state.halted,
            pe_memory_bytes=self.state.memory_in_use(),
            **sync_counters,
        )


def _needed_neighbors(
    plan: ExecutionPlan, geometry: ShardGeometry
) -> tuple[tuple[int, ...], ...]:
    """Which sibling shards each shard must await publications from.

    A remote source *row* is read as a full-width strip of the row
    snapshot, assembled by every shard of the source band — so all of that
    band is needed.  A remote source *column* is only read over the
    shard's own rows, so just the source stripe's shard in the reader's
    band is needed.  Dirichlet off-fabric sources need nobody.
    """
    boxes = geometry.boxes()
    kx, ky = geometry.kx, geometry.ky
    needed: list[set[int]] = [set() for _ in boxes]
    for index, (y0, y1, x0, x1) in enumerate(boxes):
        band = index // kx
        for table in plan.halo_tables.values():
            for y in range(y0, y1):
                src = table.rows[y]
                if src is not None and not (y0 <= src < y1):
                    source_band = geometry.band_of(src)
                    for stripe in range(kx):
                        needed[index].add(source_band * kx + stripe)
            for x in range(x0, x1):
                src = table.cols[x]
                if src is not None and not (x0 <= src < x1):
                    needed[index].add(band * kx + geometry.stripe_of(src))
        needed[index].discard(index)
    return tuple(tuple(sorted(s)) for s in needed)


def _settled_consensus(flags) -> bool:
    """Shared termination decision of one delivery round (interpreted path).

    True when every shard settled this round; raises when the SPMD
    uniformity contract broke (some settled, some did not).  Both the
    barrier-stepped workers and the sequential driver decide through this
    one function, so the divergence diagnostics cannot drift apart.
    """
    if all(flags):
        return True
    if any(flags):
        raise InterpretationError(
            "shards diverged: the SPMD program settled on some shards "
            "but not others"
        )
    return False


def _round_consensus(values, rounds: int) -> bool:
    """Settled consensus over the monotone progress array (compiled path).

    A shard writes ``-(rounds + 1)`` when it settled in ``rounds`` and
    ``+(rounds + 1)`` when it did not.  Because the single barrier lets a
    fast sibling race one round ahead before a slow one reads consensus,
    the values are monotone round stamps rather than booleans: a raced
    ``±(rounds + 2)`` stamp proves the sibling did *not* settle in this
    round, so it compares unequal to ``-(rounds + 1)`` and is counted
    unsettled — exactly right.
    """
    settled_value = -(rounds + 1)
    if all(value == settled_value for value in values):
        return True
    if any(value == settled_value for value in values):
        raise InterpretationError(
            "shards diverged: the SPMD program settled on some shards "
            "but not others"
        )
    return False


def _await_publications(
    pub_rounds, progress, needed: tuple[int, ...], target: int, barrier
) -> tuple[int, int]:
    """Spin until every needed sibling published round ``target`` seams.

    Returns ``(spins, backoffs)`` for the statistics surface.  The first
    :data:`SPIN_LIMIT` iterations only yield the CPU (``sleep(0)``) — the
    common case is a sibling publishing within the same scheduling slice —
    then the wait backs off exponentially from
    :data:`BACKOFF_INITIAL_SECONDS` up to :data:`BACKOFF_CAP_SECONDS`.

    A sibling that settled (negative progress stamp) publishes nothing and
    is excused — the round is then doomed to a divergence error at the
    barrier, but must not hang first.  A broken barrier (sibling abort)
    raises :class:`threading.BrokenBarrierError` so the parent's symptom
    deferral treats it like any other barrier break.
    """
    if not needed:
        return 0, 0
    deadline = time.monotonic() + SYNC_TIMEOUT_SECONDS
    spins = 0
    backoffs = 0
    while True:
        if all(
            pub_rounds[sibling] >= target or progress[sibling] < 0
            for sibling in needed
        ):
            return spins, backoffs
        if getattr(barrier, "broken", False):
            raise threading.BrokenBarrierError(
                "a sibling shard aborted during the publication wait"
            )
        if time.monotonic() > deadline:
            raise InterpretationError(
                "timed out waiting for sibling shards to publish seam data"
            )
        spins += 1
        if spins <= SPIN_LIMIT:
            time.sleep(0)
        else:
            backoffs += 1
            time.sleep(
                min(
                    BACKOFF_CAP_SECONDS,
                    BACKOFF_INITIAL_SECONDS * (1 << min(backoffs - 1, 20)),
                )
            )


def _run_shard_loop(
    runner: ShardRunner,
    entry: str | None,
    max_rounds: int,
    index: int,
    settled_flags,
    barrier,
) -> ShardResult:
    """The interpreted shard lifecycle: two barriers per delivery round.

    Each round has two rendezvous points: after every shard has drained
    its tasks (which also publishes and checks the per-shard settled
    flags), and after every shard has snapshotted what it will receive.
    The settled flags turn termination into a consensus: all shards
    settle in the same round (SPMD uniformity) and break *together* after
    the same barrier — no shard ever leaves siblings waiting — while a
    divergence bug is detected and raised within one round instead of
    timing a barrier out.
    """
    runner.launch(entry)
    rounds = 0
    barrier_waits = 0
    for _ in range(max_rounds):
        runner.drain()
        settled_flags[index] = 1 if runner.settled else 0
        barrier.wait(SYNC_TIMEOUT_SECONDS)  # all drained, all flags visible
        barrier_waits += 1
        if _settled_consensus(settled_flags[:]):
            return runner.result(rounds, barrier_waits=barrier_waits)
        delivered = runner.stage()
        if delivered == 0:
            raise InterpretationError(
                "deadlock: PEs are neither halted nor waiting on an exchange"
            )
        barrier.wait(SYNC_TIMEOUT_SECONDS)  # all staged before any write
        barrier_waits += 1
        runner.deliver()
        rounds += 1
    raise InterpretationError(f"simulation exceeded {max_rounds} rounds")


def _run_compiled_shard_loop(
    runner: CompiledShardRunner,
    entry: str | None,
    max_rounds: int,
    index: int,
    progress,
    pub_rounds,
    needed: tuple[int, ...],
    barrier,
) -> ShardResult:
    """The compiled shard lifecycle: one barrier per delivery round.

    Interior staging needs no rendezvous (its sources live inside the box
    and every sibling writes only its own box), so it overlaps with
    sibling drains.  Only the rim waits — and only for the publication
    flags of the shards it actually reads, not a global barrier.  The
    single barrier at the end of the round is also the consensus point;
    publications for the *next* round cannot overwrite a snapshot a slow
    sibling still reads, because the writer would first have to pass this
    round's barrier, which the reader has not reached yet.
    """
    runner.launch(entry)
    rounds = 0
    seam_spins = 0
    seam_backoffs = 0
    barrier_waits = 0
    for _ in range(max_rounds):
        runner.drain()
        settled = runner.settled
        progress[index] = -(rounds + 1) if settled else (rounds + 1)
        if not settled:
            runner.publish()
            pub_rounds[index] = rounds + 1
            staged = runner.stage_interior()
            if staged == 0:
                raise InterpretationError(
                    "deadlock: PEs are neither halted nor waiting on an "
                    "exchange"
                )
            spins, backoffs = _await_publications(
                pub_rounds, progress, needed, rounds + 1, barrier
            )
            seam_spins += spins
            seam_backoffs += backoffs
            runner.stage_rim()
            runner.deliver()
        barrier.wait(SYNC_TIMEOUT_SECONDS)
        barrier_waits += 1
        if _round_consensus(progress[:], rounds):
            return runner.result(
                rounds,
                seam_spins=seam_spins,
                seam_backoffs=seam_backoffs,
                barrier_waits=barrier_waits,
            )
        rounds += 1
    raise InterpretationError(f"simulation exceeded {max_rounds} rounds")


def _run_block_shard_loop(
    runner: BlockShardRunner,
    entry: str | None,
    max_rounds: int,
    index: int,
    progress,
    barrier,
) -> ShardResult:
    """The temporal-block shard lifecycle: one barrier per R rounds.

    The first block runs straight off the launch — the entry (and any tasks
    it queues) executes over the private extended window, and SPMD
    uniformity makes the margin cells receive exactly the values their
    folded fabric counterparts receive, so the window is already exact.
    Every later block re-gathers the window from the bank the previous
    block published into.  Banks ping-pong: block ``b`` reads bank
    ``b % 2`` and writes its core to bank ``(b + 1) % 2``, so a fast shard
    writing ahead can never disturb a slow sibling still gathering — which
    is what admits a *single* barrier per block.  Consensus reuses the
    monotone round-stamp scheme with block numbers as the stamps.
    """
    runner.gather_in(0)
    runner.launch(entry)
    rounds = 0
    blocks = 0
    barrier_waits = 0
    remaining = max_rounds
    while True:
        if remaining <= 0:
            raise InterpretationError(
                f"simulation exceeded {max_rounds} rounds"
            )
        if blocks:
            runner.gather_in(blocks % 2)
        executed, status = runner.run_block(min(runner.depth, remaining))
        if status == "deadlock":
            raise InterpretationError(
                "deadlock: PEs are neither halted nor waiting on an exchange"
            )
        runner.write_back((blocks + 1) % 2)
        rounds += executed
        remaining -= executed
        blocks += 1
        progress[index] = -blocks if status == "settled" else blocks
        barrier.wait(SYNC_TIMEOUT_SECONDS)
        barrier_waits += 1
        if _round_consensus(progress[:], blocks - 1):
            return runner.result(
                rounds, blocks=blocks, barrier_waits=barrier_waits
            )


def _block_shard_worker(
    plan: ExecutionPlan,
    view: BlockPlanView,
    kernel: CompiledKernel,
    banks: tuple[dict[str, np.ndarray], dict[str, np.ndarray]],
    index: int,
    progress,
    barrier,
    results,
    entry: str | None,
    max_rounds: int,
    variables: dict[str, float],
    halted: bool,
) -> None:
    """Entry point of one forked temporal-block shard process."""
    try:
        runner = BlockShardRunner(
            plan, view, kernel, banks, variables=variables, halted=halted
        )
        result = _run_block_shard_loop(
            runner, entry, max_rounds, index, progress, barrier
        )
        results.put((index, "ok", result))
    except BaseException:
        try:
            barrier.abort()
        except Exception:
            pass
        results.put((index, "error", traceback.format_exc()))


def _shard_worker(
    image: ProgramImage,
    plan: ExecutionPlan,
    full_buffers: dict[str, np.ndarray],
    box: tuple[int, int, int, int],
    index: int,
    settled_flags,
    barrier,
    results,
    entry: str | None,
    max_rounds: int,
    variables: dict[str, float],
    halted: bool,
) -> None:
    """Entry point of one forked shard process (interpreted fallback)."""
    try:
        runner = ShardRunner(
            image, plan, full_buffers, box, variables=variables, halted=halted
        )
        result = _run_shard_loop(
            runner, entry, max_rounds, index, settled_flags, barrier
        )
        results.put((index, "ok", result))
    except BaseException:
        # Release siblings parked on a barrier, then report the failure.
        try:
            barrier.abort()
        except Exception:
            pass
        results.put((index, "error", traceback.format_exc()))


def _pool_worker(
    connection,
    plan: ExecutionPlan,
    kernel: CompiledKernel,
    full_buffers: dict[str, np.ndarray],
    box: tuple[int, int, int, int],
    snapshots: dict[int, tuple[np.ndarray, np.ndarray]],
    index: int,
    progress,
    pub_rounds,
    needed: tuple[int, ...],
    barrier,
) -> None:
    """Entry point of one persistent pool worker (compiled shards).

    Parks on the command pipe between runs; a closed pipe (parent exited
    or discarded the pool) or a ``stop`` command ends the worker.  Any
    failure aborts the barrier, reports the traceback and ends the worker
    — the parent discards the whole pool and re-forks on the next run.
    """
    while True:
        try:
            command = connection.recv()
        except (EOFError, OSError):
            break
        if command[0] != "run":
            break
        _, entry, max_rounds, variables, halted = command
        try:
            runner = CompiledShardRunner(
                plan,
                kernel,
                full_buffers,
                box,
                snapshots,
                variables=variables,
                halted=halted,
            )
            result = _run_compiled_shard_loop(
                runner, entry, max_rounds, index,
                progress, pub_rounds, needed, barrier,
            )
            connection.send(("ok", result))
        except BaseException:
            try:
                barrier.abort()
            except Exception:
                pass
            try:
                connection.send(("error", traceback.format_exc()))
            except Exception:
                pass
            break


def _close_pool(workers, connections) -> None:
    """Finalizer for a shard pool: must not reference pool or executor."""
    for connection in connections:
        try:
            connection.send(("stop",))
        except Exception:
            pass
    for connection in connections:
        try:
            connection.close()
        except Exception:
            pass
    for worker in workers:
        worker.join(timeout=5)
    for worker in workers:
        if worker.is_alive():
            worker.terminate()
    for worker in workers:
        worker.join(timeout=30)


class _ShardPool:
    """A persistent fork-pool of compiled shard workers.

    Forked once per executor (sharing image, plan, compiled kernels and
    the shared-memory buffers/snapshots by address-space inheritance) and
    reused across runs: each ``run`` resets the shared round state, pipes
    one command per worker, and collects one result per worker.  Workers
    are daemonic and additionally bounded by a ``weakref.finalize`` on the
    pool, so dropping the executor reaps them promptly.
    """

    def __init__(self, executor: "TiledExecutor"):
        context = multiprocessing.get_context("fork")
        count = len(executor.boxes)
        self.barrier = context.Barrier(count)
        #: signed per-shard round stamps (see :func:`_round_consensus`).
        self.progress = multiprocessing.RawArray("q", count)
        #: highest round each shard has published seams for (1-based).
        self.pub_rounds = multiprocessing.RawArray("q", count)
        self.connections = []
        self.workers = []
        needed = executor._needed or tuple(() for _ in range(count))
        for index, box in enumerate(executor.boxes):
            parent_end, child_end = context.Pipe()
            worker = context.Process(
                target=_pool_worker,
                args=(
                    child_end,
                    executor.plan,
                    executor._kernels[index],
                    executor.buffers,
                    box,
                    executor._snapshots,
                    index,
                    self.progress,
                    self.pub_rounds,
                    needed[index],
                    self.barrier,
                ),
                daemon=True,
            )
            worker.start()
            child_end.close()
            self.connections.append(parent_end)
            self.workers.append(worker)
        self._finalizer = weakref.finalize(
            self, _close_pool, self.workers, self.connections
        )

    @property
    def healthy(self) -> bool:
        return all(worker.is_alive() for worker in self.workers)

    def close(self) -> None:
        self._finalizer()

    def run(
        self,
        entry: str | None,
        max_rounds: int,
        variables: dict[str, float],
        halted: bool,
    ) -> list[ShardResult]:
        for index in range(len(self.workers)):
            self.progress[index] = 0
            self.pub_rounds[index] = 0
        command = ("run", entry, max_rounds, dict(variables), halted)
        for connection in self.connections:
            connection.send(command)
        results: dict[int, ShardResult] = {}
        failure: str | None = None
        symptom: str | None = None
        pending = dict(enumerate(self.connections))
        # Workers report once, after their whole run: poll with a short
        # timeout and keep waiting as long as they are alive, so a long
        # simulation is never killed by the sync timeout (which bounds
        # individual barrier waits, not total runtime).  Only a worker
        # that died without reporting is a failure.
        grace_polls = 0
        while pending and failure is None:
            ready = multiprocessing.connection.wait(
                list(pending.values()), timeout=1.0
            )
            if not ready:
                if any(
                    not self.workers[index].is_alive() for index in pending
                ):
                    grace_polls += 1
                    if grace_polls >= 5:
                        failure = "shard worker died without reporting a result"
                continue
            grace_polls = 0
            by_connection = {
                id(connection): index
                for index, connection in pending.items()
            }
            for connection in ready:
                index = by_connection[id(connection)]
                try:
                    status, payload = connection.recv()
                except (EOFError, OSError):
                    failure = "shard worker died without reporting a result"
                    break
                if status == "error":
                    if "BrokenBarrierError" in payload and (
                        set(pending) - {index}
                    ):
                        # A sibling's abort broke this shard out of its
                        # barrier or publication wait: a symptom, not the
                        # diagnosis.  Keep draining for the shard that
                        # aborted.
                        symptom = payload
                        del pending[index]
                        continue
                    failure = payload
                    break
                results[index] = payload
                del pending[index]
        if failure is None and symptom is not None:
            failure = symptom
        if failure is not None:
            self.close()
            raise InterpretationError(f"tiled shard worker failed:\n{failure}")
        return [results[index] for index in range(len(self.workers))]


def _shard_kernel_store():
    """The fleet-wide kernel source store, or None when unavailable.

    Imported lazily: the executor layer must stay importable without the
    service package (and any cache-directory trouble degrades to
    process-local kernel caching, never to an error).
    """
    try:
        from repro.service.kernels import KernelSourceStore

        return KernelSourceStore()
    except Exception:
        return None


@register_executor
class TiledExecutor(Executor):
    """Partition the fabric into shards; replay the plan on a process pool."""

    name = "tiled"

    def __init__(
        self,
        image: ProgramImage,
        width: int,
        height: int,
        plan: ExecutionPlan | None = None,
        rounds_per_block: int | None = None,
    ):
        super().__init__(image, width, height, plan)
        kx, ky = shard_grid(width, height)
        self.geometry = ShardGeometry.build(width, height, kx, ky)
        self.boxes = self.geometry.boxes()
        #: anonymous shared-memory backing for every program buffer, so
        #: forked shard workers and the parent see one coherent grid.
        self._shared = {
            name: multiprocessing.RawArray("f", height * width * size)
            for name, size in self.plan.buffers.items()
        }
        self.buffers: dict[str, np.ndarray] = {
            name: np.frombuffer(raw, dtype=np.float32).reshape(
                height, width, self.plan.buffers[name]
            )
            for name, raw in self._shared.items()
        }
        self._entry: str | None = None
        self._grid_views: list[list[_TiledPeView]] | None = None
        #: per-PE-uniform activity counters, folded in after each run (the
        #: per-PE state views read these; lockstep shards all report the
        #: same values).
        self._pe_counters: dict[str, int] = new_pe_counters()
        self._variables: dict[str, float] = dict(self.plan.variables)
        self._halted = False
        #: one compiled kernel per shard box, or None -> interpreted shards.
        self._kernels: tuple[CompiledKernel, ...] | None = None
        #: why shard code generation was declined, for diagnostics/tests.
        self.tiled_fallback_reason: str | None = None
        #: content fingerprints of the shard kernels (None on fallback).
        self.kernel_fingerprints: tuple[str, ...] | None = None
        self._snapshots: dict[int, tuple[np.ndarray, np.ndarray]] | None = None
        self._snapshot_raw: list = []
        self._needed: tuple[tuple[int, ...], ...] | None = None
        self._pool: _ShardPool | None = None
        #: why temporal blocking was declined (runs unblocked instead).
        self.block_fallback_reason: str | None = None
        self._rounds_per_block = resolve_block_depth(rounds_per_block)
        #: per-shard depth-R plan views and kernels; None -> unblocked.
        self._block_views: tuple[BlockPlanView, ...] | None = None
        self._block_kernels: tuple[CompiledKernel, ...] | None = None
        #: the second full-grid bank of the blocked ping-pong (lazy).
        self._bank1: dict[str, np.ndarray] | None = None
        self._bank1_raw: list = []
        self._compile_shard_kernels()
        if self._rounds_per_block > 1:
            self._compile_block_kernels()

    def _compile_shard_kernels(self) -> None:
        store = _shard_kernel_store()
        kernels: list[CompiledKernel] = []
        try:
            for box in self.boxes:
                kernels.append(
                    get_kernel(
                        self.image,
                        self.plan,
                        store=store,
                        box=box,
                        geometry=self.geometry,
                    )
                )
        except KernelCodegenError as error:
            self.tiled_fallback_reason = str(error)
            return
        self._kernels = tuple(kernels)
        self.kernel_fingerprints = tuple(k.fingerprint for k in kernels)
        self._needed = _needed_neighbors(self.plan, self.geometry)

    def _compile_block_kernels(self) -> None:
        """Derive depth-R plan views and kernels, or record why not.

        Any decline — an inexact deep-halo derivation for some shard box,
        or a program the generator cannot fuse — resets the executor to
        unblocked execution; temporal blocking is a pure optimisation, so
        it must never change which programs run.
        """
        if self._kernels is None:
            self.block_fallback_reason = (
                "temporal blocking replays compiled shard kernels, but "
                f"codegen declined: {self.tiled_fallback_reason}"
            )
            self._rounds_per_block = 1
            return
        store = _shard_kernel_store()
        views: list[BlockPlanView] = []
        kernels: list[CompiledKernel] = []
        try:
            for box in self.boxes:
                view = BlockPlanView(
                    BlockHaloSpec(self.plan, box, self._rounds_per_block)
                )
                kernels.append(
                    get_kernel(
                        self.image,
                        view,
                        store=store,
                        rounds=self._rounds_per_block,
                    )
                )
                views.append(view)
        except (BlockHaloError, KernelCodegenError) as error:
            self.block_fallback_reason = str(error)
            self._rounds_per_block = 1
            return
        self._block_views = tuple(views)
        self._block_kernels = tuple(kernels)

    def _ensure_banks(self) -> None:
        """Allocate the second shared full-grid bank blocks ping-pong with."""
        if self._bank1 is not None:
            return
        bank: dict[str, np.ndarray] = {}
        for name, size in self.plan.buffers.items():
            raw = multiprocessing.RawArray(
                "f", self.height * self.width * size
            )
            self._bank1_raw.append(raw)
            bank[name] = np.frombuffer(raw, dtype=np.float32).reshape(
                self.height, self.width, size
            )
        self._bank1 = bank

    def _ensure_snapshots(self) -> None:
        """Allocate the shared seam snapshots the shard kernels bind.

        Per exchange eid: a ``(published rows, fabric width, span)`` row
        strip and a ``(fabric height, published cols, span)`` column strip,
        both RawArray-backed so pool workers inherit them writable.
        """
        if self._snapshots is not None:
            return
        meta = self._kernels[0].meta or {"exchanges": []}
        pub_rows = meta.get("pub_rows", 0)
        pub_cols = meta.get("pub_cols", 0)
        snapshots: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for eid, span in meta["exchanges"]:
            row_elements = pub_rows * self.width * span
            col_elements = self.height * pub_cols * span
            row_raw = multiprocessing.RawArray("f", max(1, row_elements))
            col_raw = multiprocessing.RawArray("f", max(1, col_elements))
            self._snapshot_raw.extend((row_raw, col_raw))
            snapshots[eid] = (
                np.frombuffer(
                    row_raw, dtype=np.float32, count=row_elements
                ).reshape(pub_rows, self.width, span),
                np.frombuffer(
                    col_raw, dtype=np.float32, count=col_elements
                ).reshape(self.height, pub_cols, span),
            )
        self._snapshots = snapshots

    # ------------------------------------------------------------------ #
    # Host-side data movement
    # ------------------------------------------------------------------ #

    def _field_array(self, name: str) -> np.ndarray:
        try:
            return self.buffers[name]
        except KeyError:
            raise missing_field_error(name, self.buffers, (0, 0)) from None

    def load_field(self, name: str, columns: np.ndarray) -> None:
        array = self._field_array(name)
        self._check_columns(name, columns, array.shape[-1])
        array[:] = columns.transpose(1, 0, 2).astype(np.float32)

    def read_field(self, name: str) -> np.ndarray:
        array = self._field_array(name)
        return np.ascontiguousarray(array.transpose(1, 0, 2))

    def pe(self, x: int, y: int) -> "_TiledPeView":
        self._check_pe_coords(x, y)
        return _TiledPeView(self, x, y)

    @property
    def grid(self) -> list[list["_TiledPeView"]]:
        if self._grid_views is None:
            self._grid_views = [
                [_TiledPeView(self, x, y) for x in range(self.width)]
                for y in range(self.height)
            ]
        return self._grid_views

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def launch(self, entry: str | None = None) -> None:
        """Record the entry point; shards launch inside :meth:`run` (the
        worker processes must execute the entry themselves so their scalar
        state stays process-local)."""
        self._entry = entry
        self._pending_launch = True

    def _run_rounds(self, max_rounds: int) -> SimulationStatistics:
        entry = self._entry
        forkable = (
            len(self.boxes) > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if self._block_kernels is not None:
            self._ensure_banks()
            if forkable:
                results = self._run_forked_blocked(entry, max_rounds)
            else:
                results = self._run_sequential_blocked(entry, max_rounds)
            # An odd block count leaves the final state in the second
            # bank; fold it back so bank 0 stays the canonical grid the
            # host reads and the next run gathers from.
            if results[0].blocks % 2:
                for name, array in self.buffers.items():
                    array[:] = self._bank1[name]
        elif self._kernels is not None:
            self._ensure_snapshots()
            if forkable:
                results = self._run_pooled(entry, max_rounds)
            else:
                results = self._run_sequential_compiled(entry, max_rounds)
        elif forkable:
            results = self._run_forked(entry, max_rounds)
        else:
            results = self._run_sequential(entry, max_rounds)
        self._fold_results(results)
        return self.statistics

    # -- compiled shards ------------------------------------------------- #

    def _run_pooled(
        self, entry: str | None, max_rounds: int
    ) -> list[ShardResult]:
        """Run the compiled shards on the persistent worker pool,
        re-forking it if a previous run left it broken."""
        if self._pool is not None and not self._pool.healthy:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            self._pool = _ShardPool(self)
        try:
            return self._pool.run(
                entry, max_rounds, self._variables, self._halted
            )
        except BaseException:
            pool, self._pool = self._pool, None
            pool.close()
            raise

    def _run_sequential_compiled(
        self, entry: str | None, max_rounds: int
    ) -> list[ShardResult]:
        """Drive the compiled shards in-process on the overlapped
        schedule (1-shard grids and fork-less platforms)."""
        runners = [
            CompiledShardRunner(
                self.plan,
                kernel,
                self.buffers,
                box,
                self._snapshots,
                variables=dict(self._variables),
                halted=self._halted,
            )
            for box, kernel in zip(self.boxes, self._kernels)
        ]
        for runner in runners:
            runner.launch(entry)
        rounds = 0
        for _ in range(max_rounds):
            for runner in runners:
                runner.drain()
            if _settled_consensus([runner.settled for runner in runners]):
                return [runner.result(rounds) for runner in runners]
            for runner in runners:
                runner.publish()
            staged = sum(runner.stage_interior() for runner in runners)
            if staged == 0:
                raise InterpretationError(
                    "deadlock: PEs are neither halted nor waiting on an "
                    "exchange"
                )
            for runner in runners:
                runner.stage_rim()
            for runner in runners:
                runner.deliver()
            rounds += 1
        raise InterpretationError(f"simulation exceeded {max_rounds} rounds")

    # -- temporal-block shards ------------------------------------------- #

    def _block_runners(self) -> list[BlockShardRunner]:
        banks = (self.buffers, self._bank1)
        return [
            BlockShardRunner(
                self.plan,
                view,
                kernel,
                banks,
                variables=dict(self._variables),
                halted=self._halted,
            )
            for view, kernel in zip(self._block_views, self._block_kernels)
        ]

    def _run_sequential_blocked(
        self, entry: str | None, max_rounds: int
    ) -> list[ShardResult]:
        """Drive the temporal-block shards in-process, one bank swap per
        block (1-shard grids and fork-less platforms)."""
        runners = self._block_runners()
        for runner in runners:
            runner.gather_in(0)
            runner.launch(entry)
        rounds = 0
        blocks = 0
        remaining = max_rounds
        while True:
            if remaining <= 0:
                raise InterpretationError(
                    f"simulation exceeded {max_rounds} rounds"
                )
            if blocks:
                for runner in runners:
                    runner.gather_in(blocks % 2)
            budget = min(self._rounds_per_block, remaining)
            outcomes = [runner.run_block(budget) for runner in runners]
            if any(status == "deadlock" for _, status in outcomes):
                raise InterpretationError(
                    "deadlock: PEs are neither halted nor waiting on an "
                    "exchange"
                )
            for runner in runners:
                runner.write_back((blocks + 1) % 2)
            executed = {count for count, _ in outcomes}
            if len(executed) != 1:
                raise InterpretationError(
                    "shards diverged: temporal blocks executed "
                    f"{sorted(executed)} rounds across the SPMD fabric"
                )
            rounds += executed.pop()
            remaining -= outcomes[0][0]
            blocks += 1
            if _settled_consensus(
                [status == "settled" for _, status in outcomes]
            ):
                return [
                    runner.result(rounds, blocks=blocks)
                    for runner in runners
                ]

    def _run_forked_blocked(
        self, entry: str | None, max_rounds: int
    ) -> list[ShardResult]:
        """Fork one temporal-block worker per shard: one barrier per R
        rounds instead of one (or two) per round."""
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(len(self.boxes))
        progress = multiprocessing.RawArray("q", len(self.boxes))
        results_queue = context.Queue()
        workers = [
            context.Process(
                target=_block_shard_worker,
                args=(
                    self.plan,
                    view,
                    kernel,
                    (self.buffers, self._bank1),
                    index,
                    progress,
                    barrier,
                    results_queue,
                    entry,
                    max_rounds,
                    dict(self._variables),
                    self._halted,
                ),
                daemon=True,
            )
            for index, (view, kernel) in enumerate(
                zip(self._block_views, self._block_kernels)
            )
        ]
        return self._collect_forked(workers, results_queue)

    # -- interpreted shards (codegen fallback) --------------------------- #

    def _run_sequential(
        self, entry: str | None, max_rounds: int
    ) -> list[ShardResult]:
        """Drive every shard in-process on the two-phase round schedule."""
        runners = [
            ShardRunner(
                self.image,
                self.plan,
                self.buffers,
                box,
                variables=dict(self._variables),
                halted=self._halted,
            )
            for box in self.boxes
        ]
        for runner in runners:
            runner.launch(entry)
        rounds = 0
        for _ in range(max_rounds):
            for runner in runners:
                runner.drain()
            if _settled_consensus([runner.settled for runner in runners]):
                return [runner.result(rounds) for runner in runners]
            delivered = sum(runner.stage() for runner in runners)
            if delivered == 0:
                raise InterpretationError(
                    "deadlock: PEs are neither halted nor waiting on an "
                    "exchange"
                )
            for runner in runners:
                runner.deliver()
            rounds += 1
        raise InterpretationError(f"simulation exceeded {max_rounds} rounds")

    def _run_forked(
        self, entry: str | None, max_rounds: int
    ) -> list[ShardResult]:
        """Fork one worker per shard; two barriers per round keep the
        snapshot/deliver phases exchange-correct across processes."""
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(len(self.boxes))
        settled_flags = multiprocessing.RawArray("b", len(self.boxes))
        results_queue = context.Queue()
        workers = [
            context.Process(
                target=_shard_worker,
                args=(
                    self.image,
                    self.plan,
                    self.buffers,
                    box,
                    index,
                    settled_flags,
                    barrier,
                    results_queue,
                    entry,
                    max_rounds,
                    dict(self._variables),
                    self._halted,
                ),
                daemon=True,
            )
            for index, box in enumerate(self.boxes)
        ]
        return self._collect_forked(workers, results_queue)

    def _collect_forked(
        self, workers, results_queue
    ) -> list[ShardResult]:
        """Start fork-per-run workers and collect one result per shard."""
        for worker in workers:
            worker.start()

        results: dict[int, ShardResult] = {}
        failure: str | None = None
        symptom: str | None = None
        pending = set(range(len(self.boxes)))
        try:
            # Workers report once, after their whole run: poll with a short
            # timeout and keep waiting as long as they are alive, so a long
            # simulation is never killed by the sync timeout (which bounds
            # individual barrier waits, not total runtime).  Only a worker
            # that died without reporting is a failure.
            grace_polls = 0
            while pending:
                try:
                    index, status, payload = results_queue.get(timeout=1.0)
                except Exception:
                    if any(
                        not workers[index].is_alive() for index in pending
                    ):
                        # Allow a few more polls: an exiting worker's queue
                        # feeder may still be flushing its final message.
                        grace_polls += 1
                        if grace_polls >= 5:
                            failure = (
                                "shard worker died without reporting a result"
                            )
                            break
                    continue
                grace_polls = 0
                if status == "error":
                    if "BrokenBarrierError" in payload and pending - {index}:
                        # A sibling's abort broke this shard out of its
                        # barrier wait: a symptom, not the diagnosis.  Keep
                        # draining for the shard that aborted — whichever
                        # report wins the queue race, the real error is the
                        # one the parent raises.
                        symptom = payload
                        pending.discard(index)
                        continue
                    failure = payload
                    break
                results[index] = payload
                pending.discard(index)
            if failure is None and symptom is not None:
                failure = symptom
        finally:
            for worker in workers:
                if failure is not None and worker.is_alive():
                    worker.terminate()
                worker.join(timeout=30)
        if failure is not None:
            raise InterpretationError(f"tiled shard worker failed:\n{failure}")
        return [results[index] for index in range(len(self.boxes))]

    def _fold_results(self, results: list[ShardResult]) -> None:
        """Merge per-shard results into the executor-level surface."""
        rounds = {result.rounds for result in results}
        if len(rounds) != 1:
            raise InterpretationError(
                f"shards diverged: delivery-round counts {sorted(rounds)} "
                f"are not uniform across the SPMD fabric"
            )
        first = results[0]
        # Per-PE counters accumulate across runs (the other backends keep
        # one live state whose counters only ever grow); statistics fold
        # the *cumulative* counters per run, exactly as the vectorized
        # backend's collection pass reads its live counter dict.
        for name, value in first.counters.items():
            self._pe_counters[name] += value
        shard_statistics = [
            SimulationStatistics(
                max_pe_memory_bytes=result.pe_memory_bytes,
                seam_spins=result.seam_spins,
                seam_backoffs=result.seam_backoffs,
                **{
                    name: self._pe_counters[name] * pes
                    for name in PE_COUNTER_NAMES
                },
            )
            for result, pes in zip(results, self._shard_pe_counts())
        ]
        # Barrier waits are SPMD-uniform (every shard enters the same
        # rendezvous), so the count comes from one shard — summing would
        # just multiply it by the shard count.
        self.statistics = SimulationStatistics.merge(
            [
                self.statistics,
                SimulationStatistics(
                    rounds=rounds.pop(),
                    barrier_waits=first.barrier_waits,
                ),
            ]
            + shard_statistics
        )
        if first.blocks:
            self.statistics.block_depth = self._rounds_per_block
        self._variables = dict(first.variables)
        self._halted = first.halted

    def _shard_pe_counts(self) -> list[int]:
        return [(y1 - y0) * (x1 - x0) for y0, y1, x0, x1 in self.boxes]

    # -- unused base hooks (this backend drives rounds in its shards) ---- #

    def _drain_tasks(self) -> None:  # pragma: no cover
        raise AssertionError("tiled drives delivery rounds inside its shards")

    def _all_settled(self) -> bool:  # pragma: no cover
        raise AssertionError("tiled drives delivery rounds inside its shards")

    def _deliver_round(self) -> int:  # pragma: no cover
        raise AssertionError("tiled drives delivery rounds inside its shards")

    def _collect_statistics(self) -> None:  # pragma: no cover
        raise AssertionError("tiled folds statistics per shard result")


class _TiledPeView:
    """One PE's slice of the shared grid, mirroring the vectorized view."""

    def __init__(self, executor: TiledExecutor, x: int, y: int):
        self._executor = executor
        self.x = x
        self.y = y

    @property
    def buffers(self) -> dict[str, np.ndarray]:
        return {
            name: array[self.y, self.x]
            for name, array in self._executor.buffers.items()
        }

    @property
    def counters(self) -> dict[str, int]:
        return self._executor._pe_counters

    @property
    def variables(self) -> dict[str, float]:
        return self._executor._variables

    @property
    def halted(self) -> bool:
        return self._executor._halted

    def memory_in_use(self) -> int:
        return self._executor.plan.memory_per_pe_bytes()
